#!/usr/bin/env python3
"""Portfolio verification: race every engine, keep the first verdict.

Builds one of the failing benchmark families, races the full engine
slate (random-walk falsifier, BMC, k-induction, IC3) on every property,
and prints the winning-engine breakdown the race records in
``report.stats["portfolio"]`` — which engine decided each property, how
long the race took, and how quickly the losers were cancelled.

The run is seeded: the random-walk falsifier derives a per-property
sub-seed from the run-level seed, so re-running this script reproduces
the same walks bit for bit.

Run:  PYTHONPATH=src python examples/portfolio_race.py
"""

from collections import Counter

from repro import TransitionSystem
from repro.gen import FAILING_SPECS
from repro.parallel import ParallelOptions, portfolio_verify
from repro.progress import AttemptCancelled, PortfolioDecided, format_event


def main() -> None:
    ts = TransitionSystem(FAILING_SPECS["f175"].build())
    print(f"design f175: {len(ts.properties)} properties\n")

    # --- race the slate, streaming the decisions ----------------------
    race_log = []

    def on_event(event):
        if isinstance(event, (PortfolioDecided, AttemptCancelled)):
            race_log.append(format_event(event))

    report = portfolio_verify(
        ts,
        ParallelOptions(workers=4, seed=7),
        design_name="f175",
        emit=on_event,
    )
    for line in race_log:
        print(f"  {line}")
    print()

    # --- winning-engine breakdown -------------------------------------
    races = report.stats["portfolio"]
    tally = Counter(race["winner"] for race in races.values())
    print("winners:", dict(tally))
    for name, race in races.items():
        cancelled = ", ".join(
            f"{engine}@{latency:.3f}s" if latency is not None else engine
            for engine, latency in race["cancelled"].items()
        )
        print(
            f"  {name}: {race['status']} by {race['winner']} "
            f"in {race['wall_s']:.3f}s"
            + (f" (cancelled: {cancelled})" if cancelled else "")
        )

    # --- the verdicts are ordinary report outcomes --------------------
    print()
    print(f"debugging set: {report.debugging_set()}")
    for name, outcome in report.outcomes.items():
        assert outcome.engine == races[name]["winner"]


if __name__ == "__main__":
    main()
