#!/usr/bin/env python3
"""Tour of strengthening-clause re-use (paper Section 6 / Table VII).

A design whose 16 properties all need one hidden inductive invariant —
the pairwise one-hotness of an internal mode ring that no property
mentions.  Without re-use, every local proof rediscovers all ~45
invariant clauses; with re-use, the first proof pays and the rest are
nearly free.  The clauseDB file is persisted and inspected, like the
external clauseDB of the paper's Ja-ver script.

Run:  python examples/clause_reuse_tour.py
"""

import os
import tempfile
import time

from repro import TransitionSystem
from repro.circuit.aig import AIG
from repro.gen import shared_invariant_slice
from repro.multiprop import ClauseDB, JAOptions, JAVerifier


def main() -> None:
    aig = AIG()
    names = shared_invariant_slice(aig, "core", mode_size=10, n_props=16)
    ts = TransitionSystem(aig)
    print(f"design: {aig!r}")
    print(f"{len(names)} properties, all true, all needing the same hidden invariant")
    print()

    # --- without re-use ----------------------------------------------
    start = time.monotonic()
    report_cold = JAVerifier(ts, JAOptions(clause_reuse=False)).run()
    t_cold = time.monotonic() - start
    assert not report_cold.debugging_set()
    print(f"without clause re-use: {t_cold:.2f}s")

    # --- with re-use, persisting the clauseDB ------------------------
    with tempfile.TemporaryDirectory() as tmp:
        db_path = os.path.join(tmp, "clauseDB")
        verifier = JAVerifier(
            ts, JAOptions(clause_reuse=True, clause_db_path=db_path)
        )
        start = time.monotonic()
        report_warm = verifier.run()
        t_warm = time.monotonic() - start
        assert not report_warm.debugging_set()
        print(f"with clause re-use:    {t_warm:.2f}s  ({t_cold / t_warm:.1f}x faster)")
        print()

        db = ClauseDB.load(db_path, ts)
        print(f"clauseDB collected {len(db)} strengthening clauses, e.g.:")
        for clause in db.clauses()[:5]:
            human = " | ".join(
                ("~" if lit < 0 else "") + ts.latches[abs(lit) - 1].name
                for lit in clause
            )
            print(f"  ({human})")
    print()

    # --- per-property cost profile ------------------------------------
    print("per-property proof times (design order):")
    for name in names[:6]:
        cold = report_cold.outcomes[name].time_seconds
        warm = report_warm.outcomes[name].time_seconds
        print(f"  {name}: {cold * 1000:7.1f} ms cold  vs {warm * 1000:7.1f} ms warm")
    print("  ...")
    print(
        "after the first property, warm proofs start from the full "
        "invariant and close immediately."
    )


if __name__ == "__main__":
    main()
