#!/usr/bin/env python3
"""The remote service end to end: HTTP submit, SSE streams, stats.

Where ``service_concurrent.py`` drives a ``VerificationService``
in-process, this demo puts the network in the middle: a
``BackgroundServer`` (the asyncio HTTP front end on a daemon thread —
the same server ``repro serve --listen`` runs as a process) and a
``ServiceClient`` talking to it over real sockets on 127.0.0.1.

The demo:

1. starts a server on an OS-assigned port and submits two jobs over
   HTTP — one design inline as AIGER text (works against any server),
   one by server-side path;
2. streams one job's decoded ``ProgressEvent``s over SSE and shows
   the verdicts match an in-process ``Session.run()``;
3. kills a live event stream mid-flight and resumes it from the
   cursor — no dropped events, no duplicates;
4. cancels a queued job over HTTP and reads its terminal status;
5. reads ``GET /stats`` — the same ``ServiceStats`` payload the
   in-process API returns, now one HTTP call away;
6. drains the server and shows submits are refused once it is gone.

Run:  python examples/remote_client.py
"""

import tempfile

from repro import Session, TransitionSystem, VerificationService
from repro.circuit.aiger import parse_aag, write_aag
from repro.gen import ALL_TRUE_SPECS, buggy_counter
from repro.net import BackgroundServer, ServiceClient, ServiceUnavailable
from repro.progress import format_event

WORKERS = 2


def main() -> None:
    big_text = write_aag(ALL_TRUE_SPECS["t124"].build())
    small_text = write_aag(buggy_counter(bits=4))

    service = VerificationService(workers=WORKERS, max_concurrent_jobs=4)
    server = BackgroundServer(service).start()
    client = ServiceClient(server.address)
    print(f"server up on {server.address}, healthz: {client.health()}")

    # -- 1. submit over HTTP: inline text and server-side path ----------
    big = client.submit(design_text=big_text, strategy="parallel-ja",
                        design_name="t124", priority=2)
    with tempfile.NamedTemporaryFile("w", suffix=".aag",
                                     delete=False) as handle:
        handle.write(small_text)
    small = client.submit(design=handle.name, strategy="parallel-ja")
    print(f"submitted {big.job_id} (inline) and {small.job_id} (by path)")

    # -- 2. the SSE stream, decoded back to real ProgressEvents ---------
    streamed = {}
    for event in big.events():          # ends after JobFinished
        if event.kind in ("job-queued", "job-started", "property-solved",
                          "job-finished"):
            print(f"  {format_event(event)}")
        if event.kind == "property-solved":
            streamed[event.name] = event.status
    report = big.result(timeout=300)
    reference = Session(TransitionSystem(parse_aag(big_text)),
                        strategy="parallel-ja", workers=WORKERS).run()
    in_process = {n: o.status for n, o in reference.outcomes.items()}
    print(f"verdict parity with in-process Session.run(): "
          f"{streamed == in_process}")
    print(f"report is a real MultiPropReport: {len(report.true_props())}T/"
          f"{len(report.false_props())}F, method={report.method}")

    # -- 3. kill a stream, resume from the cursor -----------------------
    replay = client.job(big.job_id)     # fresh handle, cursor 0
    stream = replay.events()
    head = [next(stream) for _ in range(3)]
    stream.close()                      # the "killed" connection
    tail = list(replay.events())        # resumes after event 3
    total = replay.status()["events"]
    print(f"killed after {len(head)} events, resumed {len(tail)}: "
          f"{len(head) + len(tail)} == {total} logged, no drops/dupes")

    # -- 4. cancel over HTTP --------------------------------------------
    victim = client.submit(design_text=big_text, strategy="parallel-ja")
    accepted = victim.cancel()
    victim.result(timeout=300)          # cancelled jobs still resolve
    print(f"cancel({victim.job_id}) -> {accepted}, "
          f"settled as {victim.status()['status']!r}")
    small.result(timeout=300)           # the sibling is untouched

    # -- 5. the stats surface, one GET away -----------------------------
    stats = client.stats()
    print(f"GET /stats: {stats['submitted']} submitted, "
          f"{stats['jobs']['finished']} finished, "
          f"pool busy {stats['pool']['busy']}/{stats['pool']['workers']}")

    # -- 6. graceful drain ----------------------------------------------
    server.stop()
    try:
        client.submit(design_text=small_text, strategy="ja")
    except ServiceUnavailable as exc:
        print(f"after drain: {exc}")


if __name__ == "__main__":
    main()
