#!/usr/bin/env python3
"""Server-style verification with a persistent worker pool.

A verification *server* answers a stream of requests against the same
design: re-check after a constraint tweak, sweep property subsets,
re-run with different budgets.  With the default per-run pool every
request pays worker spawn + design pickling; with a persistent
:class:`repro.parallel.WorkerPool` those costs are paid once and every
later run starts on warm workers that already hold the design.

The demo:

1. runs the same design three times on one pool — the pool's stats
   show the design was pickled exactly once;
2. switches to a *different* design on the same pool (runs are fully
   isolated; nothing leaks between them);
3. kills a worker between runs and shows the pool replacing the seat
   before the next run;
4. compares warm-pool wall-clock against fresh-pool-per-run, and shows
   the sharded clause exchange (``exchange_shards="auto"``) routing
   clause traffic per property cluster.

Run:  python examples/server_pool.py
"""

import time

from repro import TransitionSystem
from repro.gen import ALL_TRUE_SPECS, buggy_counter
from repro.multiprop.report import render_table
from repro.parallel import WorkerPool
from repro.session import Session

WORKERS = 2
RUNS = 3


def timed_run(design, pool, **overrides):
    start = time.monotonic()
    report = Session(
        design, strategy="parallel-ja", pool=pool, **overrides
    ).run()
    return report, time.monotonic() - start


def main() -> None:
    primary = TransitionSystem(ALL_TRUE_SPECS["t135"].build())
    secondary = TransitionSystem(buggy_counter(bits=4))
    print(f"primary design: {primary!r}")

    with WorkerPool(workers=WORKERS) as pool:
        # -- 1. repeated runs amortize the setup ------------------------
        rows = []
        for i in range(RUNS):
            report, wall = timed_run(primary, pool)
            rows.append(
                [
                    f"run {i}",
                    f"{wall * 1000:.0f} ms",
                    pool.stats["design_pickles"],
                    pool.stats["workers_spawned"],
                    report.stats["exchange_clauses"],
                ]
            )
        print(
            render_table(
                "one pool, three runs (design pickled once)",
                ["run", "wall", "pickles", "spawned", "shared clauses"],
                rows,
            )
        )

        # -- 2. a different design on the same pool ---------------------
        report, wall = timed_run(secondary, pool)
        print(
            f"\nsecondary design on the same pool: "
            f"{len(report.outcomes)} verdicts in {wall * 1000:.0f} ms "
            f"(pool has {pool.stats['designs_cached']} designs cached)"
        )

        # -- 3. crash a worker between runs -----------------------------
        pool._slots[0].process.terminate()
        pool._slots[0].process.join()
        report, wall = timed_run(primary, pool)
        print(
            f"after killing worker 0: replaced "
            f"{pool.stats['workers_replaced']} seat(s), next run clean "
            f"({sum(1 for o in report.outcomes.values())} verdicts, "
            f"{report.stats['worker_crashes']} crashes)"
        )

        # -- 4. sharded exchange ----------------------------------------
        report, _ = timed_run(primary, pool, exchange_shards="auto")
        per_shard = report.stats["exchange_per_shard"]
        print(
            render_table(
                f"clause exchange at {report.stats['exchange_shards']} shards (auto)",
                ["shard", "properties", "clauses", "publishes", "fetches"],
                [
                    [
                        s["shard"],
                        len(s["members"]),
                        s["clauses"],
                        s["publishes"],
                        s["fetches"],
                    ]
                    for s in per_shard
                ],
            )
        )

    # -- warm pool vs fresh pool per run -------------------------------
    with WorkerPool(workers=WORKERS) as pool:
        timed_run(primary, pool)  # pay the spawn once
        _, warm = timed_run(primary, pool)
    _, cold = timed_run(primary, None)  # private pool, spawned and torn down
    print(
        f"\nwarm persistent-pool run: {warm * 1000:.0f} ms, "
        f"fresh pool per run: {cold * 1000:.0f} ms"
    )


if __name__ == "__main__":
    main()
