#!/usr/bin/env python3
"""Concurrent multi-job verification through the VerificationService.

This supersedes the old ``server_pool.py`` single-run flow: instead of
driving one ``Session.run()`` at a time against a persistent pool, a
verification *server* submits many jobs at once and lets the service
interleave their properties onto the shared worker seats.

The demo:

1. submits four jobs — two designs, mixed sizes, mixed priorities —
   concurrently to one 2-worker service and streams the job lifecycle
   events as they happen;
2. shows the handles' ``status``/``result()``/``done`` API and that
   verdicts match what a serial ``Session.run()`` produces;
3. cancels a queued job and shows its siblings are untouched;
4. reads the structured ``ServiceStats`` surface — job latency
   percentiles, per-seat occupancy/crash/backoff state — that
   ``repro serve --stats-interval`` polls in production;
5. demonstrates back-pressure: a bounded admission queue refusing a
   non-blocking submit with ``QueueFull``;
6. prints the shared pool's amortization counters (designs pickled
   once, seats spawned once, exchange managers pooled).

Run:  python examples/service_concurrent.py
"""

from repro import QueueFull, Session, TransitionSystem, VerificationService
from repro.gen import ALL_TRUE_SPECS, buggy_counter
from repro.multiprop.report import render_table

WORKERS = 2


def main() -> None:
    big = TransitionSystem(ALL_TRUE_SPECS["t135"].build())
    small = TransitionSystem(buggy_counter(bits=4))
    serial = {
        "t135": Session(big, strategy="parallel-ja", workers=WORKERS).run(),
        "counter4": Session(small, strategy="parallel-ja",
                            workers=WORKERS).run(),
    }

    with VerificationService(workers=WORKERS, max_concurrent_jobs=4) as service:
        # -- 1. four concurrent jobs, lifecycle streamed ----------------
        service.subscribe(
            lambda e: print(f"  {e.kind}: {getattr(e, 'job', '')}")
            if e.kind.startswith("job-")
            else None
        )
        print("submitting 4 jobs to one shared pool:")
        handles = {
            "t135 (hi-pri)": service.submit(big, strategy="parallel-ja",
                                            priority=4),
            "counter4 a": service.submit(small, strategy="parallel-ja"),
            "t135 again": service.submit(big, strategy="parallel-ja"),
            "counter4 b": service.submit(small, strategy="parallel-ja"),
        }

        # -- 2. handles: status / result / done future ------------------
        rows = []
        for label, handle in handles.items():
            report = handle.result(timeout=120)
            reference = serial["t135" if "t135" in label else "counter4"]
            rows.append(
                [
                    label,
                    handle.job_id,
                    handle.status.value,
                    f"{len(report.true_props())}T/"
                    f"{len(report.false_props())}F",
                    "yes"
                    if {n: o.status for n, o in report.outcomes.items()}
                    == {n: o.status for n, o in reference.outcomes.items()}
                    else "NO",
                ]
            )
        print(
            render_table(
                "concurrent jobs vs serial Session.run()",
                ["job", "id", "status", "verdicts", "serial parity"],
                rows,
            )
        )

        # -- 3. cancellation never perturbs siblings --------------------
        victim = service.submit(big, strategy="parallel-ja")
        survivor = service.submit(small, strategy="parallel-ja")
        victim.cancel()
        report = survivor.result(timeout=120)
        victim.result(timeout=120)
        print(
            f"cancelled {victim.job_id} -> {victim.status.value}; "
            f"sibling {survivor.job_id} still "
            f"{len(report.true_props())}T/{len(report.false_props())}F"
        )

        # -- 4. the structured stats surface ----------------------------
        stats = service.stats()  # ServiceStats dataclass
        print(
            f"service stats: {stats.submitted} submitted, "
            f"{stats.finished} finished, {stats.running} running, "
            f"{stats.pending} pending"
        )
        print(
            f"  job latency: wait p50 {stats.latency['wait_p50_s']:.3f}s, "
            f"run p50 {stats.latency['run_p50_s']:.3f}s, "
            f"run max {stats.latency['run_max_s']:.3f}s"
        )
        for seat in stats.pool.seats:  # per-seat crash/backoff state
            print(
                f"  seat {seat.worker}: alive={seat.alive} "
                f"served={seat.properties_served} crashes={seat.crashes} "
                f"backoff={seat.backoff_s:.1f}s"
            )
        # Legacy dict-style reads still work for pre-stats callers.
        pool_stats = stats["pool"]

    # -- 5. back-pressure on a tiny service -----------------------------
    with VerificationService(workers=1, max_concurrent_jobs=1,
                             max_pending=1) as tiny:
        # A long job plus a full queue: the next submit must bounce.
        tiny.submit(big, strategy="parallel-ja")
        tiny.submit(small, strategy="parallel-ja")
        try:
            tiny.submit(small, strategy="parallel-ja", block=False)
        except QueueFull as exc:
            print(f"back-pressure: {exc}")

    # -- 6. amortization across all jobs --------------------------------
    print(
        render_table(
            "shared pool after 6 jobs",
            ["runs", "design pickles", "designs cached", "seats spawned"],
            [
                [
                    pool_stats["runs"],
                    pool_stats["design_pickles"],
                    pool_stats["designs_cached"],
                    pool_stats["workers_spawned"],
                ]
            ],
        )
    )


if __name__ == "__main__":
    main()
