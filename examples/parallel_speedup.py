#!/usr/bin/env python3
"""JA-verification and parallel computing (paper Section 11 / Table X).

Local proofs of different properties are independent — no clause
exchange is needed — so JA-verification parallelizes trivially.  This
example measures standalone local and global proofs on a deep pipeline
design (the 6s289 stand-in) and simulates scheduling the local proofs on
increasing worker counts.

Run:  python examples/parallel_speedup.py
"""

from repro import TransitionSystem
from repro.gen import huge_design
from repro.multiprop import measure_global_proofs, measure_local_proofs
from repro.multiprop.report import render_table


def main() -> None:
    ts = TransitionSystem(huge_design(chain_depth=32))
    print(f"design: {ts!r}")
    sample = [f"c0_C{i}" for i in (1, 8, 16, 24, 31)]

    print("\nmeasuring sampled properties, global vs local (no clause exchange)...")
    glob = measure_global_proofs(ts, sample)
    local = measure_local_proofs(ts, sample)
    rows = [
        [
            name,
            glob.prop_frames[name],
            f"{glob.prop_times[name] * 1000:.0f} ms",
            local.prop_frames[name],
            f"{local.prop_times[name] * 1000:.0f} ms",
        ]
        for name in sample
    ]
    print(
        render_table(
            "sampled properties (cf. paper Table X)",
            ["property", "global #frames", "global time", "local #frames", "local time"],
            rows,
        )
    )

    print("\nmeasuring ALL properties locally for the scheduling simulation...")
    full = measure_local_proofs(ts)
    print(f"{len(full.prop_times)} properties, "
          f"sequential time {full.sequential_time():.2f}s")
    rows = []
    for workers in (1, 2, 4, 8, 16, 32):
        rows.append(
            [
                workers,
                f"{full.makespan(workers) * 1000:.0f} ms",
                f"{full.speedup(workers):.2f}x",
            ]
        )
    print(
        render_table(
            "simulated parallel JA-verification (greedy list scheduling)",
            ["workers", "makespan", "speedup"],
            rows,
        )
    )
    print(
        "\nwith one worker per property, verification finishes in the time "
        "of the slowest single local proof — 'a matter of seconds' at the "
        "paper's scale."
    )


if __name__ == "__main__":
    main()
