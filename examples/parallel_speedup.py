#!/usr/bin/env python3
"""JA-verification and parallel computing (paper Section 11 / Table X).

Local proofs of different properties are independent — no clause
exchange is *needed* — so JA-verification parallelizes trivially.  This
example measures standalone local and global proofs on a deep pipeline
design (the 6s289 stand-in), then actually runs the ``parallel-ja``
process pool at increasing worker counts, with and without the live
clause exchange, and compares the measured wall-clock against the
legacy scheduler simulation's projected makespan.

Run:  python examples/parallel_speedup.py
"""

import os

from repro import TransitionSystem
from repro.gen import huge_design
from repro.multiprop import measure_global_proofs, measure_local_proofs
from repro.multiprop.report import render_table
from repro.session import Session


def main() -> None:
    ts = TransitionSystem(huge_design(chain_depth=32))
    print(f"design: {ts!r}, host CPUs: {os.cpu_count()}")
    sample = [f"c0_C{i}" for i in (1, 8, 16, 24, 31)]

    print("\nmeasuring sampled properties, global vs local (no clause exchange)...")
    glob = measure_global_proofs(ts, sample)
    local = measure_local_proofs(ts, sample)
    rows = [
        [
            name,
            glob.prop_frames[name],
            f"{glob.prop_times[name] * 1000:.0f} ms",
            local.prop_frames[name],
            f"{local.prop_times[name] * 1000:.0f} ms",
        ]
        for name in sample
    ]
    print(
        render_table(
            "sampled properties (cf. paper Table X)",
            ["property", "global #frames", "global time", "local #frames", "local time"],
            rows,
        )
    )

    print("\nrunning the real process pool over ALL properties...")
    rows = []
    baseline = None
    for workers in (1, 2, 4):
        for exchange in (True, False):
            report = Session(
                ts, strategy="parallel-ja", workers=workers, exchange=exchange
            ).run()
            if baseline is None:
                baseline = report.total_time
            rows.append(
                [
                    workers,
                    "on" if exchange else "off",
                    f"{report.total_time * 1000:.0f} ms",
                    f"{baseline / report.total_time:.2f}x",
                    report.stats["exchange_clauses"],
                ]
            )
    print(
        render_table(
            "process-parallel JA-verification (measured)",
            ["workers", "exchange", "wall-clock", "speedup", "shared clauses"],
            rows,
        )
    )

    print("\nprojecting the one-worker-per-property regime (simulator)...")
    full = measure_local_proofs(ts)  # one pass feeds every projection
    sim_rows = []
    for workers in (1, 2, 4, 8, 16, 32):
        sim_rows.append(
            [
                workers,
                f"{full.makespan(workers) * 1000:.0f} ms",
                f"{full.speedup(workers):.2f}x",
            ]
        )
    print(
        render_table(
            "simulated parallel JA-verification (greedy list scheduling)",
            ["workers", "makespan", "speedup"],
            sim_rows,
        )
    )
    print(
        "\nwith one worker per property, verification finishes in the time "
        "of the slowest single local proof — 'a matter of seconds' at the "
        "paper's scale.  Measured speedup tracks the projection once the "
        "host has as many idle cores as workers."
    )


if __name__ == "__main__":
    main()
