#!/usr/bin/env python3
"""The debugging workflow the paper proposes, on a multi-bug design.

A design with 19 properties has two injected bugs (two "guard" chains
that can arm a runaway counter).  Eight more properties fail globally,
but only as a *consequence* of the guards failing first.  JA-verification
pinpoints the debugging set = the two guards; after "fixing" the design
(rebuilding it with the guards forced low), every property holds.

Run:  python examples/debugging_workflow.py
"""

from repro import TransitionSystem, ja_verify
from repro.circuit.aig import AIG, aig_not
from repro.circuit import words
from repro.gen import FAILING_SPECS
from repro.multiprop import debugging_report


def build_fixed_f207() -> AIG:
    """The f207 design with the two guard bugs repaired.

    The original slices arm a counter from a request input; the repair
    ties the request chains off (the "mode" can never arm), which is what
    fixing the RTL would do.
    """
    aig = AIG()
    for i, (bits, depth, values) in enumerate(FAILING_SPECS["f207"].guarded):
        prefix = f"s{i}"
        aig.add_input(f"{prefix}_req")  # input still present, now ignored
        feed = 0  # constant FALSE: the repair
        modes = []
        for j in range(depth):
            mode = aig.add_latch(f"{prefix}_m{j}", init=0)
            aig.set_next(mode, feed)
            feed = mode
            modes.append(mode)
        armed = modes[-1]
        val = words.word_latches(aig, f"{prefix}_val", bits, init=0)
        incremented = words.inc(aig, val)
        words.set_next_word(
            aig, val, words.mux_word(aig, armed, incremented, val)
        )
        aig.add_property(f"{prefix}_G", aig_not(armed))
        for j, value in enumerate(values):
            aig.add_property(
                f"{prefix}_D{j}", aig_not(words.eq_const(aig, val, value))
            )
        sat_val = words.word_latches(aig, f"{prefix}_sat", 2, init=0)
        at_limit = words.eq_const(aig, sat_val, 2)
        hold = words.mux_word(aig, at_limit, sat_val, words.inc(aig, sat_val))
        words.set_next_word(
            aig, sat_val, words.mux_word(aig, armed, hold, sat_val)
        )
        aig.add_property(f"{prefix}_T", words.ule_const(aig, sat_val, 2))
    # Re-create the true-property slices of the original design.
    from repro.gen import good_chain_slice, token_ring_slice

    token_ring_slice(aig, "r0", 4)
    good_chain_slice(aig, "c0", 3, 1)
    return aig


def main() -> None:
    # ------------------------------------------------------------------
    print("=== step 1: JA-verification of the buggy design ===")
    buggy = FAILING_SPECS["f207"].build()
    ts = TransitionSystem(buggy)
    report = ja_verify(ts, design_name="f207")
    analysis = debugging_report(report)
    print(report.summary())
    print(analysis.narrative())
    print()
    for name in analysis.debugging_set:
        depth = analysis.cex_depths.get(name)
        print(f"  -> {name} fails on its own at depth {depth}")
    print()

    # ------------------------------------------------------------------
    print("=== step 2: fix exactly the behaviours in the debugging set ===")
    fixed = build_fixed_f207()
    ts_fixed = TransitionSystem(fixed)
    report_fixed = ja_verify(ts_fixed, design_name="f207-fixed")
    analysis_fixed = debugging_report(report_fixed)
    print(report_fixed.summary())
    print(analysis_fixed.narrative())

    assert analysis_fixed.all_hold, "the fix should make every property pass"
    print()
    print(
        "note: the 8 dependent properties were never 'debugged' directly -- "
        "they held locally all along, and fixing the 2 guards fixed them."
    )


if __name__ == "__main__":
    main()
