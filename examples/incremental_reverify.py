#!/usr/bin/env python3
"""Incremental re-verification through the cross-run proof cache.

The loop every design team lives in: verify, edit one module, verify
again.  With a ``cache_dir`` on the config, the second run only pays
for the properties whose cone-of-influence actually contains the edit
— everything else is served from the content-addressed proof store
after its stored witness re-passes certification against the *edited*
design.

The design here is three independent pipeline "slices", four
properties each.  We verify it cold, flip the reset value of one latch
in slice 0, and resubmit: the eight properties of slices 1 and 2 hit
the cache (their cone digests are untouched by the edit), while the
four properties of slice 0 — and only those — are re-proved.

Run:  python examples/incremental_reverify.py
"""

import shutil
import tempfile

from repro.circuit.aig import AIG
from repro.session import Session, VerificationConfig
from repro.ts.system import TransitionSystem

SLICES = 3
DEPTH = 4


def build_design(broken_slice: int | None = None) -> AIG:
    """Independent good-flag chains; one source latch optionally flipped."""
    aig = AIG()
    for k in range(SLICES):
        prev = None
        flags = []
        for i in range(DEPTH):
            init = 0 if (i == 0 and k == broken_slice) else 1
            flag = aig.add_latch(f"s{k}_g{i}", init=init)
            aig.set_next(flag, flag if prev is None else prev)
            flags.append(flag)
            prev = flag
        for i in range(DEPTH):
            aig.add_property(f"s{k}_C{i}", flags[i])
    return aig


def verify(aig: AIG, cache_dir: str, label: str):
    events = []
    session = Session(
        TransitionSystem(aig),
        config=VerificationConfig(cache_dir=cache_dir),
        on_event=events.append,
    )
    report = session.run()
    hits = [e for e in events if getattr(e, "kind", "") == "cache-hit"]
    reproved = sorted(set(report.outcomes) - {h.name for h in hits})
    print(f"{label}:")
    print(f"  cache hits : {len(hits)}")
    print(f"  re-proved  : {len(reproved)}  {reproved}")
    for hit in hits:
        scope = "exact design" if hit.exact_design else "cone-level (edited design)"
        print(f"    [cache-hit] {hit.name}: {hit.status.value} ({scope})")
    return report


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="proof-cache-")
    try:
        # 1. Cold run: every property proved, every verdict written back.
        cold = verify(build_design(), cache_dir, "cold run")
        assert all(o.status.value == "holds" for o in cold.outcomes.values())
        print()

        # 2. The edit: slice 0's source latch now resets to 0, so its
        #    chain breaks.  Slices 1 and 2 are structurally untouched.
        print("edit: flip reset of s0_g0 (slice 0 now fails)\n")
        edited = verify(build_design(broken_slice=0), cache_dir, "resubmit after edit")
        failed = sorted(n for n, o in edited.outcomes.items() if o.status.value == "fails")
        print(f"\n  failing after edit: {failed}")
        print(f"  debugging set     : {sorted(edited.debugging_set())}")
        # JA-verification pinpoints the root cause: only the source
        # property fails; the downstream slice-0 properties hold
        # locally under the assumption of their predecessors.
        assert failed == ["s0_C0"]

        # Out-of-cone verdicts were *served*, not trusted: each stored
        # invariant was re-certified against the edited design first.
        served = [n for n, o in edited.outcomes.items() if o.engine == "cache"]
        assert sorted(served) == sorted(
            f"s{k}_C{i}" for k in (1, 2) for i in range(DEPTH)
        )

        # 3. Resubmit the edited design unchanged: now everything hits,
        #    including the freshly cached FAILS verdicts of slice 0.
        print()
        rerun = verify(build_design(broken_slice=0), cache_dir, "resubmit unchanged")
        assert all(o.engine == "cache" for o in rerun.outcomes.values())
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
