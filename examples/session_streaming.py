#!/usr/bin/env python3
"""Session API tour: streaming progress events and plugging in a strategy.

Two things the unified API enables, demonstrated on the buggy counter:

1. **Event streaming** — ``Session.stream()`` runs the strategy on a
   worker thread and yields typed progress events as they happen, so a
   dashboard (or a sharding scheduler) can watch frames advance and
   clauses flow between properties without polling.

2. **A custom strategy** — registering a class under a new name makes it
   a first-class verification method: ``Session(..., strategy=...)``
   and ``python -m repro check --strategy bmc-falsify`` both resolve it
   through the registry, with no changes to ``repro.session`` or the
   CLI.  Here a BMC-only falsifier (complete for failures, never proves)
   is built from the ``bmc_check`` engine in ~30 lines.

Run:  python examples/session_streaming.py
"""

import collections

from repro import Session, register_strategy
from repro.engines.bmc import bmc_check
from repro.engines.result import PropStatus
from repro.gen import buggy_counter
from repro.multiprop.report import MultiPropReport, PropOutcome
from repro.progress import format_event


@register_strategy("bmc-falsify")
class BMCFalsify:
    """Bounded falsification only: BMC each property, never prove."""

    def run(self, ts, config, emit):
        report = MultiPropReport(method="bmc-falsify", design=config.design_name)
        for prop in ts.properties:
            result = bmc_check(ts, prop.name, max_depth=16, emit=emit)
            status = (
                PropStatus.FAILS if result.fails else PropStatus.UNKNOWN
            )
            report.outcomes[prop.name] = PropOutcome(
                name=prop.name,
                status=status,
                local=False,
                frames=result.frames,
                time_seconds=result.time_seconds,
                cex_depth=len(result.cex) if result.cex is not None else None,
            )
            report.total_time += result.time_seconds
        return report


def main() -> None:
    design = buggy_counter(bits=4)

    # --- 1. consume the progress-event stream as an iterator ----------
    print("== ja strategy, events via Session.stream() ==")
    session = Session(design, strategy="ja", design_name="counter4")
    counts = collections.Counter()
    for event in session.stream():
        counts[event.kind] += 1
        print(f"  {format_event(event)}")
    print(f"report: {session.report.summary()}")
    print(f"event counts: {dict(counts)}")
    print()

    # --- 2. run the plugged-in strategy through the same facade -------
    print("== custom bmc-falsify strategy via the registry ==")
    report = Session(design, strategy="bmc-falsify", design_name="counter4").run()
    print(f"report: {report.summary()}")
    for name, outcome in report.outcomes.items():
        print(f"  {name}: {outcome.status.value} (frames={outcome.frames})")


if __name__ == "__main__":
    main()
