#!/usr/bin/env python3
"""Quickstart: verify the paper's Example 1 counter through the Session API.

The design is an 8-bit counter with a buggy reset condition and two
properties:

    P0: assert property (req == 1);      -- fails immediately (req is free)
    P1: assert property (val <= rval);   -- fails only after 2^(bits-1)+1 steps

Global verification of P1 needs a 130-frame counterexample; JA-verification
instead proves P1 *locally* (assuming P0) in milliseconds and reports the
debugging set {P0}: the only behaviour that needs fixing first.

Every strategy runs through the same :class:`repro.Session` facade; the
strategy name selects the method, and progress events stream to any
subscribed callback while the run is in flight.  The SAT backend under
the engines is pluggable the same way (``solver_backend="cdcl-compact"``,
CLI ``--backend``, registry in :mod:`repro.sat`); see
``examples/custom_backend.py`` and the README's backend section.

Run:  python examples/quickstart.py
"""

from repro import Session, ic3_check
from repro.gen import buggy_counter
from repro.multiprop import debugging_report
from repro.progress import PropertySolved, format_event


def main() -> None:
    aig = buggy_counter(bits=8)
    print(f"design: {aig!r}")
    print(f"properties: {[p.name for p in aig.properties]}")
    print()

    # --- JA-verification via the unified Session API ------------------
    # Each property is checked under the assumption that all the others
    # hold; verdict events are printed live through the callback.
    session = Session(aig, strategy="ja", design_name="counter8")
    session.subscribe(
        lambda event: print(f"  {format_event(event)}")
        if isinstance(event, PropertySolved)
        else None
    )
    report = session.run()
    print()
    print(report.summary())
    for name, outcome in report.outcomes.items():
        verdict = outcome.status.value
        extra = (
            f"counterexample depth {outcome.cex_depth}"
            if outcome.cex_depth is not None
            else f"proved in {outcome.frames} frames"
        )
        print(f"  {name}: {verdict} locally ({extra}; assumed {outcome.assumed})")
    print()

    # --- the debugging interpretation (paper Sections 3-4) -----------
    analysis = debugging_report(report)
    print(analysis.narrative())
    print()

    # --- contrast with global verification of P1 ---------------------
    result = ic3_check(session.ts, "P1")
    print(
        f"for contrast, a *global* check of P1 needs a counterexample of "
        f"depth {result.frames} ({result.time_seconds:.2f}s with IC3; BMC "
        "takes far longer) -- JA-verification avoided computing it altogether."
    )
    print()

    # --- the same run on a different SAT backend ---------------------
    # Engines obtain solvers from the repro.sat registry; any registered
    # backend name plugs in here, on the CLI (--backend), or process-wide
    # via the REPRO_SAT_BACKEND environment variable.
    from repro import available_backends

    compact = Session(
        aig, strategy="ja", design_name="counter8", solver_backend="cdcl-compact"
    ).run()
    print(f"backends available: {', '.join(available_backends())}")
    print(f"same verdicts on cdcl-compact: {compact.summary()}")


if __name__ == "__main__":
    main()
