#!/usr/bin/env python3
"""Quickstart: verify the paper's Example 1 counter with JA-verification.

The design is an 8-bit counter with a buggy reset condition and two
properties:

    P0: assert property (req == 1);      -- fails immediately (req is free)
    P1: assert property (val <= rval);   -- fails only after 2^(bits-1)+1 steps

Global verification of P1 needs a 130-frame counterexample; JA-verification
instead proves P1 *locally* (assuming P0) in milliseconds and reports the
debugging set {P0}: the only behaviour that needs fixing first.

Run:  python examples/quickstart.py
"""

from repro import TransitionSystem, ic3_check, ja_verify
from repro.multiprop import debugging_report
from repro.gen import buggy_counter


def main() -> None:
    aig = buggy_counter(bits=8)
    ts = TransitionSystem(aig)
    print(f"design: {aig!r}")
    print(f"properties: {[p.name for p in ts.properties]}")
    print()

    # --- JA-verification: every property checked under the assumption
    # that all the others hold ---------------------------------------
    report = ja_verify(ts, design_name="counter8")
    print(report.summary())
    for name, outcome in report.outcomes.items():
        verdict = outcome.status.value
        extra = (
            f"counterexample depth {outcome.cex_depth}"
            if outcome.cex_depth is not None
            else f"proved in {outcome.frames} frames"
        )
        print(f"  {name}: {verdict} locally ({extra}; assumed {outcome.assumed})")
    print()

    # --- the debugging interpretation (paper Sections 3-4) -----------
    analysis = debugging_report(report)
    print(analysis.narrative())
    print()

    # --- contrast with global verification of P1 ---------------------
    result = ic3_check(ts, "P1")
    print(
        f"for contrast, a *global* check of P1 needs a counterexample of "
        f"depth {result.frames} ({result.time_seconds:.2f}s with IC3; BMC "
        "takes far longer) -- JA-verification avoided computing it altogether."
    )


if __name__ == "__main__":
    main()
