#!/usr/bin/env python3
"""Registering a third-party SAT backend and running a session on it.

The engine<->solver boundary is the :class:`repro.sat.SatBackend`
protocol; any class implementing it can be registered under a name and
selected everywhere a builtin backend can: ``VerificationConfig
(solver_backend=...)``, the ``Session`` facade, worker processes of the
parallel engine, and the CLI (``--backend``).  Nothing inside
``repro.engines`` or ``repro.session`` needs to change.

This example wraps the reference CDCL solver with query logging — the
shape an adapter around a native solver library (kissat, cadical,
minisat bindings) would take: implement/delegate the protocol methods,
decorate the class, done.

Run:  python examples/custom_backend.py
"""

from repro import Session
from repro.gen import buggy_counter
from repro.sat import Solver, available_backends, register_backend


@register_backend("logged-cdcl")
class LoggedSolver(Solver):
    """Reference CDCL solver that counts and reports its queries."""

    #: Shared across instances so the demo can sum over all the
    #: per-property solvers one verification run creates.
    query_log = []

    def solve(self, assumptions=()):
        status = super().solve(assumptions)
        LoggedSolver.query_log.append(
            (len(assumptions), self.num_vars, status.name)
        )
        return status


def main() -> None:
    print("registered backends:")
    for name, description in available_backends().items():
        print(f"  {name:<14} {description}")
    print()

    # The custom backend is a first-class citizen of the config surface.
    report = Session(
        buggy_counter(bits=8),
        strategy="ja",
        solver_backend="logged-cdcl",
        design_name="counter8",
    ).run()

    print(report.summary())
    print(f"debugging set: {report.debugging_set()}")
    print()
    statuses = [entry[2] for entry in LoggedSolver.query_log]
    print(
        f"the run issued {len(LoggedSolver.query_log)} solver queries "
        f"({statuses.count('SAT')} SAT / {statuses.count('UNSAT')} UNSAT) "
        "through the custom backend"
    )
    biggest = max(LoggedSolver.query_log, key=lambda e: e[1], default=None)
    if biggest:
        assumptions, num_vars, status = biggest
        print(
            f"largest solver grew to {num_vars} variables "
            f"(final query: {assumptions} assumptions -> {status})"
        )


if __name__ == "__main__":
    main()
