#!/usr/bin/env python3
"""Handling properties that are Expected To Fail (paper Section 5).

Reachability goals are often written as safety properties that *should*
fail — the counterexample is the witness that a state is reachable.
Naively assuming such a property while checking the others would cut
exactly the interesting traces.  JA-verification therefore never assumes
ETF properties.

The design: a request eventually arms a mode latch (we WANT that: the
ETF property "mode stays low" should fail, witnessing reachability), and
a separate watchdog latch must never trip (ETH) — but it trips one cycle
after the mode arms.  If the ETF property were assumed, the watchdog
failure would be masked; with correct ETF handling both failures are
reported, and the ETF witness respects the ETH assumptions.

Run:  python examples/etf_properties.py
"""

from repro import TransitionSystem
from repro.circuit.aig import AIG, aig_not
from repro.multiprop import JAVerifier


def build_design() -> AIG:
    aig = AIG()
    req = aig.add_input("req")
    mode = aig.add_latch("mode", init=0)
    aig.set_next(mode, aig.or_(mode, req))
    watchdog = aig.add_latch("watchdog", init=0)
    aig.set_next(watchdog, mode)  # trips the cycle after mode arms
    ok = aig.add_latch("ok", init=1)
    aig.set_next(ok, ok)

    # ETF: "mode never arms" -- we EXPECT a counterexample (reachability).
    aig.add_property("mode_unreachable", aig_not(mode), expected_to_fail=True)
    # ETH: the watchdog must never trip (it does -- a real bug).
    aig.add_property("watchdog_quiet", aig_not(watchdog))
    # ETH: a healthy invariant.
    aig.add_property("ok_stays_high", ok)
    return aig


def main() -> None:
    ts = TransitionSystem(build_design())
    etf = [p.name for p in ts.properties if p.expected_to_fail]
    eth = [p.name for p in ts.eth_properties()]
    print(f"ETF properties (never assumed): {etf}")
    print(f"ETH properties (the assumption pool): {eth}")
    print()

    verifier = JAVerifier(ts)
    report = verifier.run(design_name="etf-demo")
    for name, outcome in report.outcomes.items():
        marker = "ETF" if name in etf else "ETH"
        print(
            f"  [{marker}] {name}: {outcome.status.value}"
            + (
                f" (witness depth {outcome.cex_depth}, assumed {outcome.assumed})"
                if outcome.cex_depth
                else ""
            )
        )
    print()

    # The ETF property's counterexample is its reachability witness, and
    # because ETH properties were assumed while searching for it, the
    # witness does not rely on broken behaviour of the rest of the design
    # -- it fails no ETH property before its final frame.
    witness = verifier.results["mode_unreachable"].cex
    eth_lits = {n: ts.prop_by_name[n].lit for n in eth}
    frame, failed = witness.first_failures(ts.aig, eth_lits)
    print(f"reachability witness: {len(witness)} frames")
    print(
        "ETH properties failing strictly before the witness frame: "
        f"{failed if frame is not None and frame < len(witness) - 1 else 'none'}"
    )
    print()
    print(
        f"the watchdog bug is still reported (debugging set: "
        f"{report.debugging_set()}), the ETF failure is listed separately "
        f"(confirmed reachability goals: {report.etf_confirmed()}), and "
        "ETF properties are never used as assumptions."
    )


if __name__ == "__main__":
    main()
