#!/usr/bin/env python3
"""File-based workflow: AIGER round-trips, sweeping, CLI-style checking.

Mirrors how the library is used from the shell (`python -m repro ...`)
but as a script: generate a benchmark design, write it as both ASCII and
binary AIGER, reload it, sweep it with random simulation, then run
JA-verification with the cone-of-influence front end and export a JSON
report.

Run:  python examples/aiger_workflow.py
"""

import json
import os
import tempfile

from repro import TransitionSystem
from repro.circuit import load_aag, load_aig, save_aag, save_aig
from repro.gen import FAILING_SPECS
from repro.multiprop import JAOptions, ja_verify, sweep


def main() -> None:
    design = FAILING_SPECS["f258"].build()
    with tempfile.TemporaryDirectory() as tmp:
        ascii_path = os.path.join(tmp, "f258.aag")
        binary_path = os.path.join(tmp, "f258.aig")

        # --- persist in both AIGER flavours ---------------------------
        save_aag(design, ascii_path)
        save_aig(design, binary_path)
        ascii_size = os.path.getsize(ascii_path)
        binary_size = os.path.getsize(binary_path)
        print(f"wrote {ascii_path} ({ascii_size} bytes)")
        print(f"wrote {binary_path} ({binary_size} bytes, "
              f"{ascii_size / binary_size:.1f}x smaller)")

        # --- reload and confirm the two formats agree --------------------
        from_ascii = load_aag(ascii_path)
        from_binary = load_aig(binary_path)
        assert from_ascii.stats() == from_binary.stats()
        print(f"reloaded: {from_binary!r}")
        print()

        ts = TransitionSystem(from_binary)

        # --- simulation sweep first (no SAT) ---------------------------
        swept = sweep(ts, runs=32, depth=48, seed=0)
        print(
            f"sweep: {len(swept.failed)} properties refuted by random "
            f"simulation ({swept.frames_simulated} frames simulated), "
            f"{len(swept.survivors)} survivors"
        )
        for name, trace in sorted(swept.failed.items()):
            print(f"  {name}: witness of depth {len(trace)}")
        print()

        # --- JA-verification with the COI front end --------------------
        report = ja_verify(
            ts, JAOptions(coi_reduction=True), design_name="f258"
        )
        print(report.summary())
        print(f"debugging set: {report.debugging_set()}")

        # --- machine-readable export -----------------------------------
        json_path = os.path.join(tmp, "report.json")
        payload = {
            "design": "f258",
            "debugging_set": report.debugging_set(),
            "outcomes": {
                name: outcome.status.value
                for name, outcome in report.outcomes.items()
            },
        }
        with open(json_path, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {json_path} ({os.path.getsize(json_path)} bytes)")


if __name__ == "__main__":
    main()
