"""Cross-run proof cache benchmark: cold vs warm vs one-latch edit.

Three scenarios, each measured through the full :class:`Session` stack
(resolution, certification, merge — not a bare store microbenchmark):

* **cold** — empty cache directory: every property is proved, every
  verdict is written back.
* **warm** — identical design resubmitted against the same directory:
  every property must resolve from cache (0 re-proved) after its
  witness re-passes certification, and the wall-clock must beat the
  cold run by the acceptance bar (>= 5x aggregate).
* **edit** — a single latch's reset value is flipped in one slice of a
  multi-cone design: only the properties whose COI cone contains that
  latch may be re-proved; every out-of-cone property must still hit
  (cone-level hits on an edited design — the incremental story).

Every cached run is paired with a cache-off run of the same design and
the verdict maps are required to be identical: the cache may only ever
change *when* a verdict is computed, never *what* it is.

The result is written to ``BENCH_cache.json`` at the repo root (and a
rendered table to ``benchmarks/results/``).

Run:  PYTHONPATH=src python benchmarks/bench_cache.py
or:   PYTHONPATH=src python -m pytest benchmarks/bench_cache.py -q
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

# Script mode (`python benchmarks/bench_cache.py`): make the repo root
# importable the same way pytest's rootdir insertion does.
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.circuit.aig import AIG
from repro.gen import ALL_TRUE_SPECS, buggy_counter
from repro.session import Session, VerificationConfig
from repro.ts.system import TransitionSystem

from benchmarks._harness import publish_table

#: Families for the cold/warm comparison: counter8 is the paper's
#: Example 1; the t-designs are all-true (real inductive proofs, the
#: case where a cache hit saves the most work).
FAMILIES = {
    "counter8": lambda: buggy_counter(bits=8),
    "t124": ALL_TRUE_SPECS["t124"].build,
    "t135": ALL_TRUE_SPECS["t135"].build,
}

#: The edit scenario's design: independent good-flag chains, one
#: property per stage.  Chains share no logic, so each property's COI
#: cone is exactly its own chain — flipping one chain's source latch
#: must invalidate that chain's cached verdicts and no others.
EDIT_SLICES = 3
EDIT_DEPTH = 4

OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_cache.json")


def chain_design(broken_slice: int | None = None) -> AIG:
    """``EDIT_SLICES`` independent chains; one source latch optionally flipped."""
    aig = AIG()
    for k in range(EDIT_SLICES):
        prev = None
        flags = []
        for i in range(EDIT_DEPTH):
            init = 0 if (i == 0 and k == broken_slice) else 1
            flag = aig.add_latch(f"s{k}_g{i}", init=init)
            aig.set_next(flag, flag if prev is None else prev)
            flags.append(flag)
            prev = flag
        for i in range(EDIT_DEPTH):
            aig.add_property(f"s{k}_C{i}", flags[i])
    return aig


# ----------------------------------------------------------------------
def run_once(build, cache_dir: str | None) -> dict:
    """One Session run; returns wall, verdicts, hit/re-prove counts."""
    events: list = []
    config = VerificationConfig(cache_dir=cache_dir)
    session = Session(TransitionSystem(build()), config=config, on_event=events.append)
    start = time.monotonic()
    report = session.run()
    wall = time.monotonic() - start
    hits = [e for e in events if getattr(e, "kind", "") == "cache-hit"]
    return {
        "wall_s": round(wall, 4),
        "properties": len(report.outcomes),
        "cache_hits": len(hits),
        "reproved": len(report.outcomes) - len(hits),
        "exact_hits": sum(1 for h in hits if h.exact_design),
        "cone_hits": sum(1 for h in hits if not h.exact_design),
        "verdicts": {n: o.status.value for n, o in report.outcomes.items()},
    }


def run_edit_scenario() -> dict:
    """Populate from the base design, then resubmit a one-latch edit."""
    cache_dir = tempfile.mkdtemp(prefix="bench-cache-edit-")
    try:
        base = run_once(lambda: chain_design(), cache_dir)
        edited = run_once(lambda: chain_design(broken_slice=0), cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    baseline = run_once(lambda: chain_design(broken_slice=0), None)
    changed = {f"s0_C{i}" for i in range(EDIT_DEPTH)}
    reproved = {
        name
        for name in edited["verdicts"]
        if name in changed or name not in base["verdicts"]
    }
    return {
        "design": f"{EDIT_SLICES} chains x {EDIT_DEPTH} stages",
        "edit": "slice s0 source latch reset 1 -> 0",
        "changed_cone_properties": sorted(changed),
        "base": base,
        "edited_resubmit": edited,
        "cache_off_baseline": baseline,
        "reproved_only_changed_cone": edited["reproved"] == len(changed)
        and edited["cone_hits"] == len(edited["verdicts"]) - len(changed),
        "verdict_parity": edited["verdicts"] == baseline["verdicts"],
        "expected_reproved": sorted(reproved),
    }


# ----------------------------------------------------------------------
def build_report() -> dict:
    report: dict = {"benchmark": "proof-cache", "families": {}}
    rows = []
    cold_total = warm_total = 0.0
    warm_reproved = 0
    parity = True
    for name, build in FAMILIES.items():
        cache_dir = tempfile.mkdtemp(prefix="bench-cache-")
        try:
            cold = run_once(build, cache_dir)
            warm = run_once(build, cache_dir)
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
        off = run_once(build, None)
        family_parity = (
            cold["verdicts"] == off["verdicts"]
            and warm["verdicts"] == off["verdicts"]
        )
        parity = parity and family_parity
        cold_total += cold["wall_s"]
        warm_total += warm["wall_s"]
        warm_reproved += warm["reproved"]
        speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
        report["families"][name] = {
            "cold": cold,
            "warm": warm,
            "speedup": round(speedup, 2),
            "verdict_parity_with_cache_off": family_parity,
        }
        rows.append(
            [
                name,
                cold["properties"],
                cold["wall_s"],
                warm["wall_s"],
                f"{speedup:.1f}x",
                warm["reproved"],
                "yes" if family_parity else "NO",
            ]
        )

    edit = run_edit_scenario()
    report["edit"] = edit
    parity = parity and edit["verdict_parity"]
    rows.append(
        [
            "chains (edited)",
            len(edit["edited_resubmit"]["verdicts"]),
            edit["base"]["wall_s"],
            edit["edited_resubmit"]["wall_s"],
            "-",
            edit["edited_resubmit"]["reproved"],
            "yes" if edit["verdict_parity"] else "NO",
        ]
    )

    aggregate_speedup = cold_total / max(warm_total, 1e-9)
    report["summary"] = {
        "cold_total_s": round(cold_total, 4),
        "warm_total_s": round(warm_total, 4),
        "aggregate_warm_speedup": round(aggregate_speedup, 2),
        "meets_5x_warm_target": aggregate_speedup >= 5.0,
        "warm_reproved_total": warm_reproved,
        "edit_reproved_only_changed_cone": edit["reproved_only_changed_cone"],
        "verdict_parity_everywhere": parity,
    }
    publish_table(
        "bench_cache",
        "Proof cache: cold vs warm vs one-latch edit",
        [
            "design",
            "props",
            "cold (s)",
            "resubmit (s)",
            "speedup",
            "re-proved",
            "parity",
        ],
        rows,
        note="re-proved on an unchanged resubmit must be 0; on the edited "
        "design, exactly the changed-cone properties",
    )
    return report


def write_report() -> dict:
    report = build_report()
    path = os.path.abspath(OUTPUT)
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
    print(f"wrote {path}")
    return report


def test_cache_benchmark():
    """Benchmark-as-test: the acceptance bars must hold."""
    report = write_report()
    summary = report["summary"]
    assert summary["warm_reproved_total"] == 0, summary
    assert summary["meets_5x_warm_target"], summary
    assert summary["edit_reproved_only_changed_cone"], report["edit"]
    assert summary["verdict_parity_everywhere"], summary


if __name__ == "__main__":
    report = write_report()
    print(json.dumps(report["summary"], indent=2))
