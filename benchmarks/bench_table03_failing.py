"""Table III — designs with failing properties: joint vs JA.

Paper layout: per design, the number of false (and true) properties each
method established, plus total times; JA additionally reports its
debugging set (the locally-false properties).

Expected shape: joint verification spends its budget chasing deep
counterexamples for the dominated properties; JA finds the small
debugging set quickly and proves everything else locally true.
"""

from __future__ import annotations

import pytest

from repro.gen.families import failing_designs
from repro.multiprop.ja import JAOptions, ja_verify
from repro.multiprop.joint import JointOptions, joint_verify
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed

JOINT_BUDGET_S = 20.0
JA_PER_PROP_S = 5.0


def build_table():
    rows = []
    for name, aig in failing_designs().items():
        ts = TransitionSystem(aig)
        joint, t_joint = timed(
            lambda: joint_verify(
                ts, JointOptions(total_time=JOINT_BUDGET_S), design_name=name
            )
        )
        ja, t_ja = timed(
            lambda: ja_verify(
                ts, JAOptions(per_property_time=JA_PER_PROP_S), design_name=name
            )
        )
        rows.append(
            [
                name,
                len(ts.latches),
                len(ts.properties),
                f"{len(joint.false_props())} ({len(joint.true_props())})",
                cell_time(t_joint),
                f"{len(ja.debugging_set())} ({len(ja.true_props())})",
                len(ja.unsolved()),
                cell_time(t_ja),
            ]
        )
    publish_table(
        "table03",
        "Table III: designs with failed properties (joint vs JA with clause re-use)",
        [
            "name",
            "#latch",
            "#prop",
            "joint #false(#true)",
            "joint time",
            "JA #false(#true)",
            "JA #unsolved",
            "JA time",
        ],
        rows,
        note=(
            "JA '#false' = debugging set: properties that are the FIRST to "
            "break; many joint-false properties are locally true"
        ),
    )
    return rows


@pytest.mark.benchmark(group="table03")
def test_table03_failing(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    def false_count(cell):
        return int(cell.split()[0])

    def seconds(cell):
        return float(cell.split()[0].replace(",", ""))

    # JA solves every property on every design within budget.
    assert all(row[6] == 0 for row in rows)
    # JA total time beats joint on every failing design.
    assert all(seconds(row[7]) < seconds(row[4]) for row in rows)
    # Debugging sets are no larger than joint's false sets, and strictly
    # smaller on the dependent-heavy designs.
    assert all(false_count(row[5]) <= max(false_count(row[3]), 1) for row in rows)
    by_name = {row[0]: row for row in rows}
    for name in ("f254", "f380", "f207"):
        assert false_count(by_name[name][5]) < false_count(by_name[name][3])
