"""Job-oriented service benchmark (PR 5 acceptance).

Two questions, answered with numbers in ``BENCH_service.json``:

1. **Throughput** — submitting 6 mixed-size jobs *concurrently* to one
   :class:`~repro.service.VerificationService` (4 worker seats) must
   sustain at least the throughput of submitting the same 6 jobs
   *serially* to the same warm pool.  Concurrency wins the straggler
   tails: while a big job's last properties run, the seats a serial
   client would leave idle execute the next job's backlog.
2. **Latency** — per-job latency (submit → done) distributions for
   both regimes, p50/p95.  Concurrent p95 may exceed serial per-job
   latency (jobs share seats); the batch finishes sooner anyway —
   that trade is the point of fair-share scheduling.

Verdicts are asserted identical between the two regimes, job by job.

Hardware note (``host_cpus`` in the JSON): on a single-core host the
seat processes time-slice one CPU, so the seat-backfilling win
collapses and the comparison degenerates to parity — concurrent wins
only the per-job setup latencies it overlaps (the ``ShardHost`` keeps
exchange-manager spawns out of both regimes).  Multi-core hosts show
the real utilization gap.

Run:  PYTHONPATH=src python benchmarks/bench_service.py
or:   PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.circuit.aig import AIG, aig_not
from repro.gen.counter import buggy_counter
from repro.service import VerificationService
from repro.ts.system import TransitionSystem

from benchmarks._harness import publish_table

OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_service.json")

WORKERS = 4
ROUNDS = 4


def _blocks(groups: int) -> AIG:
    aig = AIG()
    for g in range(groups):
        x = aig.add_latch(f"x{g}", init=0)
        aig.set_next(x, aig_not(x))
        y = aig.add_latch(f"y{g}", init=0)
        aig.set_next(y, y)
        z = aig.add_latch(f"z{g}", init=0)
        aig.set_next(z, aig.or_(z, y))
        aig.add_property(f"g{g}_y0", aig_not(y))
        aig.add_property(f"g{g}_xy", aig_not(aig.and_(x, y)))
        aig.add_property(f"g{g}_z0", aig_not(z))
    return aig


def job_mix() -> list[tuple[str, TransitionSystem]]:
    """6 jobs of deliberately mixed sizes (2 to 36 properties).

    The mix is the argument, twice over.  On a multi-core host the
    narrow jobs (2 properties) can never occupy more than 2 of the 4
    seats on their own — a serial client idles the rest, the concurrent
    scheduler backfills them from the big jobs' backlogs.  On *any*
    host (including single-core CI runners, where seat parallelism is
    time-sliced away) serial submission still pays each job's setup
    latency — shard-manager spawns, design shipping, ready round-trips
    — as dead time between jobs, while concurrent submission overlaps
    it with sibling compute.
    """
    from repro.gen import ALL_TRUE_SPECS, FAILING_SPECS

    return [
        ("t124", TransitionSystem(ALL_TRUE_SPECS["t124"].build())),
        ("counter8", TransitionSystem(buggy_counter(bits=8))),
        ("t135", TransitionSystem(ALL_TRUE_SPECS["t135"].build())),
        ("counter6", TransitionSystem(buggy_counter(bits=6))),
        ("f175", TransitionSystem(FAILING_SPECS["f175"].build())),
        ("blocks8", TransitionSystem(_blocks(8))),
    ]


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_batch(service: VerificationService, jobs, concurrent: bool):
    """Submit the mix; returns (wall, per-job latencies, verdicts)."""
    latencies: list[float] = []
    all_verdicts: list[dict[str, str]] = []
    start = time.monotonic()
    if concurrent:
        submitted = [
            (time.monotonic(), service.submit(ts, strategy="parallel-ja"))
            for _, ts in jobs
        ]
        for at, handle in submitted:
            report = handle.result(timeout=300)
            # Future resolution time is close enough to completion time
            # at these scales; what matters is the distribution shape.
            latencies.append(time.monotonic() - at)
            all_verdicts.append(
                {n: o.status.value for n, o in report.outcomes.items()}
            )
    else:
        for _, ts in jobs:
            at = time.monotonic()
            report = service.submit(ts, strategy="parallel-ja").result(
                timeout=300
            )
            latencies.append(time.monotonic() - at)
            all_verdicts.append(
                {n: o.status.value for n, o in report.outcomes.items()}
            )
    wall = time.monotonic() - start
    return wall, latencies, all_verdicts


def build_report() -> dict:
    jobs = job_mix()
    walls: dict[str, list[float]] = {"serial": [], "concurrent": []}
    latencies: dict[str, list[float]] = {"serial": [], "concurrent": []}
    reference_verdicts = None
    identical = True
    with VerificationService(
        workers=WORKERS, max_concurrent_jobs=len(jobs)
    ) as service:
        # Warm the pool (spawn seats, cache designs) outside the clock.
        warm, _, _ = run_batch(service, jobs, concurrent=False)
        # Interleave the regimes so machine noise (a shared CI runner's
        # neighbors) hits both alike; aggregate throughput over all
        # rounds rather than cherry-picking a best round.
        for _ in range(ROUNDS):
            for mode, concurrent in (("serial", False), ("concurrent", True)):
                wall, lats, verdicts = run_batch(service, jobs, concurrent)
                walls[mode].append(wall)
                latencies[mode].extend(lats)
                if reference_verdicts is None:
                    reference_verdicts = verdicts
                identical = identical and verdicts == reference_verdicts
        pool_stats = dict(service.stats()["pool"])
    best = {
        mode: {
            "wall_s": [round(w, 4) for w in walls[mode]],
            "total_wall_s": round(sum(walls[mode]), 4),
            "jobs_per_s": round(
                ROUNDS * len(jobs) / max(sum(walls[mode]), 1e-9), 2
            ),
            "latency_p50_s": round(percentile(latencies[mode], 0.50), 4),
            "latency_p95_s": round(percentile(latencies[mode], 0.95), 4),
        }
        for mode in ("serial", "concurrent")
    }
    speedup = best["concurrent"]["jobs_per_s"] / max(
        best["serial"]["jobs_per_s"], 1e-9
    )
    host_cpus = os.cpu_count() or 1
    # On one CPU the seat processes time-slice a single core and the
    # throughput comparison measures scheduler noise, not scaling; say
    # so in the report instead of publishing a meaningless verdict.
    scaling = "measured" if host_cpus >= 2 else "skipped(single-core)"
    report = {
        "benchmark": "service-concurrent-vs-serial",
        "jobs": [name for name, _ in jobs],
        "properties_total": sum(len(ts.properties) for _, ts in jobs),
        "workers": WORKERS,
        "host_cpus": host_cpus,
        "scaling": scaling,
        "rounds": ROUNDS,
        "warmup_wall_s": round(warm, 4),
        "serial": best["serial"],
        "concurrent": best["concurrent"],
        "speedup": round(speedup, 2),
        "identical_verdicts_between_regimes": identical,
        "pool": pool_stats,
        "summary": {
            "concurrent_throughput_ge_serial": best["concurrent"]["jobs_per_s"]
            >= best["serial"]["jobs_per_s"],
            "identical_verdicts": identical,
        },
    }
    publish_table(
        "bench_service",
        "Service: 6 mixed jobs, concurrent vs serial on one pool",
        ["regime", "wall", "jobs/s", "p50 / p95 latency"],
        [
            [
                mode,
                f"{best[mode]['total_wall_s']}s",
                best[mode]["jobs_per_s"],
                f"{best[mode]['latency_p50_s']}s / {best[mode]['latency_p95_s']}s",
            ]
            for mode in ("serial", "concurrent")
        ]
        + [["speedup", f"{report['speedup']}x", "", ""]],
    )
    return report


def write_report() -> dict:
    report = build_report()
    path = os.path.abspath(OUTPUT)
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {path}")
    return report


def test_service_benchmark():
    """Benchmark-as-test: the acceptance bars must hold.

    Throughput is wall-clock on whatever machine runs this, so the
    hard assert allows a small noise margin; the JSON records the
    strict comparison for the committed benchmark run.  On a
    single-core host (``scaling == "skipped(single-core)"``) the
    throughput bar is refused outright rather than passed vacuously:
    four seats time-slicing one CPU cannot demonstrate scaling, and a
    green "concurrent >= serial" from such a host would be noise
    dressed up as a result.
    """
    report = write_report()
    assert report["identical_verdicts_between_regimes"], report["summary"]
    if report["scaling"] == "measured":
        assert report["speedup"] >= 0.9, report["summary"]


if __name__ == "__main__":
    print(json.dumps(write_report()["summary"], indent=2))
