"""Service scaling matrix (PR 7 acceptance).

One question, answered with numbers in ``BENCH_service.json``: how does
batch throughput of one :class:`~repro.service.VerificationService`
scale with worker seats?  The same 6-job mix is submitted concurrently
to a fresh service at each worker count in the matrix (default
1/2/4/8, overridable via ``REPRO_SERVICE_MATRIX=1,2``), and every cell
records wall clock, jobs/s, per-job latency percentiles, and — via the
live :class:`~repro.service.ServiceStats` surface polled *during* the
runs — peak seat occupancy, seat crashes and admission-queue depth.

Verdicts are asserted identical across every cell, and the stats
assertions are always on: occupancy must stay within the seat count,
no seat may crash, and the queue must drain.

Hardware note (``host_cpus`` in the JSON): on a single-core host the
seat processes time-slice one CPU, so added seats cannot yield real
speedup; the scaling verdict is then *refused loudly* (``scaling:
skipped(single-core)``, a SKIP line on stderr) instead of passed
vacuously.  With ``host_cpus >= 2`` the matrix must show measured
speedup at the largest cell that fits the machine.

Run:  PYTHONPATH=src python benchmarks/bench_service.py
or:   PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.circuit.aig import AIG, aig_not
from repro.gen.counter import buggy_counter
from repro.service import VerificationService
from repro.ts.system import TransitionSystem

from benchmarks._harness import publish_table

OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_service.json")

DEFAULT_MATRIX = (1, 2, 4, 8)
ROUNDS = 2
#: Minimum measured speedup demanded of the best in-budget cell when
#: the host has real parallelism to offer (kept modest: CI neighbors).
SPEEDUP_BAR = 1.05


def worker_matrix() -> list[int]:
    """The seat counts to measure (``REPRO_SERVICE_MATRIX=1,2`` etc.)."""
    raw = os.environ.get("REPRO_SERVICE_MATRIX")
    if not raw:
        return list(DEFAULT_MATRIX)
    counts = sorted({int(part) for part in raw.split(",") if part.strip()})
    if not counts or counts[0] < 1:
        raise ValueError(f"bad REPRO_SERVICE_MATRIX {raw!r}")
    if 1 not in counts:  # the scaling baseline is always measured
        counts.insert(0, 1)
    return counts


def _blocks(groups: int) -> AIG:
    aig = AIG()
    for g in range(groups):
        x = aig.add_latch(f"x{g}", init=0)
        aig.set_next(x, aig_not(x))
        y = aig.add_latch(f"y{g}", init=0)
        aig.set_next(y, y)
        z = aig.add_latch(f"z{g}", init=0)
        aig.set_next(z, aig.or_(z, y))
        aig.add_property(f"g{g}_y0", aig_not(y))
        aig.add_property(f"g{g}_xy", aig_not(aig.and_(x, y)))
        aig.add_property(f"g{g}_z0", aig_not(z))
    return aig


def job_mix() -> list[tuple[str, TransitionSystem]]:
    """6 jobs of deliberately mixed sizes (2 to 36 properties).

    Narrow jobs (2 properties) can never fill a wide pool on their own;
    the fair-share scheduler backfills the idle seats from the big
    jobs' backlogs, which is exactly the effect the matrix measures.
    """
    from repro.gen import ALL_TRUE_SPECS, FAILING_SPECS

    return [
        ("t124", TransitionSystem(ALL_TRUE_SPECS["t124"].build())),
        ("counter8", TransitionSystem(buggy_counter(bits=8))),
        ("t135", TransitionSystem(ALL_TRUE_SPECS["t135"].build())),
        ("counter6", TransitionSystem(buggy_counter(bits=6))),
        ("f175", TransitionSystem(FAILING_SPECS["f175"].build())),
        ("blocks8", TransitionSystem(_blocks(8))),
    ]


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class StatsProbe:
    """Aggregates live ServiceStats samples taken mid-batch."""

    def __init__(self) -> None:
        self.samples = 0
        self.peak_busy = 0
        self.peak_pending = 0
        self.seat_crashes = 0

    def sample(self, service: VerificationService) -> None:
        stats = service.stats()
        self.samples += 1
        self.peak_pending = max(self.peak_pending, stats.pending)
        if stats.pool is not None:
            self.peak_busy = max(self.peak_busy, stats.pool.busy)
            self.seat_crashes = max(
                self.seat_crashes,
                sum(seat.crashes for seat in stats.pool.seats),
            )

    def as_dict(self) -> dict:
        return {
            "samples": self.samples,
            "peak_busy": self.peak_busy,
            "peak_pending": self.peak_pending,
            "seat_crashes": self.seat_crashes,
        }


def run_batch(service: VerificationService, jobs, probe: StatsProbe):
    """Submit the mix concurrently; sample stats while it runs."""
    latencies: list[float] = []
    all_verdicts: list[dict[str, str]] = []
    start = time.monotonic()
    submitted = [
        (time.monotonic(), service.submit(ts, strategy="parallel-ja"))
        for _, ts in jobs
    ]
    while not all(handle.status.terminal for _, handle in submitted):
        probe.sample(service)
        time.sleep(0.02)
    for at, handle in submitted:
        report = handle.result(timeout=300)
        # Future resolution time is close enough to completion time
        # at these scales; what matters is the distribution shape.
        latencies.append(time.monotonic() - at)
        all_verdicts.append(
            {n: o.status.value for n, o in report.outcomes.items()}
        )
    wall = time.monotonic() - start
    return wall, latencies, all_verdicts


def measure_cell(workers: int, jobs) -> tuple[dict, list[dict[str, str]]]:
    """One matrix cell: a fresh service at ``workers`` seats."""
    probe = StatsProbe()
    walls: list[float] = []
    latencies: list[float] = []
    verdicts: list[dict[str, str]] = []
    with VerificationService(
        workers=workers, max_concurrent_jobs=len(jobs)
    ) as service:
        # Warm the pool (spawn seats, cache designs) outside the clock.
        warm, _, _ = run_batch(service, jobs, StatsProbe())
        for _ in range(ROUNDS):
            wall, lats, batch_verdicts = run_batch(service, jobs, probe)
            walls.append(wall)
            latencies.extend(lats)
            verdicts = batch_verdicts
        final = service.stats()
        pool_counters = dict(final.pool.counters)
        exchange = dict(final.exchange or {})
        exchange.pop("live", None)
        alive = final.pool.alive
    cell = {
        "workers": workers,
        "wall_s": [round(w, 4) for w in walls],
        "total_wall_s": round(sum(walls), 4),
        "warmup_wall_s": round(warm, 4),
        "jobs_per_s": round(
            ROUNDS * len(jobs) / max(sum(walls), 1e-9), 2
        ),
        "latency_p50_s": round(percentile(latencies, 0.50), 4),
        "latency_p95_s": round(percentile(latencies, 0.95), 4),
        "stats": probe.as_dict(),
        "seats_alive_at_end": alive,
        "pool": pool_counters,
        "exchange": exchange,
    }
    return cell, verdicts


def build_report() -> dict:
    jobs = job_mix()
    counts = worker_matrix()
    host_cpus = os.cpu_count() or 1
    matrix: dict[str, dict] = {}
    reference_verdicts = None
    identical = True
    stats_ok = True
    for workers in counts:
        cell, verdicts = measure_cell(workers, jobs)
        matrix[str(workers)] = cell
        if reference_verdicts is None:
            reference_verdicts = verdicts
        identical = identical and verdicts == reference_verdicts
        # Stats assertions, always on: occupancy within the seat count,
        # a busy pool actually observed, no seat crashes, queue drained
        # to full seat strength at the end.
        cell["stats_ok"] = (
            0 < cell["stats"]["peak_busy"] <= workers
            and cell["stats"]["seat_crashes"] == 0
            and cell["seats_alive_at_end"] == workers
        )
        stats_ok = stats_ok and cell["stats_ok"]

    baseline = matrix["1"]["jobs_per_s"]
    for cell in matrix.values():
        cell["speedup_vs_1w"] = round(
            cell["jobs_per_s"] / max(baseline, 1e-9), 2
        )
    # The scaling verdict comes from the widest cell the host can truly
    # parallelize (seats <= cores); on one CPU there is none.
    in_budget = [c for c in counts if 2 <= c <= host_cpus]
    if in_budget:
        scaling = "measured"
        best = max(matrix[str(c)]["speedup_vs_1w"] for c in in_budget)
    else:
        scaling = "skipped(single-core)"
        best = None
        print(
            "SKIP: scaling assertion skipped — "
            f"host has {host_cpus} CPU(s); the matrix cells time-slice "
            "one core and cannot demonstrate speedup. Re-run on a "
            "multi-core host for a real scaling verdict.",
            file=sys.stderr,
        )

    report = {
        "benchmark": "service-scaling-matrix",
        "jobs": [name for name, _ in jobs],
        "properties_total": sum(len(ts.properties) for _, ts in jobs),
        "rounds": ROUNDS,
        "host_cpus": host_cpus,
        "worker_matrix": counts,
        "matrix": matrix,
        "scaling": scaling,
        "measured_speedup": best,
        "speedup_bar": SPEEDUP_BAR,
        "identical_verdicts_across_cells": identical,
        "summary": {
            "identical_verdicts": identical,
            "stats_ok": stats_ok,
            "scaling": scaling,
            "best_in_budget_speedup": best,
        },
    }
    publish_table(
        "bench_service",
        "Service scaling matrix: 6 mixed jobs, concurrent, per seat count",
        ["seats", "wall", "jobs/s", "speedup", "peak busy", "p50 / p95"],
        [
            [
                str(workers),
                f"{matrix[str(workers)]['total_wall_s']}s",
                matrix[str(workers)]["jobs_per_s"],
                f"{matrix[str(workers)]['speedup_vs_1w']}x",
                matrix[str(workers)]["stats"]["peak_busy"],
                f"{matrix[str(workers)]['latency_p50_s']}s / "
                f"{matrix[str(workers)]['latency_p95_s']}s",
            ]
            for workers in counts
        ],
    )
    return report


def write_report() -> dict:
    report = build_report()
    path = os.path.abspath(OUTPUT)
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {path}")
    return report


def test_service_benchmark():
    """Benchmark-as-test: the acceptance bars must hold.

    Verdict identity and the live-stats invariants (occupancy within
    the seat count, zero seat crashes, full seat strength at the end)
    hold on any machine.  The scaling bar is wall-clock, so it only
    applies when the host has at least two cores (``scaling ==
    "measured"``); a single-core host refuses the bar loudly rather
    than passing it vacuously — added seats time-slicing one CPU would
    make any green verdict noise dressed up as a result.
    """
    report = write_report()
    assert report["identical_verdicts_across_cells"], report["summary"]
    assert report["summary"]["stats_ok"], {
        workers: cell["stats"]
        for workers, cell in report["matrix"].items()
    }
    if report["scaling"] == "measured":
        assert report["measured_speedup"] >= SPEEDUP_BAR, report["summary"]


if __name__ == "__main__":
    print(json.dumps(write_report()["summary"], indent=2))
