"""Table VII — the benefit of re-using strengthening clauses.

JA-verification with and without clause re-use on the all-true designs.

Expected shape: re-use wins clearly on designs whose properties share an
inductive invariant (the rings: every mutual-exclusion property needs
the same one-hotness clauses), and is a wash on designs with few or
unrelated properties (the paper's 6s256 exception).
"""

from __future__ import annotations

import pytest

from repro.gen.families import all_true_designs
from repro.multiprop.ja import JAOptions, ja_verify
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed

PER_PROP_S = 10.0


def build_table():
    rows = []
    for name, aig in all_true_designs().items():
        ts = TransitionSystem(aig)
        without, t_without = timed(
            lambda: ja_verify(
                ts,
                JAOptions(clause_reuse=False, per_property_time=PER_PROP_S),
                design_name=name,
            )
        )
        with_reuse, t_with = timed(
            lambda: ja_verify(
                ts,
                JAOptions(clause_reuse=True, per_property_time=PER_PROP_S),
                design_name=name,
            )
        )
        rows.append(
            [
                name,
                len(ts.properties),
                len(without.unsolved()),
                cell_time(t_without),
                len(with_reuse.unsolved()),
                cell_time(t_with),
                f"{t_without / max(t_with, 1e-9):.2f}x",
            ]
        )
    publish_table(
        "table07",
        "Table VII: JA-verification with vs without clause re-use",
        [
            "name",
            "#props",
            "no-reuse #unsolved",
            "no-reuse time",
            "reuse #unsolved",
            "reuse time",
            "speedup",
        ],
        rows,
        note="expected: re-use clearly faster on shared-invariant designs",
    )
    return rows


@pytest.mark.benchmark(group="table07")
def test_table07_clause_reuse(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # Everything solved either way on these scaled-down designs.
    assert all(row[2] == 0 and row[4] == 0 for row in rows)
    speedups = {row[0]: float(row[6][:-1]) for row in rows}
    # Ring-heavy designs benefit clearly from re-use.
    assert speedups["t124"] > 1.2
    # Averaged over all designs, re-use wins.
    assert sum(speedups.values()) / len(speedups) > 1.0
