"""Table VIII — lifting respecting vs ignoring property constraints, on
the failing designs.

Expected shape: comparable performance on failing designs (the paper's
Table VIII): the occasional spurious-CEX re-run of the ignoring mode
costs about as much as the smaller lifted cubes of the respecting mode.
"""

from __future__ import annotations

import pytest

from repro.gen.families import failing_designs
from repro.multiprop.ja import JAOptions, ja_verify
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed

PER_PROP_S = 5.0


def build_table():
    rows = []
    for name, aig in failing_designs().items():
        ts = TransitionSystem(aig)
        respecting, t_resp = timed(
            lambda: ja_verify(
                ts,
                JAOptions(
                    respect_constraints_in_lifting=True,
                    per_property_time=PER_PROP_S,
                ),
                design_name=name,
            )
        )
        ignoring, t_ign = timed(
            lambda: ja_verify(
                ts,
                JAOptions(
                    respect_constraints_in_lifting=False,
                    per_property_time=PER_PROP_S,
                ),
                design_name=name,
            )
        )
        assert respecting.debugging_set() == ignoring.debugging_set()
        rows.append(
            [
                name,
                len(ts.properties),
                len(respecting.unsolved()),
                cell_time(t_resp),
                len(ignoring.unsolved()),
                cell_time(t_ign),
                int(ignoring.stats["spurious_reruns"]),
            ]
        )
    publish_table(
        "table08",
        "Table VIII: lifting respecting vs ignoring property constraints (failing designs)",
        [
            "name",
            "#props",
            "respect #unsolved",
            "respect time",
            "ignore #unsolved",
            "ignore time",
            "#spurious reruns",
        ],
        rows,
        note="expected: comparable performance; identical debugging sets",
    )
    return rows


@pytest.mark.benchmark(group="table08")
def test_table08_lifting_failing(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    def seconds(cell):
        return float(cell.split()[0].replace(",", ""))

    assert all(row[2] == 0 and row[4] == 0 for row in rows)
    for row in rows:
        slow = max(seconds(row[3]), seconds(row[5]))
        fast = min(seconds(row[3]), seconds(row[5]))
        assert slow <= max(6 * fast, 0.5), row
