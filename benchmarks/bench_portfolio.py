"""Portfolio racing vs the best single engine (PR 9 acceptance).

Two questions, answered with numbers in ``BENCH_portfolio.json``:

1. **Race overhead.**  Per property of the Table III-style failing
   families, how does the full-slate race's wall clock compare to the
   best single engine for that property?  Each (property, engine) cell
   is measured through the same scheduler machinery (a one-engine
   slate on the same persistent pool), so the comparison isolates the
   cost of *racing* — admission of the extra attempts, arbitration,
   loser cancellation — from constant pool overhead.  The acceptance
   bar: race wall <= 1.2x the best single engine, plus a small
   absolute slack, because sub-second cells are dispatch-jitter
   dominated (a 2 ms race losing to a 1 ms solo run is not a finding).
2. **Verdict parity.**  A full-design portfolio run must report
   exactly the verdicts sequential JA-verification reports, and name a
   winning engine for every property.

Run:  PYTHONPATH=src python benchmarks/bench_portfolio.py
or:   PYTHONPATH=src python -m pytest benchmarks/bench_portfolio.py -q
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.gen.families import failing_designs
from repro.multiprop.ja import JAOptions, ja_verify
from repro.parallel import ENGINE_NAMES, ParallelOptions, WorkerPool, portfolio_verify
from repro.ts.system import TransitionSystem

from benchmarks._harness import publish_table, timed

OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_portfolio.json")

DEFAULT_FAMILIES = ("f175", "f260", "f258")
WORKERS = len(ENGINE_NAMES)  # every attempt of one race gets a seat
PER_PROP_S = 3.0
RACE_BAR = 1.2
#: Absolute jitter allowance on top of the 1.2x bar: scheduler
#: dispatch and queue latency dominate cells that finish in
#: milliseconds, and they do not shrink with the engine's work.
SLACK_S = 0.5
SEED = 0


def families() -> dict:
    """Selected failing families (``REPRO_PORTFOLIO_FAMILIES=f175,...``)."""
    designs = failing_designs()
    raw = os.environ.get("REPRO_PORTFOLIO_FAMILIES")
    names = (
        [part.strip() for part in raw.split(",") if part.strip()]
        if raw
        else list(DEFAULT_FAMILIES)
    )
    unknown = sorted(set(names) - set(designs))
    if unknown:
        raise ValueError(f"unknown families {unknown}; have {sorted(designs)}")
    return {name: designs[name] for name in names}


def _options(pool: WorkerPool, engines, order) -> ParallelOptions:
    return ParallelOptions(
        workers=WORKERS,
        pool=pool,
        exchange=False,
        portfolio_engines=tuple(engines),
        order=list(order),
        per_property_time=PER_PROP_S,
        seed=SEED,
    )


def _race_once(ts, pool, engines, prop, design_name):
    report = portfolio_verify(
        ts, _options(pool, engines, [prop]), design_name=design_name
    )
    race = report.stats["portfolio"][prop]
    return race["status"], race["wall_s"], race["winner"]


def bench_design(name: str, aig, pool: WorkerPool) -> dict:
    ts = TransitionSystem(aig)
    sequential, seq_wall = timed(
        lambda: ja_verify(
            ts, JAOptions(per_property_time=PER_PROP_S), design_name=name
        )
    )
    seq_verdicts = {
        prop: outcome.status.value
        for prop, outcome in sequential.outcomes.items()
    }

    # Full-design race: parity and named winners.
    full_report, full_wall = timed(
        lambda: portfolio_verify(
            ts,
            _options(pool, ENGINE_NAMES, [p.name for p in ts.properties]),
            design_name=name,
        )
    )
    full_verdicts = {
        prop: outcome.status.value
        for prop, outcome in full_report.outcomes.items()
    }
    winners = {
        prop: race["winner"]
        for prop, race in full_report.stats["portfolio"].items()
    }

    # Per-property: full-slate race vs each engine solo, same machinery.
    properties = {}
    for prop in seq_verdicts:
        singles = {}
        for engine in ENGINE_NAMES:
            status, wall, _ = _race_once(ts, pool, (engine,), prop, name)
            singles[engine] = {"status": status, "wall_s": round(wall, 4)}
        race_status, race_wall, race_winner = _race_once(
            ts, pool, ENGINE_NAMES, prop, name
        )
        solvers = {
            engine: cell["wall_s"]
            for engine, cell in singles.items()
            if cell["status"] == race_status
        }
        best_engine = min(solvers, key=solvers.get)
        best_wall = solvers[best_engine]
        properties[prop] = {
            "verdict": race_status,
            "winner": race_winner,
            "race_wall_s": round(race_wall, 4),
            "best_single": best_engine,
            "best_single_wall_s": best_wall,
            "ratio": round(race_wall / best_wall, 3) if best_wall else None,
            "within_bar": race_wall <= RACE_BAR * best_wall + SLACK_S,
            "singles": singles,
        }

    return {
        "properties": properties,
        "sequential_ja_wall_s": round(seq_wall, 4),
        "race_full_design_wall_s": round(full_wall, 4),
        "verdict_parity": full_verdicts == seq_verdicts,
        "verdicts": full_verdicts,
        "winners": winners,
        "all_winners_named": all(w is not None for w in winners.values()),
    }


def build_report() -> dict:
    designs = families()
    pool = WorkerPool(workers=WORKERS)
    try:
        cells = {
            name: bench_design(name, aig, pool)
            for name, aig in designs.items()
        }
    finally:
        pool.shutdown()
    worst = max(
        (
            (entry["ratio"], f"{name}:{prop}")
            for name, cell in cells.items()
            for prop, entry in cell["properties"].items()
            if entry["ratio"] is not None
        ),
    )
    report = {
        "v": 1,
        "workers": WORKERS,
        "engines": list(ENGINE_NAMES),
        "seed": SEED,
        "per_property_time_s": PER_PROP_S,
        "race_bar": RACE_BAR,
        "slack_s": SLACK_S,
        "designs": cells,
        "summary": {
            "parity_ok": all(c["verdict_parity"] for c in cells.values()),
            "winners_named": all(
                c["all_winners_named"] for c in cells.values()
            ),
            "all_within_bar": all(
                entry["within_bar"]
                for cell in cells.values()
                for entry in cell["properties"].values()
            ),
            "worst_ratio": worst[0],
            "worst_cell": worst[1],
        },
    }
    publish_table(
        "bench_portfolio",
        "Portfolio race vs best single engine (failing families)",
        ["design", "#prop", "parity", "winners", "worst ratio"],
        [
            [
                name,
                len(cell["properties"]),
                "yes" if cell["verdict_parity"] else "NO",
                ",".join(sorted(set(cell["winners"].values()))),
                max(
                    entry["ratio"]
                    for entry in cell["properties"].values()
                    if entry["ratio"] is not None
                ),
            ]
            for name, cell in cells.items()
        ],
        note=(
            f"ratio = race wall / best single-engine wall per property; "
            f"bar {RACE_BAR}x + {SLACK_S}s jitter slack"
        ),
    )
    return report


def write_report() -> dict:
    report = build_report()
    path = os.path.abspath(OUTPUT)
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {path}")
    return report


def test_portfolio_benchmark():
    """Benchmark-as-test: the PR 9 acceptance bars must hold."""
    report = write_report()
    assert report["summary"]["parity_ok"], report["summary"]
    assert report["summary"]["winners_named"], report["summary"]
    assert report["summary"]["all_within_bar"], {
        f"{name}:{prop}": entry
        for name, cell in report["designs"].items()
        for prop, entry in cell["properties"].items()
        if not entry["within_bar"]
    }


if __name__ == "__main__":
    print(json.dumps(write_report()["summary"], indent=2))
