"""Table II — designs with many properties: joint vs JA for the first k.

Paper layout: per design and per k, the number of unsolved properties
and total time for joint verification and for JA-verification.

Expected shape: joint verification degrades sharply as k grows on the
failing, heterogeneous designs (r400, r355) and stays competitive only
on the homogeneous all-true ones; r403 is the exception where joint
wins (large shared logic amortized over one aggregate run).
"""

from __future__ import annotations

import pytest

from repro.gen.families import LARGE_DESIGN_NAMES, large_design
from repro.multiprop.ja import JAOptions, ja_verify
from repro.multiprop.joint import JointOptions, joint_verify
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed

JOINT_BUDGET_S = 20.0
JA_PER_PROP_S = 5.0
KS = (10, 25, None)  # None = all properties


def build_table():
    rows = []
    for name in LARGE_DESIGN_NAMES:
        aig = large_design(name)
        total = len(aig.properties)
        for k in KS:
            count = total if k is None else min(k, total)
            ts = TransitionSystem(aig, properties=aig.properties[:count])
            joint, t_joint = timed(
                lambda: joint_verify(
                    ts, JointOptions(total_time=JOINT_BUDGET_S), design_name=name
                )
            )
            ja, t_ja = timed(
                lambda: ja_verify(
                    ts, JAOptions(per_property_time=JA_PER_PROP_S), design_name=name
                )
            )
            rows.append(
                [
                    name,
                    total,
                    count,
                    len(joint.unsolved()),
                    cell_time(t_joint),
                    len(ja.unsolved()),
                    cell_time(t_ja),
                ]
            )
    publish_table(
        "table02",
        "Table II: designs with a large number of properties (first k checked)",
        [
            "name",
            "#all props",
            "#tried",
            "joint #unsolved",
            "joint time",
            "JA #unsolved",
            "JA time",
        ],
        rows,
        note=(
            f"joint budget {JOINT_BUDGET_S:.0f}s/design, JA budget "
            f"{JA_PER_PROP_S:.0f}s/property (paper: 10h and 0.3h)"
        ),
    )
    return rows


@pytest.mark.benchmark(group="table02")
def test_table02_many_props(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    by_design = {}
    for row in rows:
        by_design.setdefault(row[0], []).append(row)

    def seconds(cell):
        return float(cell.split()[0].replace(",", ""))

    # JA solves everything within budget on every design.
    assert all(row[5] == 0 for row in rows)
    # On the failing heterogeneous designs, JA beats joint at full k.
    for name in ("r400", "r355"):
        full = by_design[name][-1]
        assert full[3] > 0 or seconds(full[4]) > seconds(full[6])
    # r403 is the joint-friendly exception at full k.
    full = by_design["r403"][-1]
    assert seconds(full[4]) < seconds(full[6])
