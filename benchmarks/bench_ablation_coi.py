"""Ablation — cone-of-influence front end for JA-verification.

The one Table II benchmark where joint verification wins (r403/6s403)
wins because one aggregate run amortizes the whole-design encoding that
separate verification pays per property.  A COI front end removes that
cost: each local proof sees only the target's support-connected cone.
This ablation quantifies it and checks the paper's related-work remark
that structural reductions compose with the semantic JA machinery.
"""

from __future__ import annotations

import pytest

from repro.gen.families import LARGE_DESIGN_NAMES, large_design
from repro.multiprop.ja import JAOptions, ja_verify
from repro.multiprop.joint import JointOptions, joint_verify
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed

JOINT_BUDGET_S = 20.0
JA_PER_PROP_S = 5.0


def build_table():
    rows = []
    for name in LARGE_DESIGN_NAMES:
        ts = TransitionSystem(large_design(name))
        joint, t_joint = timed(
            lambda: joint_verify(
                ts, JointOptions(total_time=JOINT_BUDGET_S), design_name=name
            )
        )
        plain, t_plain = timed(
            lambda: ja_verify(
                ts, JAOptions(per_property_time=JA_PER_PROP_S), design_name=name
            )
        )
        coi, t_coi = timed(
            lambda: ja_verify(
                ts,
                JAOptions(per_property_time=JA_PER_PROP_S, coi_reduction=True),
                design_name=name,
            )
        )
        assert plain.debugging_set() == coi.debugging_set()
        rows.append(
            [
                name,
                len(ts.properties),
                f"{len(joint.unsolved())}u " + cell_time(t_joint),
                f"{len(plain.unsolved())}u " + cell_time(t_plain),
                f"{len(coi.unsolved())}u " + cell_time(t_coi),
                f"{t_plain / max(t_coi, 1e-9):.1f}x",
            ]
        )
    publish_table(
        "ablation_coi",
        "Ablation: cone-of-influence front end for JA-verification (Table II designs)",
        ["name", "#props", "joint", "JA", "JA+COI", "COI speedup"],
        rows,
        note="identical debugging sets; COI removes the whole-design encoding cost",
    )
    return rows


@pytest.mark.benchmark(group="ablation-coi")
def test_ablation_coi(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    def seconds(cell):
        return float(cell.split()[1].replace(",", ""))

    by_name = {row[0]: row for row in rows}
    # On the ballast-heavy r403 the COI front end must beat plain JA by a
    # wide margin and close the gap to joint verification.
    assert float(by_name["r403"][5][:-1]) > 3.0
    assert seconds(by_name["r403"][4]) <= seconds(by_name["r403"][2])
    # COI never slows JA down by more than noise on the other designs.
    for row in rows:
        assert seconds(row[4]) <= 2 * seconds(row[3]) + 0.25, row
