"""Ablation — property ordering, clustering, sweeping, CTG.

Four knobs around the core JA loop, measured on representative designs:

* ordering (footnote 1 / Sec. 9-C): "verify easier properties first to
  accumulate strengthening clauses" — design order vs cone-size order;
* structural clustering (related work [8], [10]) vs flat methods;
* simulation sweeping as a pre-pass;
* CTG-aware generalization inside IC3.
"""

from __future__ import annotations

import pytest

from repro.gen.families import ALL_TRUE_SPECS, FAILING_SPECS
from repro.multiprop.clustering import ClusterOptions, clustered_verify
from repro.multiprop.ja import JAOptions, ja_verify
from repro.multiprop.ordering import by_cone_size, design_order, shuffled
from repro.multiprop.sweep import sweep
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed


def build_ordering_table():
    rows = []
    for name in ("t124", "t407", "f335"):
        spec = ALL_TRUE_SPECS.get(name) or FAILING_SPECS[name]
        ts = TransitionSystem(spec.build())
        for label, order in (
            ("design", design_order(ts)),
            ("cone-size", by_cone_size(ts)),
            ("shuffled:1", shuffled(ts, 1)),
        ):
            report, elapsed = timed(
                lambda order=order: ja_verify(
                    ts, JAOptions(order=list(order)), design_name=name
                )
            )
            rows.append(
                [name, label, len(report.unsolved()), cell_time(elapsed)]
            )
    publish_table(
        "ablation_ordering",
        "Ablation: property ordering in JA-verification (Sec. 9-C)",
        ["design", "order", "#unsolved", "time"],
        rows,
    )
    return rows


def build_methods_table():
    rows = []
    for name in ("f207", "t124"):
        spec = FAILING_SPECS.get(name) or ALL_TRUE_SPECS[name]
        ts = TransitionSystem(spec.build())
        ja, t_ja = timed(lambda: ja_verify(ts, design_name=name))
        ja_ctg, t_ctg = timed(
            lambda: ja_verify(ts, JAOptions(ctg=True), design_name=name)
        )
        clustered, t_cl = timed(
            lambda: clustered_verify(
                ts, ClusterOptions(inner="joint"), design_name=name
            )
        )
        swept, t_sw = timed(lambda: sweep(ts, runs=32, depth=32, seed=0))
        rows.append(
            [
                name,
                cell_time(t_ja),
                cell_time(t_ctg),
                cell_time(t_cl),
                f"{cell_time(t_sw)} ({len(swept.failed)} hit)",
            ]
        )
    publish_table(
        "ablation_methods",
        "Ablation: JA vs JA+CTG vs clustered-joint vs simulation sweep",
        ["design", "JA", "JA+CTG", "clustered", "sweep (witnesses)"],
        rows,
        note="sweep is a pre-pass: it classifies shallow failures without SAT",
    )
    return rows


@pytest.mark.benchmark(group="ablation-ordering")
def test_ablation_ordering(benchmark):
    rows = benchmark.pedantic(build_ordering_table, rounds=1, iterations=1)
    # All orders solve everything on these designs (order affects time only).
    assert all(row[2] == 0 for row in rows)


@pytest.mark.benchmark(group="ablation-methods")
def test_ablation_methods(benchmark):
    rows = benchmark.pedantic(build_methods_table, rounds=1, iterations=1)
    assert len(rows) == 2
