"""Shared infrastructure for the table-reproduction benchmarks.

Each ``bench_tableXX_*.py`` regenerates one table of the paper.  The
rendered tables are collected here, printed in the pytest terminal
summary, and written to ``benchmarks/results/``.

Budgets: the paper uses wall-clock limits of 0.3-10 hours per cell on a
C++ engine; this reproduction scales designs down ~10x and budgets down
to seconds (see EXPERIMENTS.md).  Cells that exceed their budget are
reported ``*``, exactly like the paper's timeout entries.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence

from repro.multiprop.report import format_time, render_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_collected: list[str] = []


def publish_table(
    table_id: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Render, remember and persist one reproduced table."""
    text = render_table(title, headers, rows, note=note)
    _collected.append(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{table_id}.txt"), "w") as f:
        f.write(text + "\n")
    return text


def collected_tables() -> list[str]:
    return list(_collected)


def cell_time(seconds: float, timed_out: bool = False) -> str:
    """Format one time cell; '*' marks a budget exceedance (as in Table I)."""
    return "*" if timed_out else format_time(seconds)


def timed(fn: Callable[[], object]) -> tuple:
    """Run a thunk, returning (result, elapsed_seconds)."""
    start = time.monotonic()
    result = fn()
    return result, time.monotonic() - start
