"""Table I — the counter example: global BMC/PDR vs local proving.

Paper row layout::

    #bits | BMC global (#frames, time) | PDR global (#frames, time) | local time

Expected shape: BMC's frame count doubles with each extra bit and soon
exceeds its budget; PDR follows somewhat later; local JA proving stays
flat regardless of width (the debugging set is {P0}, and under P0 the
property P1 is inductive).
"""

from __future__ import annotations

import pytest

from repro.engines.bmc import bmc_check
from repro.engines.ic3 import IC3Options, ic3_check
from repro.engines.result import PropStatus, ResourceBudget
from repro.gen.counter import buggy_counter
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed

BITS = (4, 6, 8, 10)
CELL_BUDGET_S = 15.0


def _global_bmc(ts):
    budget = ResourceBudget(time_limit=CELL_BUDGET_S)
    return bmc_check(ts, "P1", max_depth=2000, budget=budget)


def _global_pdr(ts):
    budget = ResourceBudget(time_limit=CELL_BUDGET_S)
    return ic3_check(ts, "P1", IC3Options(budget=budget, max_frames=2000))


def _local(ts):
    budget = ResourceBudget(time_limit=CELL_BUDGET_S)
    # Local proving of both properties, as Ja-ver would: P0 (the debugging
    # set) plus P1 under assumption P0.
    r0 = ic3_check(ts, "P0", IC3Options(assumed=("P1",), budget=budget))
    r1 = ic3_check(ts, "P1", IC3Options(assumed=("P0",), budget=budget))
    return r0, r1


def build_table():
    rows = []
    for bits in BITS:
        ts = TransitionSystem(buggy_counter(bits))
        bmc, t_bmc = timed(lambda: _global_bmc(ts))
        pdr, t_pdr = timed(lambda: _global_pdr(ts))
        (r0, r1), t_local = timed(lambda: _local(ts))
        assert r0.status is PropStatus.FAILS
        assert r1.status in (PropStatus.HOLDS, PropStatus.UNKNOWN)
        rows.append(
            [
                bits,
                bmc.frames if bmc.fails else "*",
                cell_time(t_bmc, timed_out=not bmc.fails),
                pdr.frames if pdr.fails else "*",
                cell_time(t_pdr, timed_out=not pdr.fails),
                cell_time(t_local, timed_out=r1.unknown),
            ]
        )
    publish_table(
        "table01",
        "Table I: counter example (global vs local proving of P0, P1)",
        ["#bits", "bmc #frames", "bmc time", "pdr #frames", "pdr time", "local time"],
        rows,
        note=f"budget {CELL_BUDGET_S:.0f}s per cell; '*' = exceeded (paper: 1h)",
    )
    return rows


@pytest.mark.benchmark(group="table01")
def test_table01_counter(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    # Shape assertions (the paper's qualitative claims).
    by_bits = {row[0]: row for row in rows}
    # BMC frame counts double with width while they stay solvable.
    solved_bmc = [row for row in rows if row[1] != "*"]
    for earlier, later in zip(solved_bmc, solved_bmc[1:]):
        assert later[1] > 2 * (earlier[1] - 2)
    # Local proving never times out.
    assert all(row[5] != "*" for row in rows)
