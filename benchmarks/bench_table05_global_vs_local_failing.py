"""Table V — separate verification with global vs local proofs on the
failing designs (both with clause re-use).

Expected shape: the global variant must compute one deep counterexample
per dominated property and exhausts its per-property budgets; the local
variant (= JA) replaces those with instant local proofs.  "Separate
verification with local proofs dramatically outperforms the one with
global proofs."
"""

from __future__ import annotations

import pytest

from repro.gen.families import failing_designs
from repro.multiprop.ja import JAOptions, ja_verify
from repro.multiprop.separate import SeparateOptions, separate_verify
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed

PER_PROP_S = 2.0
TOTAL_S = 30.0


def build_table():
    rows = []
    for name, aig in failing_designs().items():
        ts = TransitionSystem(aig)
        glob, t_glob = timed(
            lambda: separate_verify(
                ts,
                SeparateOptions(per_property_time=PER_PROP_S, total_time=TOTAL_S),
                design_name=name,
            )
        )
        local, t_local = timed(
            lambda: ja_verify(
                ts,
                JAOptions(per_property_time=PER_PROP_S, total_time=TOTAL_S),
                design_name=name,
            )
        )
        rows.append(
            [
                name,
                len(ts.properties),
                len(glob.unsolved()),
                cell_time(t_glob),
                len(local.unsolved()),
                cell_time(t_local),
            ]
        )
    publish_table(
        "table05",
        "Table V: separate verification, global vs local proofs (failing designs)",
        [
            "name",
            "#props",
            "global #unsolved",
            "global time",
            "local #unsolved",
            "local time",
        ],
        rows,
        note=f"{PER_PROP_S:.0f}s/property, {TOTAL_S:.0f}s/design (paper: same limits as Table III, 10h total)",
    )
    return rows


@pytest.mark.benchmark(group="table05")
def test_table05_global_vs_local_failing(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    def seconds(cell):
        return float(cell.split()[0].replace(",", ""))

    # Local proofs solve everything within budget.
    assert all(row[4] == 0 for row in rows)
    # Aggregate: global proving takes far longer overall.
    total_global = sum(seconds(row[3]) for row in rows)
    total_local = sum(seconds(row[5]) for row in rows)
    assert total_global > 3 * total_local
    # The dramatic rows: deep-dependent designs leave the global variant
    # with unsolved properties while local solves all of them.
    by_name = {row[0]: row for row in rows}
    assert by_name["f380"][2] > 0
    assert by_name["f104"][2] > 0
