"""Table IV — designs where all properties are true: joint vs JA.

Expected shape: both methods solve everything; joint verification is
comparable and often slightly faster (one aggregate run amortizes the
shared work), which is exactly the paper's reading of its Table IV.
"""

from __future__ import annotations

import pytest

from repro.gen.families import all_true_designs
from repro.multiprop.ja import JAOptions, ja_verify
from repro.multiprop.joint import JointOptions, joint_verify
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed

JOINT_BUDGET_S = 30.0
JA_PER_PROP_S = 10.0


def build_table():
    rows = []
    for name, aig in all_true_designs().items():
        ts = TransitionSystem(aig)
        joint, t_joint = timed(
            lambda: joint_verify(
                ts, JointOptions(total_time=JOINT_BUDGET_S), design_name=name
            )
        )
        ja, t_ja = timed(
            lambda: ja_verify(
                ts, JAOptions(per_property_time=JA_PER_PROP_S), design_name=name
            )
        )
        winner = "joint" if t_joint <= t_ja else "JA"
        rows.append(
            [
                name,
                len(ts.latches),
                len(ts.properties),
                cell_time(t_joint),
                len(ja.unsolved()),
                cell_time(t_ja),
                winner,
            ]
        )
    publish_table(
        "table04",
        "Table IV: all properties are true (joint vs JA with clause re-use)",
        ["name", "#latch", "#prop", "joint time", "JA #unsolved", "JA time", "best"],
        rows,
        note="expected: comparable times, joint slightly ahead on most rows",
    )
    return rows


@pytest.mark.benchmark(group="table04")
def test_table04_all_true(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    def seconds(cell):
        return float(cell.split()[0].replace(",", ""))

    # Everything is solved by both methods.
    assert all(row[4] == 0 for row in rows)
    # The methods stay within a small constant factor of each other.
    for row in rows:
        slow, fast = max(seconds(row[3]), seconds(row[5])), min(
            seconds(row[3]), seconds(row[5])
        )
        assert slow <= max(10 * fast, 0.5), row
