"""What the wire costs (PR 8 acceptance).

The remote front end is only worth having if the HTTP/SSE layer adds
negligible cost next to the proofs themselves.  ``BENCH_net.json``
answers with numbers from one live server (``BackgroundServer`` over a
2-seat ``VerificationService``, real sockets on 127.0.0.1):

- **codec**: encode+decode round trips per second for a representative
  event mix (the per-event CPU floor of every stream);
- **request latency**: p50/p95 milliseconds for ``GET /stats`` and job
  status probes — the interactive feel of the endpoints;
- **streaming**: events/s delivered over one SSE connection for a
  high-event job, plus the resume cost of re-reading the same log;
- **end to end**: wall clock for a 4-job batch submitted over HTTP
  (inline AIGER text, results long-polled) vs the identical batch on
  the same service in-process — the headline overhead ratio.

Invariants are always asserted: remote verdicts identical to
in-process, SSE ids contiguous from 1 with no drops or duplicates,
zero seat crashes.

Run:  PYTHONPATH=src python benchmarks/bench_net.py
or:   PYTHONPATH=src python -m pytest benchmarks/bench_net.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.circuit.aig import AIG, aig_not
from repro.circuit.aiger import parse_aag, write_aag
from repro.engines.result import PropStatus
from repro.gen import buggy_counter
from repro.net import BackgroundServer, ServiceClient
from repro.net.codec import decode_event, encode_event
from repro.progress import (
    ClauseExport,
    FrameAdvanced,
    JobFinished,
    PropertySolved,
    RunStarted,
)
from repro.service import VerificationService
from repro.ts.system import TransitionSystem

from benchmarks._harness import publish_table

OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_net.json")

CODEC_ROUNDS = 2000
PROBE_REQUESTS = 50
STREAM_PROPS = 60
BATCH_JOBS = 4


def _stuck(count: int) -> str:
    """``count`` stuck-at-zero latches: cheap proofs, many events."""
    aig = AIG()
    for index in range(count):
        latch = aig.add_latch(f"s{index}", init=0)
        aig.set_next(latch, latch)
        aig.add_property(f"never_s{index}", aig_not(latch))
    return write_aag(aig)


def _event_mix() -> list:
    return [
        RunStarted(strategy="ja", design="d", properties=("p0", "p1")),
        PropertySolved(name="p0", status=PropStatus.HOLDS, local=True,
                       time_seconds=0.25, assumed=("p1",)),
        FrameAdvanced(name="p0", frame=3),
        ClauseExport(name="p0", count=7),
        JobFinished(job="job-0", status="done", total_time=1.5,
                    num_true=2, num_false=0, num_unknown=0),
    ]


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def bench_codec() -> dict:
    mix = _event_mix()
    start = time.monotonic()
    for _ in range(CODEC_ROUNDS):
        for event in mix:
            decode_event(json.loads(json.dumps(encode_event(event))))
    elapsed = time.monotonic() - start
    total = CODEC_ROUNDS * len(mix)
    return {
        "events": total,
        "wall_s": round(elapsed, 4),
        "events_per_s": round(total / max(elapsed, 1e-9)),
    }


def bench_requests(client: ServiceClient, job_id: str) -> dict:
    def probe(fn) -> dict:
        times = []
        for _ in range(PROBE_REQUESTS):
            start = time.monotonic()
            fn()
            times.append((time.monotonic() - start) * 1000.0)
        return {
            "requests": PROBE_REQUESTS,
            "p50_ms": round(percentile(times, 0.50), 2),
            "p95_ms": round(percentile(times, 0.95), 2),
        }

    return {
        "stats": probe(client.stats),
        "job_status": probe(lambda: client.job(job_id).status()),
    }


def bench_stream(client: ServiceClient) -> dict:
    job = client.submit(design_text=_stuck(STREAM_PROPS), strategy="ja",
                        design_name="stuck")
    start = time.monotonic()
    events = list(job.events())
    live_s = time.monotonic() - start
    job.result(timeout=300)
    # Re-read the settled log: pure wire throughput, no proof time.
    raw = list(client.job(job.job_id)._stream_once(0))
    start = time.monotonic()
    replay = list(client.job(job.job_id).events())
    replay_s = time.monotonic() - start
    ids = [seq for seq, _ in raw]
    assert ids == list(range(1, len(raw) + 1)), "SSE ids must be 1..N"
    assert isinstance(replay[-1], JobFinished)
    return {
        "job": job.job_id,
        "events_logged": len(raw),
        "live_events": len(events),
        "live_wall_s": round(live_s, 4),
        "replay_wall_s": round(replay_s, 4),
        "replay_events_per_s": round(len(replay) / max(replay_s, 1e-9)),
    }


def _verdicts(report) -> dict[str, str]:
    return {n: o.status.value for n, o in report.outcomes.items()}


def bench_batch(client: ServiceClient, service: VerificationService) -> dict:
    designs = [
        ("counter4", write_aag(buggy_counter(bits=4))),
        ("stuck20", _stuck(20)),
    ] * (BATCH_JOBS // 2)

    start = time.monotonic()
    local = [
        service.submit(TransitionSystem(parse_aag(text)), strategy="ja",
                       design_name=name)
        for name, text in designs
    ]
    local_verdicts = [_verdicts(h.result(timeout=300)) for h in local]
    local_s = time.monotonic() - start

    start = time.monotonic()
    remote = [
        client.submit(design_text=text, strategy="ja", design_name=name)
        for name, text in designs
    ]
    remote_verdicts = [_verdicts(j.result(timeout=300)) for j in remote]
    remote_s = time.monotonic() - start

    return {
        "jobs": len(designs),
        "in_process_wall_s": round(local_s, 4),
        "remote_wall_s": round(remote_s, 4),
        "overhead_ratio": round(remote_s / max(local_s, 1e-9), 2),
        "identical_verdicts": remote_verdicts == local_verdicts,
    }


def build_report() -> dict:
    service = VerificationService(workers=2, max_concurrent_jobs=4)
    with BackgroundServer(service) as server:
        client = ServiceClient(server.address)
        codec = bench_codec()
        stream = bench_stream(client)
        requests = bench_requests(client, stream["job"])
        batch = bench_batch(client, service)
        stats = client.stats()
        crashes = sum(
            seat["crashes"] for seat in (stats.get("pool") or {}).get("seats", [])
        )

    report = {
        "benchmark": "net-overhead",
        "host_cpus": os.cpu_count() or 1,
        "codec": codec,
        "requests": requests,
        "stream": stream,
        "batch": batch,
        "seat_crashes": crashes,
        "summary": {
            "codec_events_per_s": codec["events_per_s"],
            "stats_p50_ms": requests["stats"]["p50_ms"],
            "replay_events_per_s": stream["replay_events_per_s"],
            "remote_overhead_ratio": batch["overhead_ratio"],
            "identical_verdicts": batch["identical_verdicts"],
            "seat_crashes": crashes,
        },
    }
    publish_table(
        "bench_net",
        "Remote service overhead: HTTP/SSE front end vs in-process",
        ["measure", "value"],
        [
            ["codec round trips", f"{codec['events_per_s']}/s"],
            ["GET /stats p50 / p95",
             f"{requests['stats']['p50_ms']}ms / "
             f"{requests['stats']['p95_ms']}ms"],
            ["SSE replay throughput",
             f"{stream['replay_events_per_s']} events/s"],
            [f"{batch['jobs']}-job batch in-process",
             f"{batch['in_process_wall_s']}s"],
            [f"{batch['jobs']}-job batch over HTTP",
             f"{batch['remote_wall_s']}s"],
            ["remote overhead", f"{batch['overhead_ratio']}x"],
        ],
        note="verdict parity and SSE id contiguity asserted",
    )
    return report


def write_report() -> dict:
    report = build_report()
    path = os.path.abspath(OUTPUT)
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {path}")
    return report


def test_net_benchmark():
    """Benchmark-as-test: the wire must not change answers.

    Correctness bars hold on any machine: identical verdicts through
    the HTTP path, contiguous SSE ids (asserted inside the stream
    probe), zero seat crashes.  The overhead ratio is recorded, not
    gated — wall clock on shared CI is noise — but a runaway wire
    layer (> 5x a 4-job batch) fails loudly.
    """
    report = write_report()
    assert report["summary"]["identical_verdicts"], report["batch"]
    assert report["summary"]["seat_crashes"] == 0
    assert report["summary"]["remote_overhead_ratio"] < 5.0, report["batch"]


if __name__ == "__main__":
    print(json.dumps(write_report()["summary"], indent=2))
