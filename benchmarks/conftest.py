"""Pytest hooks for the benchmark suite: dump reproduced tables at exit."""

from __future__ import annotations

from benchmarks._harness import collected_tables


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = collected_tables()
    if not tables:
        return
    terminalreporter.section("reproduced paper tables")
    for text in tables:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
