"""Table IX — lifting respecting vs ignoring property constraints, on
the all-true designs.

Expected shape: on correct designs the ignoring mode wins on most rows
(larger lifted cubes, no spurious-CEX penalty since there are no CEXs),
occasionally dramatically — the paper's Table IX.
"""

from __future__ import annotations

import pytest

from repro.gen.families import all_true_designs
from repro.multiprop.ja import JAOptions, ja_verify
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed

PER_PROP_S = 10.0


def build_table():
    rows = []
    for name, aig in all_true_designs().items():
        ts = TransitionSystem(aig)
        respecting, t_resp = timed(
            lambda: ja_verify(
                ts,
                JAOptions(
                    respect_constraints_in_lifting=True,
                    per_property_time=PER_PROP_S,
                ),
                design_name=name,
            )
        )
        ignoring, t_ign = timed(
            lambda: ja_verify(
                ts,
                JAOptions(
                    respect_constraints_in_lifting=False,
                    per_property_time=PER_PROP_S,
                ),
                design_name=name,
            )
        )
        rows.append(
            [
                name,
                len(ts.properties),
                len(respecting.unsolved()),
                cell_time(t_resp),
                len(ignoring.unsolved()),
                cell_time(t_ign),
                "ignore" if t_ign <= t_resp else "respect",
            ]
        )
    publish_table(
        "table09",
        "Table IX: lifting respecting vs ignoring property constraints (all-true designs)",
        [
            "name",
            "#props",
            "respect #unsolved",
            "respect time",
            "ignore #unsolved",
            "ignore time",
            "best",
        ],
        rows,
        note="expected: ignoring constraints ahead on most rows",
    )
    return rows


@pytest.mark.benchmark(group="table09")
def test_table09_lifting_true(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    assert all(row[2] == 0 and row[4] == 0 for row in rows)
    ignore_wins = sum(1 for row in rows if row[6] == "ignore")
    assert ignore_wins >= len(rows) // 2
