"""Table X — single properties of the huge design, global vs local, plus
the Section 11 parallel run, executed for real.

Paper layout: for a sample of individual properties of the 10,789-
property benchmark 6s289, the number of time frames and the run time of
a global proof vs a local proof (no clause exchange in either case).

Expected shape: local proofs converge at 1-2 frames in near-constant
time at every sampled position; global proofs grow with the property's
pipeline depth.  The second table then runs JA-verification through the
``parallel-ja`` process pool at increasing worker counts and reports
*measured* wall-clock speedup next to the legacy scheduler simulation's
projected makespan; on a single-core host only the projection can show
speedup, so the measured-speedup assertion is gated on the CPU count.
"""

from __future__ import annotations

import os

import pytest

from repro.engines.result import PropStatus
from repro.gen.families import huge_design
from repro.multiprop.parallel import measure_global_proofs, measure_local_proofs
from repro.session import Session
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table

CHAIN_DEPTH = 48
SAMPLE = (1, 5, 10, 16, 24, 32, 40, 47)
WORKER_COUNTS = (1, 2, 4)


def build_tables():
    ts = TransitionSystem(huge_design(chain_depth=CHAIN_DEPTH))
    names = [f"c0_C{i}" for i in SAMPLE]
    glob = measure_global_proofs(ts, names, per_property_time=20.0)
    local = measure_local_proofs(ts, names, per_property_time=20.0)
    rows = []
    for i, name in zip(SAMPLE, names):
        rows.append(
            [
                i,
                glob.prop_frames[name],
                cell_time(glob.prop_times[name]),
                local.prop_frames[name],
                cell_time(local.prop_times[name]),
            ]
        )
    rows.append(
        [
            "max",
            max(glob.prop_frames.values()),
            cell_time(max(glob.prop_times.values())),
            max(local.prop_frames.values()),
            cell_time(max(local.prop_times.values())),
        ]
    )
    publish_table(
        "table10",
        "Table X: single properties of the huge design, global vs local proofs",
        ["prop index", "global #frames", "global time", "local #frames", "local time"],
        rows,
        note=(
            f"{len(ts.properties)}-property stand-in for 6s289; no clause "
            "exchange in either mode"
        ),
    )

    # Section 11: real process-parallel JA-verification of all properties,
    # with the legacy list-scheduling projection alongside.  One
    # standalone measurement pass feeds every projected makespan.
    full_local = measure_local_proofs(ts, per_property_time=20.0)
    reports = {}
    sched_rows = []
    for workers in WORKER_COUNTS:
        report = Session(ts, strategy="parallel-ja", workers=workers).run()
        reports[workers] = report
        base = reports[WORKER_COUNTS[0]].total_time
        sched_rows.append(
            [
                workers,
                cell_time(report.total_time),
                f"{base / report.total_time:.2f}x",
                cell_time(full_local.makespan(workers)),
            ]
        )
    publish_table(
        "table10b",
        "Section 11: process-parallel JA-verification (measured vs projected)",
        ["workers", "wall-clock", "measured speedup", "projected makespan"],
        sched_rows,
        note=(
            f"{len(ts.properties)} local proofs on {os.cpu_count() or 1} CPU(s); "
            "live clause exchange on"
        ),
    )
    return rows, sched_rows, glob, local, reports, full_local


@pytest.mark.slow
@pytest.mark.benchmark(group="table10")
def test_table10_parallel(benchmark):
    rows, sched_rows, glob, local, reports, full_local = benchmark.pedantic(
        build_tables, rounds=1, iterations=1
    )
    # Local proofs are flat: identical frame counts at every position.
    local_frames = {row[3] for row in rows[:-1]}
    assert len(local_frames) == 1
    # Global work grows with chain position: the deepest sampled property
    # costs clearly more than the shallowest (measured in SAT queries,
    # the deterministic work measure; wall-clock flakes under load).
    first, last = SAMPLE[0], SAMPLE[-1]
    assert glob.prop_queries[f"c0_C{last}"] > 2 * glob.prop_queries[f"c0_C{first}"]
    # Local work stays within a small band while global spreads.
    q_local = list(local.prop_queries.values())
    assert max(q_local) <= 10 * min(q_local)
    # The real pool agrees with the standalone measurement on verdicts,
    # at every worker count.
    for report in reports.values():
        assert all(
            o.status is PropStatus.HOLDS for o in report.outcomes.values()
        ), report.summary()
    assert all(s == "holds" for s in full_local.statuses.values())
    # The projection still promises near-linear scaling ...
    assert full_local.speedup(max(WORKER_COUNTS)) > 2.0
    # ... and on real multi-core hardware the measured wall-clock agrees
    # (single-core hosts time-slice the workers, so nothing to assert).
    if (os.cpu_count() or 1) >= 4:
        speedup = reports[1].total_time / reports[4].total_time
        assert speedup > 1.5, f"4-worker speedup only {speedup:.2f}x"
