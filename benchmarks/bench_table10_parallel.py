"""Table X — single properties of the huge design, global vs local, plus
the Section 11 parallel-computing projection.

Paper layout: for a sample of individual properties of the 10,789-
property benchmark 6s289, the number of time frames and the run time of
a global proof vs a local proof (no clause exchange in either case).

Expected shape: local proofs converge at 1-2 frames in near-constant
time at every sampled position; global proofs grow with the property's
pipeline depth.  The scheduler simulation then shows near-linear
speedup of JA-verification with the number of workers.
"""

from __future__ import annotations

import pytest

from repro.gen.families import huge_design
from repro.multiprop.parallel import measure_global_proofs, measure_local_proofs
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table

CHAIN_DEPTH = 48
SAMPLE = (1, 5, 10, 16, 24, 32, 40, 47)


def build_tables():
    ts = TransitionSystem(huge_design(chain_depth=CHAIN_DEPTH))
    names = [f"c0_C{i}" for i in SAMPLE]
    glob = measure_global_proofs(ts, names, per_property_time=20.0)
    local = measure_local_proofs(ts, names, per_property_time=20.0)
    rows = []
    for i, name in zip(SAMPLE, names):
        rows.append(
            [
                i,
                glob.prop_frames[name],
                cell_time(glob.prop_times[name]),
                local.prop_frames[name],
                cell_time(local.prop_times[name]),
            ]
        )
    rows.append(
        [
            "max",
            max(glob.prop_frames.values()),
            cell_time(max(glob.prop_times.values())),
            max(local.prop_frames.values()),
            cell_time(max(local.prop_times.values())),
        ]
    )
    publish_table(
        "table10",
        "Table X: single properties of the huge design, global vs local proofs",
        ["prop index", "global #frames", "global time", "local #frames", "local time"],
        rows,
        note=(
            f"{len(ts.properties)}-property stand-in for 6s289; no clause "
            "exchange in either mode"
        ),
    )

    # Section 11: simulated parallel speedup of the full local run.
    full_local = measure_local_proofs(ts, per_property_time=20.0)
    sched_rows = []
    for workers in (1, 2, 4, 8, 16, len(full_local.prop_times)):
        sched_rows.append(
            [
                workers,
                cell_time(full_local.makespan(workers)),
                f"{full_local.speedup(workers):.2f}x",
            ]
        )
    publish_table(
        "table10b",
        "Section 11: simulated parallel JA-verification (greedy list scheduling)",
        ["workers", "makespan", "speedup"],
        sched_rows,
        note="independent local proofs scheduled on w workers",
    )
    return rows, sched_rows, glob, local


@pytest.mark.benchmark(group="table10")
def test_table10_parallel(benchmark):
    rows, sched_rows, glob, local = benchmark.pedantic(
        build_tables, rounds=1, iterations=1
    )
    # Local proofs are flat: identical frame counts at every position.
    local_frames = {row[3] for row in rows[:-1]}
    assert len(local_frames) == 1
    # Global work grows with chain position: the deepest sampled property
    # costs clearly more than the shallowest.
    first, last = SAMPLE[0], SAMPLE[-1]
    t_first = glob.prop_times[f"c0_C{first}"]
    t_last = glob.prop_times[f"c0_C{last}"]
    assert t_last > 2 * t_first
    # Local time stays within a small band while global spreads.
    t_local = list(local.prop_times.values())
    assert max(t_local) <= 10 * min(t_local) + 0.01
    # Parallel speedup is monotone in workers.
    speedups = [float(row[2][:-1]) for row in sched_rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2.0
