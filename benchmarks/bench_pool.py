"""Persistent-pool + sharded-exchange benchmark (PR 4 acceptance).

Three questions, answered with numbers in ``BENCH_pool.json``:

1. **Amortization** — running the same design repeatedly on one
   :class:`~repro.parallel.WorkerPool` must pickle the design once
   (``pool.stats["design_pickles"] == 1`` across >= 3 runs) and shave
   the per-run setup cost relative to spawning a fresh pool per run.
2. **Shard throughput** — the cluster-sharded clause exchange at 4
   shards must sustain at least the single-manager exchange's
   publish/fetch throughput under concurrent clients (each shard is
   its own manager process, so server-side serialization parallelizes).
3. **Parity** — verdicts must be identical across shard counts
   {1, 2, 4} and both builtin SAT backends: sharding changes who sees
   which clauses, never what is true.

Run:  PYTHONPATH=src python benchmarks/bench_pool.py
or:   PYTHONPATH=src python -m pytest benchmarks/bench_pool.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.circuit.aig import AIG, aig_not
from repro.parallel import (
    ParallelOptions,
    WorkerPool,
    parallel_ja_verify,
    shard_clusters,
    start_sharded_exchange,
)
from repro.sat import available_backends
from repro.ts.system import TransitionSystem

from benchmarks._harness import publish_table

OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_pool.json")

POOL_WORKERS = 4
POOL_RUNS = 3
SHARD_COUNTS = (1, 2, 4)
THROUGHPUT_CLIENTS = 4
THROUGHPUT_OPS = 100  # publish+fetch pairs per client
CLAUSES_PER_PROOF = 96  # clauses per published invariant


def bench_design(groups: int = 12) -> AIG:
    """Independent 3-latch blocks, 3 properties each (one block fails).

    The same shape as the stress suite: overlapping cones inside a
    block, disjoint across blocks, so clustering yields one cluster per
    block and every shard count divides the clusters evenly.
    """
    aig = AIG()
    for g in range(groups):
        x = aig.add_latch(f"x{g}", init=0)
        aig.set_next(x, aig_not(x))
        y = aig.add_latch(f"y{g}", init=0)
        aig.set_next(y, y)
        z = aig.add_latch(f"z{g}", init=0)
        aig.set_next(z, aig.or_(z, y))
        aig.add_property(f"g{g}_y0", aig_not(y))
        if g % 7 == 0:
            aig.add_property(f"g{g}_fail", aig_not(x))
        else:
            aig.add_property(f"g{g}_xy", aig_not(aig.and_(x, y)))
        aig.add_property(f"g{g}_z0", aig_not(z))
    return aig


# ----------------------------------------------------------------------
# 1. Repeated-run amortization
# ----------------------------------------------------------------------
def run_amortization(ts: TransitionSystem) -> dict:
    persistent_walls: list[float] = []
    with WorkerPool(workers=POOL_WORKERS) as pool:
        for _ in range(POOL_RUNS):
            start = time.monotonic()
            parallel_ja_verify(ts, ParallelOptions(pool=pool))
            persistent_walls.append(round(time.monotonic() - start, 4))
        pool_stats = dict(pool.stats)
    ephemeral_walls: list[float] = []
    ephemeral_pickles = 0
    for _ in range(POOL_RUNS):
        start = time.monotonic()
        report = parallel_ja_verify(
            ts, ParallelOptions(workers=POOL_WORKERS)
        )
        ephemeral_walls.append(round(time.monotonic() - start, 4))
        ephemeral_pickles += report.stats["design_pickles"]
    return {
        "runs": POOL_RUNS,
        "workers": POOL_WORKERS,
        "persistent_wall_s": persistent_walls,
        "ephemeral_wall_s": ephemeral_walls,
        "persistent_design_pickles": pool_stats["design_pickles"],
        "ephemeral_design_pickles": ephemeral_pickles,
        "workers_spawned_persistent": pool_stats["workers_spawned"],
        "pickled_once_across_runs": pool_stats["design_pickles"] == 1,
        # First persistent run pays the spawn; later runs are the warm
        # path whose total the ephemeral baseline must re-pay each time.
        "warm_run_mean_s": round(
            sum(persistent_walls[1:]) / max(len(persistent_walls) - 1, 1), 4
        ),
        "ephemeral_run_mean_s": round(
            sum(ephemeral_walls) / len(ephemeral_walls), 4
        ),
    }


# ----------------------------------------------------------------------
# 2. Exchange throughput, single manager vs 4 shards
# ----------------------------------------------------------------------
def _hammer(exchange, name, ops, index, barrier, times) -> None:
    """One worker-process-shaped client: publish a proof, fetch fresh.

    The payload mimics a local proof's invariant export — dozens of
    clauses — so (de)serialization is the dominant per-op cost.  That
    is where sharding wins even without spare cores: a single shared
    log hands every fetcher *all* publishers' clauses, while a shard
    hands back only same-shard traffic, cutting the bytes a fetch
    serializes by ~the shard count (and on multi-core hosts the shard
    servers additionally run in parallel).
    """
    cursors: dict[int, int] = {}
    barrier.wait()
    start = time.monotonic()
    for i in range(ops):
        base = (index * ops + i) * CLAUSES_PER_PROOF
        exchange.publish(
            name,
            [
                (base + j + 1, -(base + j + 2), base + j + 3)
                for j in range(CLAUSES_PER_PROOF)
            ],
        )
        exchange.fetch_fresh(name, cursors)
    times.put((start, time.monotonic()))


def measure_throughput(num_shards: int) -> float:
    """Publish+fetch ops/second, one client *process* per property.

    Clients are processes, like the engine's workers: with threads the
    client-side GIL caps both configurations identically and the
    comparison measures nothing.  A barrier keeps process spawn out of
    the measured window; the wall is first-op-start to last-op-end.
    """
    import multiprocessing

    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    names = [f"p{i}" for i in range(THROUGHPUT_CLIENTS)]
    shard_map = shard_clusters([[n] for n in names], num_shards)
    managers, exchange = start_sharded_exchange(shard_map)
    barrier = ctx.Barrier(THROUGHPUT_CLIENTS)
    times = ctx.Queue()
    try:
        clients = [
            ctx.Process(
                target=_hammer,
                args=(exchange, name, THROUGHPUT_OPS, i, barrier, times),
            )
            for i, name in enumerate(names)
        ]
        for client in clients:
            client.start()
        for client in clients:
            client.join()
        stamps = [times.get() for _ in names]
        wall = max(end for _, end in stamps) - min(start for start, _ in stamps)
    finally:
        for manager in managers:
            manager.shutdown()
    total_ops = 2 * THROUGHPUT_OPS * THROUGHPUT_CLIENTS
    return total_ops / max(wall, 1e-9)


def run_throughput() -> dict:
    # Interleave repetitions and keep each configuration's best: wall
    # clock on shared CI machines is noisy and we are comparing peak
    # serving capacity, not scheduler luck.
    best: dict[int, float] = {1: 0.0, 4: 0.0}
    for _ in range(3):
        for shards in (1, 4):
            best[shards] = max(best[shards], measure_throughput(shards))
    return {
        "clients": THROUGHPUT_CLIENTS,
        "ops_per_client": 2 * THROUGHPUT_OPS,
        "single_manager_ops_per_s": round(best[1], 1),
        "four_shard_ops_per_s": round(best[4], 1),
        "sharded_sustains_single_throughput": best[4] >= best[1],
        "speedup": round(best[4] / max(best[1], 1e-9), 2),
    }


# ----------------------------------------------------------------------
# 3. Verdict parity across shard counts and backends
# ----------------------------------------------------------------------
def run_parity(ts: TransitionSystem) -> dict:
    backends = sorted(available_backends())
    cells: dict[str, dict] = {}
    reference = None
    identical = True
    for backend in backends:
        for shards in SHARD_COUNTS:
            report = parallel_ja_verify(
                ts,
                ParallelOptions(
                    workers=POOL_WORKERS,
                    exchange_shards=shards,
                    solver_backend=backend,
                ),
            )
            verdicts = {n: o.status.value for n, o in report.outcomes.items()}
            cells[f"{backend}/shards={shards}"] = {
                "verdicts": verdicts,
                "exchange_shards": report.stats["exchange_shards"],
                "exchange_clauses": report.stats["exchange_clauses"],
                "wall_s": round(report.total_time, 4),
            }
            if reference is None:
                reference = verdicts
            identical = identical and verdicts == reference
    return {
        "backends": backends,
        "shard_counts": list(SHARD_COUNTS),
        "cells": cells,
        "identical_verdicts_everywhere": identical,
    }


# ----------------------------------------------------------------------
def build_report() -> dict:
    ts = TransitionSystem(bench_design())
    amortization = run_amortization(ts)
    throughput = run_throughput()
    parity = run_parity(ts)
    report = {
        "benchmark": "persistent-pool-sharded-exchange",
        "properties": len(ts.properties),
        "amortization": amortization,
        "exchange_throughput": throughput,
        "parity": parity,
        "summary": {
            "design_pickled_once_across_runs": amortization[
                "pickled_once_across_runs"
            ],
            "sharded_sustains_single_throughput": throughput[
                "sharded_sustains_single_throughput"
            ],
            "identical_verdicts_across_shards_and_backends": parity[
                "identical_verdicts_everywhere"
            ],
        },
    }
    rows = [
        [
            "amortization",
            f"{amortization['persistent_design_pickles']} pickle(s) / "
            f"{amortization['runs']} runs",
            f"warm {amortization['warm_run_mean_s']}s vs "
            f"ephemeral {amortization['ephemeral_run_mean_s']}s",
        ],
        [
            "throughput",
            f"1 shard: {throughput['single_manager_ops_per_s']} ops/s",
            f"4 shards: {throughput['four_shard_ops_per_s']} ops/s "
            f"({throughput['speedup']}x)",
        ],
        [
            "parity",
            f"{len(parity['cells'])} cells "
            f"({'x'.join(str(s) for s in SHARD_COUNTS)} shards x "
            f"{len(parity['backends'])} backends)",
            "identical"
            if parity["identical_verdicts_everywhere"]
            else "DIVERGED",
        ],
    ]
    publish_table(
        "bench_pool",
        "Persistent pool + sharded exchange",
        ["axis", "measure", "result"],
        rows,
    )
    return report


def write_report() -> dict:
    report = build_report()
    path = os.path.abspath(OUTPUT)
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {path}")
    return report


def test_pool_benchmark():
    """Benchmark-as-test: the acceptance bars must hold.

    The throughput bar is wall-clock on whatever machine runs this, so
    the hard assert allows a small noise margin (a noisy-neighbor stall
    on a shared CI runner is not a code defect); the JSON records the
    strict comparison for the committed benchmark run.
    """
    report = write_report()
    summary = report["summary"]
    assert summary["design_pickled_once_across_runs"], summary
    assert report["exchange_throughput"]["speedup"] >= 0.9, summary
    assert summary["identical_verdicts_across_shards_and_backends"], summary


if __name__ == "__main__":
    print(json.dumps(write_report()["summary"], indent=2))
