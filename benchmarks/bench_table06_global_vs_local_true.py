"""Table VI — separate verification with global vs local proofs on the
all-true designs (both with clause re-use).

Expected shape: comparable performance — local proofs can't save deep
counterexample work here because there is none; the benefit shows only
in slightly smaller per-property effort.
"""

from __future__ import annotations

import pytest

from repro.gen.families import all_true_designs
from repro.multiprop.ja import JAOptions, ja_verify
from repro.multiprop.separate import SeparateOptions, separate_verify
from repro.ts.system import TransitionSystem

from benchmarks._harness import cell_time, publish_table, timed

PER_PROP_S = 10.0


def build_table():
    rows = []
    for name, aig in all_true_designs().items():
        ts = TransitionSystem(aig)
        glob, t_glob = timed(
            lambda: separate_verify(
                ts, SeparateOptions(per_property_time=PER_PROP_S), design_name=name
            )
        )
        local, t_local = timed(
            lambda: ja_verify(
                ts, JAOptions(per_property_time=PER_PROP_S), design_name=name
            )
        )
        rows.append(
            [
                name,
                len(ts.properties),
                len(glob.unsolved()),
                cell_time(t_glob),
                len(local.unsolved()),
                cell_time(t_local),
            ]
        )
    publish_table(
        "table06",
        "Table VI: separate verification, global vs local proofs (all-true designs)",
        [
            "name",
            "#props",
            "global #unsolved",
            "global time",
            "local #unsolved",
            "local time",
        ],
        rows,
        note="expected: comparable times (local helps mostly on failing designs)",
    )
    return rows


@pytest.mark.benchmark(group="table06")
def test_table06_global_vs_local_true(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    def seconds(cell):
        return float(cell.split()[0].replace(",", ""))

    assert all(row[2] == 0 and row[4] == 0 for row in rows)
    # Comparable: within a factor 5 (plus a floor for timer noise).
    for row in rows:
        slow = max(seconds(row[3]), seconds(row[5]))
        fast = min(seconds(row[3]), seconds(row[5]))
        assert slow <= max(5 * fast, 0.5), row
