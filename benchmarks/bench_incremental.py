"""Incremental SAT backend benchmark: persistent solvers vs rebuild-per-query.

Quantifies the tentpole of the incremental backend API on the paper
families: IC3 (through the JA driver, so assumptions and clause re-use
are in play) and BMC are run twice per design —

* **persistent** — the default: one consecution solver and one
  bad-state solver per property, frame membership by activation
  literal, O(1) solver setup per query;
* **rebuild** — ``IC3Options.incremental=False`` (and, for BMC, an
  explicit re-encode-to-depth-k loop): a fresh solver per query, the
  O(CNF) baseline this repo shipped with.

Per cell we record wall-clock, total clause-insertion operations,
per-query setup cost, and the verdict/frame maps; every registered
backend runs both modes and the JSON records whether verdicts and
frames agree across modes, backends and strategies.  The result is
written to ``BENCH_incremental.json`` at the repo root (and a rendered
table to ``benchmarks/results/``).

Run:  PYTHONPATH=src python benchmarks/bench_incremental.py
or:   PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time

# Script mode (`python benchmarks/bench_incremental.py`): make the repo
# root importable the same way pytest's rootdir insertion does.
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.circuit.aig import aig_not
from repro.encode.unroll import Unroller
from repro.gen import ALL_TRUE_SPECS, FAILING_SPECS, buggy_counter
from repro.multiprop.ja import JAOptions, JAVerifier
from repro.sat import Status, available_backends, create_solver
from repro.session import Session
from repro.ts.system import TransitionSystem

from benchmarks._harness import publish_table

#: Paper families benchmarked (kept small so the rebuild baseline stays
#: affordable); counter8 is the paper's Example 1, the t-designs are
#: all-true (real inductive proofs), f104 is a failing family.
FAMILIES = {
    "counter8": lambda: buggy_counter(bits=8),
    "t124": ALL_TRUE_SPECS["t124"].build,
    "t135": ALL_TRUE_SPECS["t135"].build,
    "f104": FAILING_SPECS["f104"].build,
}

BMC_DEPTH = 12

OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_incremental.json")


# ----------------------------------------------------------------------
def run_ic3(ts: TransitionSystem, backend: str, incremental: bool) -> dict:
    """One JA-verification pass; returns timing + work + verdict maps."""
    verifier = JAVerifier(
        ts,
        JAOptions(
            solver_backend=backend,
            engine_overrides={"incremental": incremental},
        ),
    )
    start = time.monotonic()
    report = verifier.run()
    wall = time.monotonic() - start
    insertions = queries = allocs = 0
    for result in verifier.results.values():
        insertions += result.stats.get("clause_insertions", 0)
        queries += result.stats.get("sat_queries", 0)
        allocs += result.stats.get("solver_allocs", 0)
    return {
        "wall_s": round(wall, 4),
        "clause_insertions": insertions,
        "sat_queries": queries,
        "solver_allocs": allocs,
        "insertions_per_query": round(insertions / max(queries, 1), 2),
        "setup_s_per_query": round(wall / max(queries, 1), 6),
        "verdicts": {n: o.status.value for n, o in report.outcomes.items()},
        "frames": {n: o.frames for n, o in report.outcomes.items()},
    }


def run_bmc_persistent(ts: TransitionSystem, backend: str) -> dict:
    """Default BMC: one incremental unrolling, bad cone by assumption."""
    start = time.monotonic()
    solver = create_solver(backend)
    unroller = Unroller(ts.aig, solver)
    verdicts = {}
    queries = 0
    for prop in ts.properties:
        verdicts[prop.name] = "unknown"
    for t in range(BMC_DEPTH):
        frame = unroller.frame(t)
        for c in ts.aig.constraints:
            solver.add_clause([frame.lit(c)])
        for prop in ts.properties:
            if verdicts[prop.name] != "unknown":
                continue
            queries += 1
            if solver.solve([frame.lit(aig_not(prop.lit))]) is Status.SAT:
                verdicts[prop.name] = f"fails@{t + 1}"
    return {
        "wall_s": round(time.monotonic() - start, 4),
        "clause_insertions": solver.stats()["clauses_added"],
        "sat_queries": queries,
        "verdicts": verdicts,
    }


def run_bmc_rebuild(ts: TransitionSystem, backend: str) -> dict:
    """Baseline BMC: re-encode the whole unrolling for every depth."""
    start = time.monotonic()
    verdicts = {prop.name: "unknown" for prop in ts.properties}
    insertions = queries = 0
    for t in range(BMC_DEPTH):
        for prop in ts.properties:
            if verdicts[prop.name] != "unknown":
                continue
            solver = create_solver(backend)
            unroller = Unroller(ts.aig, solver)
            for k in range(t + 1):
                frame = unroller.frame(k)
                for c in ts.aig.constraints:
                    solver.add_clause([frame.lit(c)])
            queries += 1
            bad = unroller.frame(t).lit(aig_not(prop.lit))
            if solver.solve([bad]) is Status.SAT:
                verdicts[prop.name] = f"fails@{t + 1}"
            insertions += solver.stats()["clauses_added"]
    return {
        "wall_s": round(time.monotonic() - start, 4),
        "clause_insertions": insertions,
        "sat_queries": queries,
        "verdicts": verdicts,
    }


def run_strategies(ts: TransitionSystem, backends) -> dict:
    """Verdict/frame maps per strategy per backend (parity evidence)."""
    out: dict[str, dict] = {}
    for strategy in ("ja", "separate", "joint"):
        per_backend = {}
        for backend in backends:
            report = Session(
                ts, strategy=strategy, solver_backend=backend
            ).run()
            per_backend[backend] = {
                "verdicts": {
                    n: o.status.value for n, o in report.outcomes.items()
                },
                "frames": {n: o.frames for n, o in report.outcomes.items()},
            }
        reference = per_backend[backends[0]]
        out[strategy] = {
            "backends": per_backend,
            "identical_across_backends": all(
                per_backend[b] == reference for b in backends
            ),
        }
    return out


# ----------------------------------------------------------------------
def build_report() -> dict:
    backends = sorted(available_backends())
    report: dict = {
        "benchmark": "incremental-sat-backends",
        "backends": backends,
        "bmc_depth": BMC_DEPTH,
        "families": {},
    }
    worst_ic3_ratio = worst_bmc_ratio = float("inf")
    all_parity = True
    rows = []
    for name, build in FAMILIES.items():
        ts = TransitionSystem(build())
        family: dict = {"properties": len(ts.properties), "backends": {}}
        for backend in backends:
            persistent = run_ic3(ts, backend, incremental=True)
            rebuild = run_ic3(ts, backend, incremental=False)
            bmc_p = run_bmc_persistent(ts, backend)
            bmc_r = run_bmc_rebuild(ts, backend)
            ic3_ratio = rebuild["clause_insertions"] / max(
                persistent["clause_insertions"], 1
            )
            bmc_ratio = bmc_r["clause_insertions"] / max(
                bmc_p["clause_insertions"], 1
            )
            parity = (
                persistent["verdicts"] == rebuild["verdicts"]
                and persistent["frames"] == rebuild["frames"]
                and bmc_p["verdicts"] == bmc_r["verdicts"]
            )
            all_parity = all_parity and parity
            worst_ic3_ratio = min(worst_ic3_ratio, ic3_ratio)
            worst_bmc_ratio = min(worst_bmc_ratio, bmc_ratio)
            family["backends"][backend] = {
                "ic3": {
                    "persistent": persistent,
                    "rebuild": rebuild,
                    "insertion_ratio": round(ic3_ratio, 2),
                    "speedup": round(
                        rebuild["wall_s"] / max(persistent["wall_s"], 1e-9), 2
                    ),
                },
                "bmc": {
                    "persistent": bmc_p,
                    "rebuild": bmc_r,
                    "insertion_ratio": round(bmc_ratio, 2),
                    "speedup": round(
                        bmc_r["wall_s"] / max(bmc_p["wall_s"], 1e-9), 2
                    ),
                },
                "verdicts_and_frames_identical": parity,
            }
            rows.append(
                [
                    name,
                    backend,
                    persistent["wall_s"],
                    rebuild["wall_s"],
                    persistent["clause_insertions"],
                    rebuild["clause_insertions"],
                    f"{ic3_ratio:.1f}x",
                    f"{bmc_ratio:.1f}x",
                    "yes" if parity else "NO",
                ]
            )
        # Cross-backend verdict/frame parity on the persistent engine.
        reference = family["backends"][backends[0]]["ic3"]["persistent"]
        family["ic3_identical_across_backends"] = all(
            family["backends"][b]["ic3"]["persistent"]["verdicts"]
            == reference["verdicts"]
            and family["backends"][b]["ic3"]["persistent"]["frames"]
            == reference["frames"]
            for b in backends
        )
        all_parity = all_parity and family["ic3_identical_across_backends"]
        family["strategies"] = run_strategies(ts, backends)
        all_parity = all_parity and all(
            entry["identical_across_backends"]
            for entry in family["strategies"].values()
        )
        report["families"][name] = family

    report["summary"] = {
        "min_ic3_insertion_ratio": round(worst_ic3_ratio, 2),
        "min_bmc_insertion_ratio": round(worst_bmc_ratio, 2),
        "meets_2x_insertion_target": worst_ic3_ratio >= 2.0,
        "verdicts_and_frames_identical_everywhere": all_parity,
    }
    publish_table(
        "bench_incremental",
        "Incremental backends: persistent vs rebuild-per-query",
        [
            "design",
            "backend",
            "IC3 incr (s)",
            "IC3 rebuild (s)",
            "incr inserts",
            "rebuild inserts",
            "IC3 ratio",
            "BMC ratio",
            "parity",
        ],
        rows,
    )
    return report


def write_report() -> dict:
    report = build_report()
    path = os.path.abspath(OUTPUT)
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
    print(f"wrote {path}")
    return report


def test_incremental_benchmark():
    """Benchmark-as-test: the acceptance bars must hold."""
    report = write_report()
    summary = report["summary"]
    assert summary["meets_2x_insertion_target"], summary
    assert summary["verdicts_and_frames_identical_everywhere"], summary


if __name__ == "__main__":
    report = write_report()
    print(json.dumps(report["summary"], indent=2))
