"""Remote verification: the HTTP front end over :mod:`repro.service`.

This package turns the in-process :class:`~repro.service.VerificationService`
into a network service three layers deep:

* :mod:`repro.net.codec` — the versioned JSON wire format: one codec
  entry per :class:`~repro.progress.ProgressEvent` subclass (the
  ``net-protocol`` lint checker enforces exhaustiveness) plus
  encode/decode for whole :class:`~repro.multiprop.report.MultiPropReport`
  results;
* :mod:`repro.net.server` — a stdlib-``asyncio`` HTTP/1.1 server
  fronting one service: manifest-format job submission, resumable SSE
  event streams, cancellation, results, the live stats surface, and
  back-pressure mapped onto 429/503;
* :mod:`repro.net.client` — a thin blocking client
  (:class:`ServiceClient` / :class:`RemoteJob`) mirroring the
  ``submit → handle → stream → result`` shape of the in-process API,
  with automatic event-stream resume from the last seen cursor.

The CLI drives both ends: ``repro serve --listen HOST:PORT`` runs the
server (graceful drain on SIGINT/SIGTERM), ``repro submit --host``,
``repro watch`` and ``repro stats --host`` speak to it.
"""

from .client import (
    RemoteError,
    RemoteJob,
    ServiceBusy,
    ServiceClient,
    ServiceUnavailable,
    submit_manifest,
)
from .codec import (
    WIRE_VERSION,
    CodecError,
    decode_event,
    decode_report,
    encode_event,
    encode_report,
)
from .server import BackgroundServer, VerificationServer

__all__ = [
    "WIRE_VERSION",
    "CodecError",
    "encode_event",
    "decode_event",
    "encode_report",
    "decode_report",
    "VerificationServer",
    "BackgroundServer",
    "ServiceClient",
    "RemoteJob",
    "RemoteError",
    "ServiceBusy",
    "ServiceUnavailable",
    "submit_manifest",
]
