"""The versioned JSON wire format for events and reports.

Everything that crosses the HTTP boundary is encoded here, nowhere
else: each :class:`~repro.progress.ProgressEvent` subclass becomes a
flat JSON object tagged with its ``kind`` and the wire version, and a
whole :class:`~repro.multiprop.report.MultiPropReport` becomes one
nested object carrying every outcome field needed to reconstruct it
client-side (counterexample *traces* deliberately stay server-side —
they can be arbitrarily deep; the wire carries their depth).

The event registry is the load-bearing piece: :data:`EVENT_TYPES` is a
**literal tuple naming every event class**, scanned statically by the
``net-protocol`` lint checker against the subclasses declared in
``repro/progress.py`` — adding an event without a codec entry (or
leaving a stale entry behind) fails ``repro lint``, the same way a
missing dispatch arm fails the wire-protocol checker.

Round-trip contract (pinned by the Hypothesis suite in
``tests/net/test_codec.py``)::

    decode_event(json.loads(json.dumps(encode_event(e)))) == e

for every event type, including tuple-valued fields (restored from
JSON lists) and the :class:`~repro.engines.result.PropStatus` enum on
``PropertySolved``.  Version mismatches and unknown kinds raise
:class:`CodecError` rather than guessing.
"""

from __future__ import annotations

import typing
from dataclasses import fields

from ..engines.result import PropStatus
from ..multiprop.report import MultiPropReport, PropOutcome
from ..progress import (
    AttemptCancelled,
    AttemptStarted,
    BudgetCheckpoint,
    CacheHit,
    ClauseExport,
    ClauseImport,
    ClusterStarted,
    FrameAdvanced,
    JobFinished,
    JobQueued,
    JobStarted,
    PoolAttached,
    PortfolioDecided,
    ProgressEvent,
    PropertyCancelled,
    PropertyRequeued,
    PropertySolved,
    PropertyStarted,
    RunFinished,
    RunStarted,
    ServiceSaturated,
    ShardOpened,
    StatsSnapshot,
    WorkerStarted,
)

__all__ = [
    "WIRE_VERSION",
    "CodecError",
    "EVENT_TYPES",
    "event_class",
    "encode_event",
    "decode_event",
    "encode_report",
    "decode_report",
]

#: Version stamped into every wire object.  Bump on any change to the
#: encoded shape; decoders refuse versions they do not speak instead of
#: mis-reading fields.
WIRE_VERSION = 1

#: Every event class the wire speaks, one entry per
#: :class:`~repro.progress.ProgressEvent` subclass.  This literal tuple
#: is the codec registry: ``encode_event``/``decode_event`` resolve
#: through it, and the ``net-protocol`` checker statically diffs it
#: against ``repro/progress.py`` so it can never silently fall behind.
EVENT_TYPES: tuple[type[ProgressEvent], ...] = (
    RunStarted,
    RunFinished,
    CacheHit,
    PropertyStarted,
    PropertySolved,
    FrameAdvanced,
    ClauseImport,
    ClauseExport,
    BudgetCheckpoint,
    ClusterStarted,
    WorkerStarted,
    PoolAttached,
    ShardOpened,
    PropertyCancelled,
    PropertyRequeued,
    AttemptStarted,
    AttemptCancelled,
    PortfolioDecided,
    JobQueued,
    JobStarted,
    JobFinished,
    ServiceSaturated,
    StatsSnapshot,
)

_BY_KIND: dict[str, type[ProgressEvent]] = {cls.kind: cls for cls in EVENT_TYPES}

#: Field-level decode hooks for values JSON cannot carry natively.
#: ``PropertySolved.status`` is typed ``object`` in ``progress.py`` (to
#: keep that module import-free) but is a :class:`PropStatus` in
#: practice; it travels as its value string.
_FIELD_DECODERS: dict[tuple[str, str], typing.Callable] = {
    ("property-solved", "status"): PropStatus,
    ("portfolio-decided", "status"): PropStatus,
    ("cache-hit", "status"): PropStatus,
}


class CodecError(ValueError):
    """A wire object could not be encoded or decoded."""


def event_class(kind: str) -> type[ProgressEvent]:
    """The event class registered for ``kind`` (:class:`CodecError` if none)."""
    try:
        return _BY_KIND[kind]
    except KeyError:
        raise CodecError(
            f"unknown event kind {kind!r}; known: {', '.join(sorted(_BY_KIND))}"
        ) from None


def _check_version(payload: dict, what: str) -> None:
    version = payload.get("v")
    if version != WIRE_VERSION:
        raise CodecError(
            f"unsupported {what} wire version {version!r} "
            f"(this side speaks {WIRE_VERSION})"
        )


def _encode_value(value: object) -> object:
    if isinstance(value, PropStatus):
        return value.value
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    if isinstance(value, list):
        return [_encode_value(item) for item in value]
    return value


def encode_event(event: ProgressEvent) -> dict:
    """One flat JSON-ready dict for ``event`` (``{"v", "kind", ...fields}``)."""
    cls = type(event)
    registered = _BY_KIND.get(cls.kind)
    if registered is not cls:
        raise CodecError(
            f"event type {cls.__name__!r} has no codec entry in "
            f"repro.net.codec.EVENT_TYPES"
        )
    payload: dict = {"v": WIRE_VERSION, "kind": cls.kind}
    for spec in fields(cls):
        payload[spec.name] = _encode_value(getattr(event, spec.name))
    return payload


# ``get_type_hints`` resolves the stringified annotations of
# ``progress.py`` (``from __future__ import annotations``) once per
# class; cached because decode runs per event on the hot stream path.
_HINTS_CACHE: dict[type, dict[str, object]] = {}


def _hints(cls: type) -> dict[str, object]:
    hints = _HINTS_CACHE.get(cls)
    if hints is None:
        hints = _HINTS_CACHE[cls] = typing.get_type_hints(cls)
    return hints


def _is_tuple_hint(hint: object) -> bool:
    return typing.get_origin(hint) is tuple


def decode_event(payload: dict) -> ProgressEvent:
    """The :class:`ProgressEvent` a wire dict encodes.

    Unknown fields are ignored (a newer peer may send more than we
    know); missing fields fall back to the dataclass defaults, and a
    missing *required* field surfaces as :class:`CodecError`.
    """
    if not isinstance(payload, dict):
        raise CodecError(f"event payload must be an object, got {type(payload).__name__}")
    _check_version(payload, "event")
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise CodecError("event payload carries no 'kind'")
    cls = event_class(kind)
    hints = _hints(cls)
    kwargs: dict[str, object] = {}
    for spec in fields(cls):
        if spec.name not in payload:
            continue
        value = payload[spec.name]
        decoder = _FIELD_DECODERS.get((kind, spec.name))
        if decoder is not None and value is not None:
            try:
                value = decoder(value)
            except ValueError as exc:
                raise CodecError(f"bad {kind}.{spec.name}: {exc}") from None
        elif isinstance(value, list) and _is_tuple_hint(hints.get(spec.name)):
            value = tuple(value)
        kwargs[spec.name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise CodecError(f"bad {kind} payload: {exc}") from None


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def _encode_outcome(outcome: PropOutcome) -> dict:
    return {
        "name": outcome.name,
        "status": outcome.status.value,
        "local": outcome.local,
        "frames": outcome.frames,
        "time_seconds": outcome.time_seconds,
        "cex_depth": outcome.cex_depth,
        "assumed": list(outcome.assumed),
        "reruns": outcome.reruns,
        "expected_to_fail": outcome.expected_to_fail,
        "engine": outcome.engine,
    }


def encode_report(report: MultiPropReport) -> dict:
    """The full-fidelity wire form of one verification report.

    Carries every :class:`PropOutcome` field (so the client-side decode
    reconstructs an equal report) plus the derived summaries
    (``debugging_set``, ``etf_confirmed``) that CI scripts consume
    without wanting to recompute paper semantics.
    """
    return {
        "v": WIRE_VERSION,
        "method": report.method,
        "design": report.design,
        "total_time": report.total_time,
        "stats": dict(report.stats),
        "outcomes": {
            name: _encode_outcome(outcome)
            for name, outcome in report.outcomes.items()
        },
        "debugging_set": report.debugging_set(),
        "etf_confirmed": report.etf_confirmed(),
    }


def decode_report(payload: dict) -> MultiPropReport:
    """The :class:`MultiPropReport` a wire dict encodes."""
    if not isinstance(payload, dict):
        raise CodecError(
            f"report payload must be an object, got {type(payload).__name__}"
        )
    _check_version(payload, "report")
    try:
        report = MultiPropReport(
            method=payload["method"],
            design=payload["design"],
            total_time=payload.get("total_time", 0.0),
            stats=dict(payload.get("stats", {})),
        )
        for name, raw in payload.get("outcomes", {}).items():
            report.outcomes[name] = PropOutcome(
                name=raw.get("name", name),
                status=PropStatus(raw["status"]),
                local=raw["local"],
                frames=raw.get("frames", 0),
                time_seconds=raw.get("time_seconds", 0.0),
                cex_depth=raw.get("cex_depth"),
                assumed=list(raw.get("assumed", [])),
                reruns=raw.get("reruns", 0),
                expected_to_fail=raw.get("expected_to_fail", False),
                engine=raw.get("engine"),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"bad report payload: {exc!r}") from None
    return report
