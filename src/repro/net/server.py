"""The asyncio HTTP/1.1 front end over one :class:`VerificationService`.

No framework, no third-party dependencies: requests are parsed from
``asyncio`` streams by hand, one request per connection (every response
carries ``Connection: close``), and the only long-lived connections are
the Server-Sent-Events streams of ``GET /jobs/{id}/events``.

Endpoints (the :data:`ROUTES` table is the single source of truth; the
``net-protocol`` lint checker pairs every entry with its
``_handle_<name>`` method and vice versa):

=======  =====================  ==============================================
method   path                   meaning
=======  =====================  ==============================================
POST     ``/jobs``              submit one manifest-format job → job id
GET      ``/jobs/{id}``         job status snapshot
GET      ``/jobs/{id}/events``  SSE stream of the job's ProgressEvents
POST     ``/jobs/{id}/cancel``  request cooperative cancellation
GET      ``/jobs/{id}/result``  the encoded report (``?timeout=S`` long-poll)
GET      ``/stats``             ``ServiceStats.as_dict()`` over the wire
GET      ``/cache/stats``       proof-cache counters (hits/misses/rejects)
GET      ``/healthz``           liveness + drain state
=======  =====================  ==============================================

**Event streams are replayable.**  The server records every event of
every job it submitted (events are small; counterexample traces never
travel).  A stream names its start cursor via the standard
``Last-Event-ID`` header or ``?after=N``: event ids are 1-based
sequence numbers per job, ``after=N`` means "resume with event N+1".  A
killed-and-reconnected stream therefore never drops or duplicates
events.  Streams end by themselves once the job's terminal
:class:`~repro.progress.JobFinished` has been delivered.

**Back-pressure is HTTP-visible.**  A submit that finds the bounded
admission queue full maps :class:`~repro.service.QueueFull` to ``429``
with a ``Retry-After`` hint; a draining or closed service answers
``503`` (and the service-side :class:`~repro.progress.ServiceSaturated`
event still reaches every subscribed stream).

**Shutdown is graceful.**  :meth:`VerificationServer.drain` — wired to
SIGINT/SIGTERM by :meth:`run` — stops admission (``503``), gives
running jobs ``drain_grace`` seconds to finish, cancels the stragglers,
waits for every job to reach a terminal state, lets open event streams
flush their final events, then closes the listener and the service.
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import threading
import time
from dataclasses import dataclass, field

from urllib.parse import parse_qs, urlsplit

from ..circuit.aiger import parse_aag
from ..progress import JobFinished, ProgressEvent
from ..service import JobHandle, QueueFull, VerificationService
from ..session import ConfigError, UnknownStrategyError, VerificationConfig
from ..ts.system import TransitionSystem
from .codec import WIRE_VERSION, CodecError, encode_event, encode_report

__all__ = ["Route", "ROUTES", "VerificationServer", "BackgroundServer"]

#: Largest accepted request body (an inline ``design_text`` AIGER).
MAX_BODY_BYTES = 64 * 1024 * 1024
#: Ceiling on one ``/result?timeout=`` long-poll leg (clients loop).
MAX_RESULT_WAIT_S = 60.0
#: How often an idle SSE stream re-checks its log (also bounds how
#: long a lost wakeup could stall a stream).
STREAM_POLL_S = 0.5


@dataclass(frozen=True)
class Route:
    """One row of the HTTP route table.

    ``pattern`` uses ``{name}`` placeholders for path parameters;
    ``handler`` names the ``_handle_<handler>`` coroutine on
    :class:`VerificationServer` (statically checked by ``repro lint``).
    """

    method: str
    pattern: str
    handler: str


#: The route table.  Declarative on purpose: the ``net-protocol``
#: checker reads this literal to prove every route has a handler and
#: every handler a route.
ROUTES: tuple[Route, ...] = (
    Route("POST", "/jobs", "submit"),
    Route("GET", "/jobs/{id}", "job_status"),
    Route("GET", "/jobs/{id}/events", "job_events"),
    Route("POST", "/jobs/{id}/cancel", "job_cancel"),
    Route("GET", "/jobs/{id}/result", "job_result"),
    Route("GET", "/stats", "stats"),
    Route("GET", "/cache/stats", "cache_stats"),
    Route("GET", "/healthz", "health"),
)


def _compile_pattern(pattern: str) -> re.Pattern:
    out = []
    for part in re.split(r"(\{[a-z_]+\})", pattern):
        if part.startswith("{") and part.endswith("}"):
            out.append(f"(?P<{part[1:-1]}>[^/]+)")
        else:
            out.append(re.escape(part))
    return re.compile("^" + "".join(out) + "$")


_COMPILED: tuple[tuple[Route, re.Pattern], ...] = tuple(
    (route, _compile_pattern(route.pattern)) for route in ROUTES
)

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An error response raised from request handling."""

    def __init__(self, status: int, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass
class _Request:
    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes
    params: dict[str, str] = field(default_factory=dict)

    def json(self) -> dict:
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    def query_float(self, name: str, default: float) -> float:
        values = self.query.get(name)
        if not values:
            return default
        try:
            return float(values[0])
        except ValueError:
            raise _HttpError(400, f"query parameter {name!r} must be a number") from None

    def cursor(self) -> int:
        """The resume cursor: ``?after=N`` beats ``Last-Event-ID: N``."""
        raw = None
        values = self.query.get("after")
        if values:
            raw = values[0]
        elif "last-event-id" in self.headers:
            raw = self.headers["last-event-id"]
        if raw is None:
            return 0
        try:
            cursor = int(raw)
        except ValueError:
            raise _HttpError(400, f"bad event cursor {raw!r}") from None
        if cursor < 0:
            raise _HttpError(400, f"bad event cursor {raw!r}")
        return cursor


@dataclass
class _Response:
    status: int
    payload: dict
    retry_after: float | None = None

    def render(self) -> bytes:
        body = json.dumps(self.payload).encode("utf-8")
        extra = (
            f"Retry-After: {self.retry_after:g}\r\n"
            if self.retry_after is not None
            else ""
        )
        head = (
            f"HTTP/1.1 {self.status} {_STATUS_TEXT.get(self.status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"{extra}"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        return head.encode("latin-1") + body


class _EventLog:
    """The replayable, thread-safe event history of one job.

    Appends arrive on service/dispatcher threads; SSE readers live on
    the asyncio loop.  Events are encoded once at append time (the
    encoded dict is immutable shared data), ids are 1-based positions,
    and ``updated`` is pulsed onto the loop so idle streams wake
    promptly without polling hard.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._done = False
        self.updated = asyncio.Event()

    def append(self, event: ProgressEvent) -> None:
        try:
            data = encode_event(event)
        except CodecError:
            # An unregistered (plugin) event must not fail the job just
            # because a stream is attached; ship an opaque stand-in.
            data = {"v": WIRE_VERSION, "kind": "event", "opaque": repr(event)}
        with self._lock:
            self._events.append(data)
            if isinstance(event, JobFinished):
                self._done = True
        try:
            self._loop.call_soon_threadsafe(self.updated.set)
        except RuntimeError:
            pass  # loop already closed: readers are gone anyway

    def snapshot(self, after: int) -> tuple[list[tuple[int, dict]], bool]:
        """``(events numbered > after, job finished?)``."""
        with self._lock:
            items = list(enumerate(self._events[after:], start=after + 1))
            return items, self._done


async def _wait_for_update(event: asyncio.Event, timeout: float) -> None:
    try:
        await asyncio.wait_for(event.wait(), timeout)
    except TimeoutError:
        pass


class VerificationServer:
    """One service, exposed over HTTP (see the module docstring)."""

    def __init__(
        self,
        service: VerificationService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        drain_grace: float = 10.0,
    ) -> None:
        if drain_grace < 0:
            raise ValueError(f"drain_grace must be >= 0, got {drain_grace!r}")
        self.service = service
        self.host = host
        self.port = port
        self.drain_grace = drain_grace
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._registry_lock = threading.Lock()
        self._handles: dict[str, JobHandle] = {}
        self._logs: dict[str, _EventLog] = {}
        self._draining = False
        self._open_streams = 0
        self._requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the actual ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain gracefully."""
        if self._server is None:
            await self.start()
        await stop.wait()
        await self.drain()

    def run(self, *, on_ready=None) -> None:
        """Blocking entry point: serve until SIGINT/SIGTERM, then drain.

        ``on_ready(host, port)`` is called once the socket is bound —
        the CLI prints the listening address from it so callers
        (tests, CI) can discover an ephemeral port.
        """

        async def main() -> None:
            await self.start()
            if on_ready is not None:
                on_ready(self.host, self.port)
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    signal.signal(signum, lambda *_: stop.set())
            await self.serve_until(stop)

        asyncio.run(main())

    async def drain(self) -> None:
        """Stop admission, settle every job, flush streams, close.

        Jobs get ``drain_grace`` seconds to finish on their own;
        whatever still runs is cancelled (queued jobs immediately,
        pooled jobs cooperatively) and awaited to a terminal state.
        Open SSE streams are given time to deliver the terminal events
        they are owed before the listener closes.
        """
        self._draining = True
        loop = asyncio.get_running_loop()
        deadline = time.monotonic() + self.drain_grace
        while self._unfinished() and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        for handle in self._unfinished():
            await loop.run_in_executor(None, handle.cancel)
        # Cancellation is cooperative: properties already on a seat run
        # to completion, so this wait is bounded generously, not tightly.
        settle = time.monotonic() + max(30.0, self.drain_grace)
        while self._unfinished() and time.monotonic() < settle:
            await asyncio.sleep(0.05)
        flush = time.monotonic() + 5.0
        while self._open_streams and time.monotonic() < flush:
            await asyncio.sleep(0.05)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await loop.run_in_executor(None, self.service.close)

    def _unfinished(self) -> list[JobHandle]:
        with self._registry_lock:
            handles = list(self._handles.values())
        return [h for h in handles if not h.status.terminal]

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        try:
            try:
                request = await self._read_request(reader)
            except _HttpError as exc:
                writer.write(self._error_response(exc).render())
                await writer.drain()
                return
            if request is None:
                return
            self._requests_served += 1
            await self._dispatch(request, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform noise
                pass

    @staticmethod
    async def _read_request(reader) -> _Request | None:
        try:
            line = await reader.readline()
        except ValueError:
            raise _HttpError(400, "request line too long") from None
        if not line:
            return None
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except ValueError:
                raise _HttpError(400, "header line too long") from None
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1", "replace").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return _Request(
            method=method,
            path=split.path,
            query=parse_qs(split.query),
            headers=headers,
            body=body,
        )

    async def _dispatch(self, request: _Request, writer) -> None:
        matched_path = False
        for route, pattern in _COMPILED:
            match = pattern.match(request.path)
            if match is None:
                continue
            matched_path = True
            if route.method != request.method:
                continue
            request.params = match.groupdict()
            handler = getattr(self, f"_handle_{route.handler}")
            try:
                response = await handler(request, writer)
            except _HttpError as exc:
                response = self._error_response(exc)
            except Exception as exc:  # noqa: BLE001 - must answer the client
                response = _Response(
                    500, {"v": WIRE_VERSION, "error": f"{type(exc).__name__}: {exc}"}
                )
            if response is not None:  # streaming handlers answer inline
                writer.write(response.render())
                await writer.drain()
            return
        status = 405 if matched_path else 404
        message = (
            f"no route for {request.method} {request.path}"
            if matched_path
            else f"unknown path {request.path}"
        )
        writer.write(_Response(status, {"v": WIRE_VERSION, "error": message}).render())
        await writer.drain()

    @staticmethod
    def _error_response(exc: _HttpError) -> _Response:
        return _Response(
            exc.status,
            {"v": WIRE_VERSION, "error": exc.message},
            retry_after=exc.retry_after,
        )

    def _job(self, request: _Request) -> tuple[JobHandle, _EventLog]:
        job_id = request.params.get("id", "")
        with self._registry_lock:
            handle = self._handles.get(job_id)
            log = self._logs.get(job_id)
        if handle is None or log is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return handle, log

    # ------------------------------------------------------------------
    # Handlers (paired with ROUTES by the net-protocol checker)
    # ------------------------------------------------------------------
    async def _handle_submit(self, request: _Request, writer) -> _Response:
        if self._draining or self.service.closed:
            raise _HttpError(
                503, "service is draining; resubmit elsewhere", retry_after=5
            )
        spec = request.json()
        loop = asyncio.get_running_loop()
        assert self._loop is not None
        try:
            handle = await loop.run_in_executor(None, self._submit_blocking, spec)
        except QueueFull as exc:
            raise _HttpError(
                429,
                f"admission queue full ({exc.pending}/{exc.limit} pending)",
                retry_after=1,
            ) from None
        except (ConfigError, UnknownStrategyError, ValueError) as exc:
            raise _HttpError(400, str(exc)) from None
        except OSError as exc:
            raise _HttpError(400, f"cannot load design: {exc}") from None
        return _Response(
            201,
            {
                "v": WIRE_VERSION,
                "job": handle.job_id,
                "status": handle.status.value,
                "design": handle.design_name,
                "strategy": handle.strategy,
                "priority": handle.priority,
            },
        )

    def _submit_blocking(self, spec: dict) -> JobHandle:
        """Parse one manifest-format job spec and submit it (executor)."""
        spec = dict(spec)
        design_text = spec.pop("design_text", None)
        design_path = spec.pop("design", None)
        priority = spec.pop("priority", None)
        if design_text is not None:
            if not isinstance(design_text, str):
                raise _HttpError(400, "design_text must be an ASCII-AIGER string")
            try:
                design: object = TransitionSystem(parse_aag(design_text))
            except ValueError as exc:
                raise _HttpError(400, f"bad design_text: {exc}") from None
        elif design_path is not None:
            design = design_path
        else:
            raise _HttpError(400, "job spec names no design (design / design_text)")
        config = VerificationConfig().with_overrides(**spec)
        log = _EventLog(self._loop)
        handle = self.service.submit(
            design, config, priority=priority, block=False, on_event=log.append
        )
        with self._registry_lock:
            self._handles[handle.job_id] = handle
            self._logs[handle.job_id] = log
        return handle

    async def _handle_job_status(self, request: _Request, writer) -> _Response:
        handle, log = self._job(request)
        events, done = log.snapshot(0)
        return _Response(
            200,
            {
                "v": WIRE_VERSION,
                "job": handle.job_id,
                "status": handle.status.value,
                "design": handle.design_name,
                "strategy": handle.strategy,
                "priority": handle.priority,
                "events": len(events),
                "finished": done,
            },
        )

    async def _handle_job_events(self, request: _Request, writer) -> None:
        """The SSE stream (streams inline; returns no :class:`_Response`)."""
        handle, log = self._job(request)
        cursor = request.cursor()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
            b"retry: 500\n\n"
        )
        self._open_streams += 1
        try:
            while True:
                items, done = log.snapshot(cursor)
                for seq, data in items:
                    chunk = f"id: {seq}\ndata: {json.dumps(data)}\n\n"
                    writer.write(chunk.encode("utf-8"))
                    cursor = seq
                await writer.drain()
                if done and not log.snapshot(cursor)[0]:
                    return
                log.updated.clear()
                await _wait_for_update(log.updated, STREAM_POLL_S)
        except (ConnectionError, OSError):
            return  # client went away; its cursor lets it resume
        finally:
            self._open_streams -= 1

    async def _handle_job_cancel(self, request: _Request, writer) -> _Response:
        handle, _ = self._job(request)
        loop = asyncio.get_running_loop()
        cancelled = await loop.run_in_executor(None, handle.cancel)
        return _Response(
            200,
            {
                "v": WIRE_VERSION,
                "job": handle.job_id,
                "cancelled": bool(cancelled),
                "status": handle.status.value,
            },
        )

    async def _handle_job_result(self, request: _Request, writer) -> _Response:
        handle, _ = self._job(request)
        timeout = min(max(request.query_float("timeout", 0.0), 0.0), MAX_RESULT_WAIT_S)
        loop = asyncio.get_running_loop()
        if timeout and not handle.status.terminal:
            await loop.run_in_executor(None, handle.wait, timeout)
        status = handle.status
        if not status.terminal:
            return _Response(
                202,
                {"v": WIRE_VERSION, "job": handle.job_id, "status": status.value},
            )
        try:
            error = handle.done.exception(timeout=0)
        except TimeoutError:
            # The terminal transition lands a beat before the future
            # resolves (the service emits JobFinished in between), so a
            # result request racing that gap must wait the future out,
            # not 500.
            error = await loop.run_in_executor(
                None, lambda: handle.done.exception(timeout=5.0)
            )
        if error is not None:
            return _Response(
                500,
                {
                    "v": WIRE_VERSION,
                    "job": handle.job_id,
                    "status": status.value,
                    "error": f"{type(error).__name__}: {error}",
                },
            )
        report = handle.done.result(timeout=0)
        return _Response(
            200,
            {
                "v": WIRE_VERSION,
                "job": handle.job_id,
                "status": status.value,
                "report": encode_report(report),
            },
        )

    async def _handle_stats(self, request: _Request, writer) -> _Response:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(None, self.service.stats)
        payload = stats.as_dict()
        payload["v"] = WIRE_VERSION
        payload["draining"] = self._draining
        return _Response(200, payload)

    async def _handle_cache_stats(self, request: _Request, writer) -> _Response:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(None, self.service.stats)
        cache = stats.as_dict().get("cache")
        return _Response(
            200,
            {
                "v": WIRE_VERSION,
                "enabled": cache is not None,
                "cache": cache,
            },
        )

    async def _handle_health(self, request: _Request, writer) -> _Response:
        with self._registry_lock:
            jobs = len(self._handles)
        return _Response(
            200,
            {
                "v": WIRE_VERSION,
                "status": "draining" if self._draining else "ok",
                "jobs": jobs,
                "requests": self._requests_served,
                "streams": self._open_streams,
            },
        )


class BackgroundServer:
    """A :class:`VerificationServer` on a private loop thread.

    The embedding used by the example and the in-process tests::

        with BackgroundServer(service) as server:
            client = ServiceClient(server.address)
            ...

    ``__exit__`` drains the server (which closes the service) and joins
    the thread.
    """

    def __init__(
        self,
        service: VerificationService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        drain_grace: float = 5.0,
    ) -> None:
        self.server = VerificationServer(
            service, host, port, drain_grace=drain_grace
        )
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"{self.server.host}:{self.server.port}"

    def start(self) -> "BackgroundServer":
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.server.serve_until(self._stop)

        def runner() -> None:
            try:
                asyncio.run(main())
            except BaseException as exc:  # noqa: BLE001 - surfaced via start()
                if self._startup_error is None:
                    self._startup_error = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name="repro-net-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already finished
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
