"""The blocking client for a :class:`~repro.net.server.VerificationServer`.

:class:`ServiceClient` mirrors the in-process
``submit → handle → stream → result`` shape of
:class:`~repro.service.VerificationService` over plain
``http.client`` — no sessions, no pooling, one short-lived connection
per request (event streams hold theirs open):

    client = ServiceClient("127.0.0.1:8123")
    job = client.submit(design_text=aag_source, strategy="parallel-ja")
    for event in job.events():          # decoded ProgressEvents
        print(format_event(event))
    report = job.result(timeout=300)    # a real MultiPropReport

Event streams are **self-healing**: :meth:`RemoteJob.events` remembers
the id of the last event it yielded and, when the connection drops or
times out mid-stream, reconnects with ``Last-Event-ID`` so the stream
continues exactly where it left off — no drops, no duplicates, no
caller involvement.

Server-side back-pressure arrives typed: HTTP 429 raises
:class:`ServiceBusy` (with the server's ``Retry-After`` hint) and 503
raises :class:`ServiceUnavailable`; both subclass :class:`RemoteError`,
which carries the status and decoded error payload of any failing
request.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from collections.abc import Iterator

from ..multiprop.report import MultiPropReport
from ..progress import JobFinished, ProgressEvent
from .codec import WIRE_VERSION, CodecError, decode_event, decode_report

__all__ = [
    "RemoteError",
    "ServiceBusy",
    "ServiceUnavailable",
    "RemoteJob",
    "ServiceClient",
]

#: Socket timeout for one plain request/response exchange.
REQUEST_TIMEOUT_S = 30.0
#: Read timeout on an open event stream; hitting it just reconnects
#: from the cursor, so it doubles as a liveness check.
STREAM_READ_TIMEOUT_S = 30.0
#: One ``/result?timeout=`` long-poll leg (server clamps at 60).
RESULT_POLL_S = 20.0


class RemoteError(RuntimeError):
    """A request failed; carries the HTTP status and error payload."""

    def __init__(self, status: int, message: str, payload: dict | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class ServiceBusy(RemoteError):
    """HTTP 429: the admission queue is full; retry after a beat."""

    def __init__(self, status: int, message: str, payload: dict | None = None,
                 retry_after: float = 1.0):
        super().__init__(status, message, payload)
        self.retry_after = retry_after


class ServiceUnavailable(RemoteError):
    """HTTP 503: the service is draining or gone."""


def _parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    if isinstance(address, tuple):
        host, port = address
        return host, int(port)
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad server address {address!r} (expected HOST:PORT)"
        )
    return host or "127.0.0.1", int(port)


class ServiceClient:
    """Blocking HTTP client for one verification server."""

    def __init__(
        self, address: str | tuple[str, int], *, timeout: float = REQUEST_TIMEOUT_S
    ) -> None:
        self.host, self.port = _parse_address(address)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict[str, str] | None = None,
        *,
        timeout: float | None = None,
    ) -> tuple[int, dict]:
        """One request/response exchange; errors below 4xx stay typed."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            send_headers = {"Content-Type": "application/json", **(headers or {})}
            try:
                conn.request(method, path, body=payload, headers=send_headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceUnavailable(
                    503, f"cannot reach {self.host}:{self.port}: {exc}"
                ) from None
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            status = response.status
            if status == 429:
                retry_after = _float_header(response, "Retry-After", 1.0)
                raise ServiceBusy(
                    status, decoded.get("error", "busy"), decoded,
                    retry_after=retry_after,
                )
            if status == 503:
                raise ServiceUnavailable(
                    status, decoded.get("error", "unavailable"), decoded
                )
            return status, decoded
        finally:
            conn.close()

    def _expect(
        self, method: str, path: str, body: dict | None = None, *,
        ok: tuple[int, ...] = (200,), timeout: float | None = None,
    ) -> dict:
        status, payload = self._request(method, path, body, timeout=timeout)
        if status not in ok:
            raise RemoteError(status, payload.get("error", "request failed"), payload)
        return payload

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def submit(
        self,
        *,
        design: str | None = None,
        design_text: str | None = None,
        priority: float | None = None,
        **config: object,
    ) -> "RemoteJob":
        """Submit one job; returns its :class:`RemoteJob` immediately.

        Exactly one of ``design_text`` (inline AIGER source — works
        against any server) or ``design`` (a path *on the server's
        filesystem*) names the design; every other keyword is a
        :class:`~repro.session.VerificationConfig` field.
        """
        spec: dict = dict(config)
        if design_text is not None:
            spec["design_text"] = design_text
        if design is not None:
            spec["design"] = design
        if priority is not None:
            spec["priority"] = priority
        return self.submit_spec(spec)

    def submit_spec(self, spec: dict) -> "RemoteJob":
        """Submit one manifest-format job spec verbatim."""
        payload = self._expect("POST", "/jobs", spec, ok=(201,))
        return RemoteJob(self, payload["job"], info=payload)

    def job(self, job_id: str) -> "RemoteJob":
        """A handle on an already-submitted job (does not validate)."""
        return RemoteJob(self, job_id)

    def stats(self) -> dict:
        """The server's live ``ServiceStats.as_dict()`` payload."""
        return self._expect("GET", "/stats")

    def health(self) -> dict:
        return self._expect("GET", "/healthz")


def _float_header(response, name: str, default: float) -> float:
    raw = response.getheader(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


class RemoteJob:
    """The client-side handle on one remote job (mirrors ``JobHandle``)."""

    def __init__(self, client: ServiceClient, job_id: str, info: dict | None = None):
        self.client = client
        self.job_id = job_id
        self.info = info or {}
        #: id of the last event yielded by :meth:`events`; reconnects
        #: resume after it.
        self.cursor = 0

    def status(self) -> dict:
        """Live status snapshot (``status``, ``events``, ``finished``)."""
        return self.client._expect("GET", f"/jobs/{self.job_id}")

    def cancel(self) -> bool:
        payload = self.client._expect("POST", f"/jobs/{self.job_id}/cancel", {})
        return bool(payload.get("cancelled"))

    def result(self, timeout: float | None = None) -> MultiPropReport:
        """Block for the job's decoded report (long-polls the server).

        Raises :class:`TimeoutError` if the job stays unfinished,
        :class:`RemoteError` if it failed server-side.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            leg = RESULT_POLL_S
            if deadline is not None:
                leg = min(leg, max(deadline - time.monotonic(), 0.0))
            status, payload = self.client._request(
                "GET",
                f"/jobs/{self.job_id}/result?timeout={leg:g}",
                timeout=leg + REQUEST_TIMEOUT_S,
            )
            if status == 200:
                return decode_report(payload["report"])
            if status == 202:
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"job {self.job_id} unfinished after {timeout}s "
                        f"(status {payload.get('status')!r})"
                    )
                continue
            raise RemoteError(status, payload.get("error", "request failed"), payload)

    def events(self, *, follow_reconnects: bool = True) -> Iterator[ProgressEvent]:
        """Decoded event stream from the current cursor to JobFinished.

        Resumable end to end: the cursor advances only as events are
        yielded, every (re)connection passes it as ``Last-Event-ID``,
        and with ``follow_reconnects`` (the default) dropped or
        timed-out connections are re-opened transparently.  Events the
        codec cannot decode (opaque plugin events) advance the cursor
        but are not yielded.
        """
        while True:
            finished_clean = False
            try:
                for seq, payload in self._stream_once(self.cursor):
                    try:
                        event = decode_event(payload)
                    except CodecError:
                        self.cursor = seq
                        continue
                    # Advance before the yield: once the consumer holds
                    # the event it counts as delivered, even if the
                    # generator is closed without resuming.
                    self.cursor = seq
                    yield event
                    if isinstance(event, JobFinished):
                        return
                finished_clean = True
            except (OSError, http.client.HTTPException, TimeoutError):
                if not follow_reconnects:
                    raise
            if finished_clean:
                # Stream closed without JobFinished: server drained the
                # log it had.  Stop if the job is over, else resume.
                if self.status().get("finished"):
                    return
            if not follow_reconnects:
                return

    def _stream_once(self, after: int) -> Iterator[tuple[int, dict]]:
        """One SSE connection: yields ``(id, payload)`` until EOF."""
        conn = http.client.HTTPConnection(
            self.client.host, self.client.port, timeout=STREAM_READ_TIMEOUT_S
        )
        try:
            conn.request(
                "GET",
                f"/jobs/{self.job_id}/events",
                headers={"Last-Event-ID": str(after)},
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    decoded = json.loads(raw.decode("utf-8"))
                except ValueError:
                    decoded = {}
                raise RemoteError(
                    response.status, decoded.get("error", "stream refused"), decoded
                )
            event_id: int | None = None
            data_lines: list[str] = []
            while True:
                raw_line = response.readline()
                if not raw_line:
                    return  # EOF: server closed the finished stream
                line = raw_line.decode("utf-8", "replace").rstrip("\r\n")
                if not line:
                    if event_id is not None and data_lines:
                        yield event_id, json.loads("\n".join(data_lines))
                    event_id = None
                    data_lines = []
                    continue
                if line.startswith("id:"):
                    try:
                        event_id = int(line[3:].strip())
                    except ValueError:
                        event_id = None
                elif line.startswith("data:"):
                    data_lines.append(line[5:].strip())
                # ``retry:`` and comment lines are ignored.
        except socket.timeout:
            raise TimeoutError(
                f"event stream for {self.job_id} idle over "
                f"{STREAM_READ_TIMEOUT_S:g}s"
            ) from None
        finally:
            conn.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteJob({self.job_id!r} @ "
            f"{self.client.host}:{self.client.port}, cursor={self.cursor})"
        )


def submit_manifest(
    client: ServiceClient, jobs: list[dict], *, retry_busy: int = 20
) -> list[RemoteJob]:
    """Submit every job of a manifest, absorbing 429 back-pressure.

    A :class:`ServiceBusy` answer sleeps the server's ``Retry-After``
    hint and retries (up to ``retry_busy`` times per job) — the client
    end of the admission-queue contract.
    """
    handles: list[RemoteJob] = []
    for spec in jobs:
        attempts = 0
        while True:
            try:
                handles.append(client.submit_spec(dict(spec)))
                break
            except ServiceBusy as exc:
                attempts += 1
                if attempts > retry_busy:
                    raise
                time.sleep(max(exc.retry_after, 0.1))
    return handles
