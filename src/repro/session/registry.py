"""The strategy registry: how verification methods plug into `Session`.

A *strategy* is any object satisfying the :class:`Strategy` protocol —
a ``name``, and a ``run(ts, config, emit)`` returning a
:class:`~repro.multiprop.report.MultiPropReport`.  Strategies register
under a name with :func:`register_strategy`; the `Session` facade and
the CLI resolve names through :func:`get_strategy` and enumerate them
with :func:`available_strategies`, so adding a method (an external SAT
backend, a portfolio scheduler, a sharded runner) never requires
touching ``session`` or ``cli`` code:

    from repro.session import register_strategy

    @register_strategy("my-method")
    class MyMethod:
        \"\"\"One-line description shown by --list-strategies.\"\"\"

        def run(self, ts, config, emit):
            ...
            return report

The built-in adapters in :mod:`repro.session.strategies` register the
paper's four methods (``ja``, ``joint``, ``separate``, ``clustered``),
the simulation-assisted ``sweep-ja`` pipeline, and the process-parallel
``parallel-ja`` engine (Section 11) the same way.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..multiprop.report import MultiPropReport
    from ..progress import Emit
    from ..ts.system import TransitionSystem
    from .config import VerificationConfig


class UnknownStrategyError(KeyError):
    """Lookup of a strategy name that is not registered."""

    def __init__(self, name: str, available: list) -> None:
        super().__init__(name)
        self.name = name
        self.available = available

    def __str__(self) -> str:
        return (
            f"unknown strategy {self.name!r}; "
            f"available: {', '.join(self.available) or '(none)'}"
        )


@runtime_checkable
class Strategy(Protocol):
    """What `Session` requires of a pluggable verification method."""

    name: str

    def run(
        self,
        ts: "TransitionSystem",
        config: "VerificationConfig",
        emit: "Emit",
    ) -> "MultiPropReport":
        """Verify every property of ``ts``, emitting progress events."""
        ...  # pragma: no cover - protocol


_REGISTRY: dict[str, Strategy] = {}


def register_strategy(
    name: str, *, replace: bool = False
) -> Callable[[type], type]:
    """Class decorator: instantiate and register a strategy under ``name``.

    The decorated class is instantiated once (strategies are stateless
    adapters; per-run state belongs in the drivers they wrap) and its
    ``name`` attribute is set to the registered name.  Re-registration
    raises unless ``replace=True`` — silent shadowing of a built-in
    would be a debugging nightmare.
    """

    def decorator(cls: type) -> type:
        if name in _REGISTRY and not replace:
            raise ValueError(f"strategy {name!r} is already registered")
        instance = cls()
        instance.name = name
        _REGISTRY[name] = instance
        return cls

    return decorator


def unregister_strategy(name: str) -> None:
    """Remove a registered strategy (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_strategy(name: str) -> Strategy:
    """Resolve a strategy name; raises :class:`UnknownStrategyError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(name, sorted(_REGISTRY)) from None


def available_strategies() -> dict[str, str]:
    """Registered names mapped to one-line descriptions.

    The description is the first line of the strategy's docstring —
    exactly what ``python -m repro --list-strategies`` prints.
    """
    out: dict[str, str] = {}
    for name in sorted(_REGISTRY):
        doc = (type(_REGISTRY[name]).__doc__ or "").strip()
        out[name] = doc.splitlines()[0] if doc else ""
    return out
