"""Built-in strategy adapters: the paper's methods behind one protocol.

Each adapter translates the relevant slice of a
:class:`~repro.session.config.VerificationConfig` into the option
dataclass of the driver it wraps and forwards the ``emit`` callback.
The drivers keep their standalone APIs (and their tests); the adapters
are the only place that knows how config fields map onto them, which is
exactly the migration table documented in :mod:`repro.session`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..multiprop.clustering import ClusterOptions, clustered_verify
from ..multiprop.ja import JAOptions, JAVerifier
from ..multiprop.joint import JointOptions, joint_verify
from ..multiprop.separate import SeparateOptions, separate_verify
from ..multiprop.sweep import swept_ja_verify
from .config import VerificationConfig, resolve_order
from .registry import register_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..multiprop.report import MultiPropReport
    from ..progress import Emit
    from ..ts.system import TransitionSystem


def _ja_options(ts: "TransitionSystem", config: VerificationConfig) -> JAOptions:
    return JAOptions(
        clause_reuse=config.clause_reuse,
        respect_constraints_in_lifting=config.respect_constraints_in_lifting,
        per_property_time=config.per_property_time,
        per_property_conflicts=config.per_property_conflicts,
        total_time=config.total_time,
        order=resolve_order(ts, config.order),
        max_frames=config.max_frames,
        clause_db_path=config.clause_db_path,
        coi_reduction=config.coi_reduction,
        ctg=config.ctg,
        solver_backend=config.solver_backend,
        engine_overrides=dict(config.engine),
    )


@register_strategy("ja")
class JAStrategy:
    """JA-verification: local proofs under wrong assumptions (Ja-ver, Sec. 4)."""

    def run(self, ts, config, emit) -> "MultiPropReport":
        verifier = JAVerifier(ts, _ja_options(ts, config), emit=emit)
        return verifier.run(config.design_name)


@register_strategy("joint")
class JointStrategy:
    """Joint verification of the aggregate property (Jnt-ver, Sec. 9)."""

    def run(self, ts, config, emit) -> "MultiPropReport":
        options = JointOptions(
            total_time=config.total_time,
            total_conflicts=config.total_conflicts,
            max_frames=config.max_frames,
            include_etf=config.include_etf,
            solver_backend=config.solver_backend,
            engine_overrides=dict(config.engine),
        )
        return joint_verify(ts, options, design_name=config.design_name, emit=emit)


@register_strategy("separate")
class SeparateStrategy:
    """Separate verification with global proofs (Tables V, VI, X baseline)."""

    def run(self, ts, config, emit) -> "MultiPropReport":
        options = SeparateOptions(
            clause_reuse=config.clause_reuse,
            per_property_time=config.per_property_time,
            per_property_conflicts=config.per_property_conflicts,
            total_time=config.total_time,
            order=resolve_order(ts, config.order),
            max_frames=config.max_frames,
            solver_backend=config.solver_backend,
            engine_overrides=dict(config.engine),
        )
        return separate_verify(ts, options, design_name=config.design_name, emit=emit)


@register_strategy("clustered")
class ClusteredStrategy:
    """Structure-aware grouping, joint or JA inside each cluster (Sec. 12)."""

    def run(self, ts, config, emit) -> "MultiPropReport":
        options = ClusterOptions(
            similarity_threshold=config.similarity_threshold,
            inner=config.cluster_inner,
            total_time=config.total_time,
            per_property_time=config.per_property_time,
            solver_backend=config.solver_backend,
            engine_overrides=dict(config.engine),
        )
        return clustered_verify(ts, options, design_name=config.design_name, emit=emit)


@register_strategy("sweep-ja")
class SweptJAStrategy:
    """Random-simulation sweep for shallow failures, then JA-verification."""

    def run(self, ts, config, emit) -> "MultiPropReport":
        return swept_ja_verify(
            ts,
            options=_ja_options(ts, config),
            design_name=config.design_name,
            emit=emit,
        )


def parallel_options(ts: "TransitionSystem", config: VerificationConfig):
    """The ``ParallelOptions`` slice of a config (shared with the service).

    :class:`~repro.service.VerificationService` uses the same mapping
    when it multiplexes a pooled job onto its shared pool, so the CLI,
    ``Session`` and ``submit()`` agree on every knob.
    """
    from ..parallel import ParallelOptions

    return ParallelOptions(
        workers=config.workers,
        exchange=config.exchange,
        exchange_shards=config.exchange_shards,
        pool=config.pool,
        schedule_only=config.schedule_only,
        stop_on_failure=config.stop_on_failure,
        max_seats=config.max_seats,
        clause_reuse=config.clause_reuse,
        respect_constraints_in_lifting=config.respect_constraints_in_lifting,
        per_property_time=config.per_property_time,
        per_property_conflicts=config.per_property_conflicts,
        total_time=config.total_time,
        order=resolve_order(ts, config.order),
        max_frames=config.max_frames,
        coi_reduction=config.coi_reduction,
        ctg=config.ctg,
        solver_backend=config.solver_backend,
        engine_overrides=dict(config.engine),
        seed=config.seed,
        portfolio_engines=(
            None
            if config.portfolio_engines is None
            else tuple(
                part.strip()
                for part in config.portfolio_engines.split(",")
                if part.strip()
            )
        ),
    )


@register_strategy("parallel-ja")
class ParallelJAStrategy:
    """Process-parallel JA-verification with live clause exchange (Sec. 11)."""

    def run(self, ts, config, emit) -> "MultiPropReport":
        from ..parallel import parallel_ja_verify

        return parallel_ja_verify(
            ts,
            parallel_options(ts, config),
            design_name=config.design_name,
            emit=emit,
        )


@register_strategy("portfolio")
class PortfolioStrategy:
    """Per-property engine racing: first definitive verdict wins.

    Races the configured slate (``portfolio_engines``, default
    ``rw,bmc,kind,ic3``) per property on the seat scheduler; losers are
    cancelled through the per-run cancellation path and the winning
    engine per property lands in ``report.stats["portfolio"]``.
    """

    def run(self, ts, config, emit) -> "MultiPropReport":
        from ..parallel import portfolio_verify

        return portfolio_verify(
            ts,
            parallel_options(ts, config),
            design_name=config.design_name,
            emit=emit,
        )
