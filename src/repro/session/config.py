"""The single configuration object consumed by every strategy.

:class:`VerificationConfig` replaces the per-driver option dataclasses
(``JAOptions``, ``JointOptions``, ``SeparateOptions``, ``ClusterOptions``)
at the API surface: one object names the strategy, the budgets, the
property ordering, the clause-reuse policy, and low-level engine
overrides.  Strategy adapters translate the relevant subset into the
driver options they wrap, so the drivers themselves stay unchanged and
independently usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from collections.abc import Sequence

from ..ts.system import TransitionSystem

#: ``IC3Options`` knobs that may be overridden through ``engine``.
#: Budgets, assumptions and seeds are owned by the drivers; exposing
#: them here would let a config silently break driver invariants.
#: ``incremental`` is the rebuild-per-query benchmarking baseline.
ENGINE_OVERRIDE_KEYS = frozenset(
    {
        "generalize_passes",
        "max_ctgs",
        "validate_cex",
        "validate_invariant",
        "incremental",
    }
)

#: Named property orders understood by :func:`resolve_order`.
ORDER_NAMES = ("design", "cone")


class ConfigError(ValueError):
    """A :class:`VerificationConfig` failed validation."""


@dataclass
class VerificationConfig:
    """Everything one verification run needs, in one object.

    Fields irrelevant to the selected strategy are ignored by its
    adapter (e.g. ``cluster_inner`` outside the clustered strategy),
    mirroring how the paper's tables vary one axis at a time.
    """

    strategy: str = "ja"
    # -- budgets -------------------------------------------------------
    total_time: float | None = None
    per_property_time: float | None = None
    per_property_conflicts: int | None = None
    total_conflicts: int | None = None
    # -- property ordering ---------------------------------------------
    #: ``None`` (design order), ``"design"``, ``"cone"``,
    #: ``"shuffled:<seed>"``, or an explicit sequence of property names.
    order: None | str | Sequence[str] = None
    # -- clause re-use (Section 6) -------------------------------------
    clause_reuse: bool = True
    clause_db_path: str | None = None
    # -- local-proof details (Sections 6-C, 7-A) -----------------------
    respect_constraints_in_lifting: bool = False
    coi_reduction: bool = False
    ctg: bool = False
    # -- engine ceiling ------------------------------------------------
    max_frames: int = 500
    # -- SAT backend (repro.sat registry) ------------------------------
    #: ``None`` uses the process default (``REPRO_SAT_BACKEND`` env var,
    #: then ``"cdcl"``); any registered backend name selects explicitly.
    solver_backend: str | None = None
    # -- joint/clustered specifics -------------------------------------
    include_etf: bool = True
    cluster_inner: str = "joint"
    similarity_threshold: float = 0.5
    # -- parallel-ja specifics (Section 11) ----------------------------
    #: Worker processes; ``None`` means one per CPU (capped by #props).
    workers: int | None = None
    #: Live clause exchange between workers (requires ``clause_reuse``).
    exchange: bool = True
    #: Fall back to the legacy list-scheduling simulator (no processes).
    schedule_only: bool = False
    #: Cancel still-queued properties once one comes back FAILS.
    stop_on_failure: bool = False
    #: Clause-exchange shards: a positive count, or ``"auto"`` for one
    #: shard per structural property cluster (see repro.parallel.exchange).
    exchange_shards: int | str = 1
    #: A persistent :class:`repro.parallel.WorkerPool` shared across
    #: ``Session.run()`` calls; ``None`` uses a private single-run pool.
    pool: object | None = None
    # -- service specifics (repro.service) -----------------------------
    #: Default fair-share weight when this config is ``submit()``-ed to
    #: a :class:`repro.service.VerificationService` (> 0; a job holding
    #: seats proportional to its weight relative to its siblings').
    priority: float = 1.0
    #: Jobs a service built from this config runs concurrently (``repro
    #: serve``); ``None`` defers to the service's own default.
    max_concurrent_jobs: int | None = None
    #: Ceiling on shared-pool seats this job may hold at once when
    #: ``submit()``-ed to a service; ``None`` leaves fair share alone
    #: to govern.  A narrow quota keeps one big job from monopolizing
    #: the pool regardless of its priority.
    max_seats: int | None = None
    # -- portfolio specifics (repro.parallel.portfolio) ----------------
    #: Run-level seed for stochastic engines (the random-walk
    #: falsifier); per-property sub-seeds are derived deterministically
    #: from it, so equal seeds give bit-identical runs.  ``None`` means
    #: seed 0 (still deterministic).
    seed: int | None = None
    #: Engine slate the portfolio strategy races per property, as a
    #: comma-separated subset of ``rw,bmc,kind,ic3`` (race order =
    #: admission order); ``None`` races the full default slate.
    portfolio_engines: str | None = None
    # -- escape hatch: validated IC3Options overrides ------------------
    engine: dict[str, object] = field(default_factory=dict)
    # -- cross-run proof cache (repro.cache) ---------------------------
    #: Root directory of the content-addressed proof store; ``None``
    #: disables caching entirely.
    cache_dir: str | None = None
    #: ``"off"`` ignores the store, ``"read"`` serves certified hits but
    #: never writes, ``"readwrite"`` (default) also persists fresh
    #: HOLDS/FAILS verdicts and warm clause logs.  Only meaningful with
    #: ``cache_dir`` set.
    cache_mode: str = "readwrite"
    # -- reporting -----------------------------------------------------
    design_name: str = "design"

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigError` on any inconsistent field."""
        if not self.strategy or not isinstance(self.strategy, str):
            raise ConfigError("strategy must be a non-empty string")
        for name in (
            "total_time",
            "per_property_time",
            "per_property_conflicts",
            "total_conflicts",
        ):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value!r}")
        if self.max_frames < 1:
            raise ConfigError(f"max_frames must be >= 1, got {self.max_frames!r}")
        if self.cluster_inner not in ("joint", "ja"):
            raise ConfigError(
                f"unknown cluster_inner {self.cluster_inner!r}; expected 'joint' or 'ja'"
            )
        if not 0.0 <= self.similarity_threshold <= 1.0:
            raise ConfigError(
                f"similarity_threshold must be within [0, 1], "
                f"got {self.similarity_threshold!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers!r}")
        if (
            isinstance(self.priority, bool)
            or not isinstance(self.priority, (int, float))
            or self.priority <= 0
        ):
            raise ConfigError(f"priority must be > 0, got {self.priority!r}")
        if self.max_concurrent_jobs is not None and self.max_concurrent_jobs < 1:
            raise ConfigError(
                f"max_concurrent_jobs must be >= 1, "
                f"got {self.max_concurrent_jobs!r}"
            )
        if self.max_seats is not None and (
            isinstance(self.max_seats, bool)
            or not isinstance(self.max_seats, int)
            or self.max_seats < 1
        ):
            raise ConfigError(
                f"max_seats must be >= 1 or None, got {self.max_seats!r}"
            )
        if isinstance(self.exchange_shards, bool) or not (
            self.exchange_shards == "auto"
            or (isinstance(self.exchange_shards, int) and self.exchange_shards >= 1)
        ):
            raise ConfigError(
                f"exchange_shards must be a positive int or 'auto', "
                f"got {self.exchange_shards!r}"
            )
        if self.pool is not None:
            from ..parallel.pool import WorkerPool

            if not isinstance(self.pool, WorkerPool):
                raise ConfigError(
                    f"pool must be a repro.parallel.WorkerPool or None, "
                    f"not {type(self.pool).__name__}"
                )
            if self.pool.closed:
                raise ConfigError("pool has been shut down")
        from ..sat import UnknownBackendError, default_backend, get_backend

        try:
            if self.solver_backend is not None:
                get_backend(self.solver_backend)
            else:
                default_backend()  # catch a bogus REPRO_SAT_BACKEND early
        except UnknownBackendError as exc:
            raise ConfigError(str(exc)) from None
        if self.seed is not None and (
            isinstance(self.seed, bool)
            or not isinstance(self.seed, int)
            or self.seed < 0
        ):
            raise ConfigError(
                f"seed must be a non-negative int or None, got {self.seed!r}"
            )
        if self.portfolio_engines is not None:
            from ..parallel.portfolio import parse_engine_slate

            try:
                parse_engine_slate(self.portfolio_engines)
            except ValueError as exc:
                raise ConfigError(str(exc)) from None
        if self.cache_mode not in ("off", "read", "readwrite"):
            raise ConfigError(
                f"unknown cache_mode {self.cache_mode!r}; "
                f"expected 'off', 'read' or 'readwrite'"
            )
        if self.cache_dir is not None and (
            not isinstance(self.cache_dir, str) or not self.cache_dir
        ):
            raise ConfigError(
                f"cache_dir must be a non-empty path or None, got {self.cache_dir!r}"
            )
        self._validate_order_spec()
        unknown = set(self.engine) - ENGINE_OVERRIDE_KEYS
        if unknown:
            raise ConfigError(
                f"unknown engine override(s) {sorted(unknown)}; "
                f"allowed: {sorted(ENGINE_OVERRIDE_KEYS)}"
            )

    def _validate_order_spec(self) -> None:
        order = self.order
        if order is None:
            return
        if isinstance(order, str):
            if order in ORDER_NAMES:
                return
            if order.startswith("shuffled:"):
                seed = order.split(":", 1)[1]
                try:
                    int(seed)
                except ValueError:
                    raise ConfigError(
                        f"unknown order {order!r}: shuffled seed must be an integer"
                    ) from None
                return
            raise ConfigError(
                f"unknown order {order!r}; expected one of "
                f"{', '.join(ORDER_NAMES)}, shuffled:<seed>, or a name list"
            )
        if not all(isinstance(name, str) for name in order):
            raise ConfigError("an explicit order must be a sequence of property names")

    # ------------------------------------------------------------------
    def with_overrides(self, **overrides: object) -> "VerificationConfig":
        """A copy with the given fields replaced (unknown names rejected)."""
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigError(f"unknown config field(s): {sorted(unknown)}")
        return replace(self, **overrides)


def resolve_order(
    ts: TransitionSystem, order: None | str | Sequence[str]
) -> list[str] | None:
    """Turn a config order spec into an explicit property-name list.

    ``None`` stays ``None`` (drivers default to design order); unknown
    names in an explicit list are rejected here so every strategy fails
    the same way.
    """
    from ..multiprop.ordering import by_cone_size, design_order, shuffled

    if order is None:
        return None
    if isinstance(order, str):
        if order == "design":
            return design_order(ts)
        if order == "cone":
            return by_cone_size(ts)
        if order.startswith("shuffled:"):
            return shuffled(ts, int(order.split(":", 1)[1]))
        raise ConfigError(f"unknown order {order!r}")
    names = list(order)
    unknown = set(names) - {p.name for p in ts.properties}
    if unknown:
        raise ConfigError(f"unknown properties in order: {sorted(unknown)}")
    return names
