"""Unified session API: one facade over every verification strategy.

This package is the stable orchestration surface of the reproduction:
a :class:`Session` is constructed from a design (AIGER path,
:class:`~repro.circuit.aig.AIG`, or
:class:`~repro.ts.system.TransitionSystem`) plus one
:class:`VerificationConfig`; the strategy named by the config is
resolved through the registry and driven to a
:class:`~repro.multiprop.report.MultiPropReport`, streaming typed
:class:`~repro.progress.ProgressEvent` objects along the way::

    from repro.session import Session

    session = Session("design.aag", strategy="ja", on_event=print)
    report = session.run()
    print(report.debugging_set())

or, consuming events as an iterator::

    session = Session("design.aag", strategy="joint")
    for event in session.stream():
        print(event.kind, event)
    report = session.report

New strategies plug in without touching this package or the CLI::

    from repro.session import register_strategy

    @register_strategy("portfolio")
    class Portfolio:
        \"\"\"Races ja and joint, returns the first finisher.\"\"\"

        def run(self, ts, config, emit):
            ...

The SAT solver underneath every engine is pluggable the same way:
``VerificationConfig.solver_backend`` names an entry of the
:mod:`repro.sat` backend registry (builtin: ``"cdcl"`` and
``"cdcl-compact"``; ``None`` defers to the ``REPRO_SAT_BACKEND``
environment variable, then ``"cdcl"``).  The name is validated at
session construction and threaded through every strategy adapter,
including into ``parallel-ja`` worker processes, so one config field
switches the solver for an entire run::

    Session("design.aag", strategy="ja", solver_backend="cdcl-compact").run()

Migration from the pre-session entry points
-------------------------------------------

The per-driver functions remain available but are deprecated; each maps
onto :class:`VerificationConfig` fields as follows:

===========================================  ==================================
old entry point / option                      session equivalent
===========================================  ==================================
``ja_verify(ts, JAOptions(...))``             ``Session(ts, strategy="ja", ...)``
``joint_verify(ts, JointOptions(...))``       ``Session(ts, strategy="joint", ...)``
``separate_verify(ts, SeparateOptions(...))`` ``Session(ts, strategy="separate", ...)``
``clustered_verify(ts, ClusterOptions(...))`` ``Session(ts, strategy="clustered", ...)``
``swept_ja_verify(ts, ...)``                  ``Session(ts, strategy="sweep-ja", ...)``
``JAOptions.clause_reuse``                    ``VerificationConfig.clause_reuse``
``JAOptions.respect_constraints_in_lifting``  ``VerificationConfig.respect_constraints_in_lifting``
``JAOptions.per_property_time``               ``VerificationConfig.per_property_time``
``JAOptions.per_property_conflicts``          ``VerificationConfig.per_property_conflicts``
``*Options.total_time``                       ``VerificationConfig.total_time``
``JointOptions.total_conflicts``              ``VerificationConfig.total_conflicts``
``JAOptions.order`` (explicit list)           ``VerificationConfig.order`` (list or
                                              ``"design" | "cone" | "shuffled:<seed>"``)
``JAOptions.coi_reduction`` / ``.ctg``        ``VerificationConfig.coi_reduction`` / ``.ctg``
``JAOptions.clause_db_path``                  ``VerificationConfig.clause_db_path``
``*Options.max_frames``                       ``VerificationConfig.max_frames``
``JointOptions.include_etf``                  ``VerificationConfig.include_etf``
``ClusterOptions.inner``                      ``VerificationConfig.cluster_inner``
``ClusterOptions.similarity_threshold``       ``VerificationConfig.similarity_threshold``
``IC3Options`` tuning knobs                   ``VerificationConfig.engine`` dict
``design_name=...`` argument                  ``VerificationConfig.design_name``
===========================================  ==================================

Process-parallel JA-verification
--------------------------------

``strategy="parallel-ja"`` runs one local-proof worker process per
property slot (paper Section 11) through
:mod:`repro.parallel`; its knobs live on the same config object:

``VerificationConfig.workers``
    worker processes (``None``: one per CPU, capped by #properties);
``VerificationConfig.exchange``
    live strengthening-clause exchange between workers through the
    cluster-sharded :class:`~repro.parallel.exchange.ShardedExchange`
    (only meaningful with ``clause_reuse``; off = Table X's
    independent-proof mode);
``VerificationConfig.exchange_shards``
    clause-exchange shards: a count or ``"auto"`` for one shard per
    structural property cluster — clauses are routed only between
    same-shard subscribers;
``VerificationConfig.pool``
    a persistent :class:`~repro.parallel.pool.WorkerPool` shared
    across ``Session.run()`` calls (workers and shipped designs are
    reused; see :func:`repro.parallel.default_pool`);
``VerificationConfig.schedule_only``
    don't spawn processes — measure standalone local proofs
    sequentially and *project* the makespan with the legacy greedy
    list-scheduling simulator (:mod:`repro.multiprop.parallel`);
``VerificationConfig.stop_on_failure``
    early-cancel queued properties once one comes back FAILS (the
    run-level "all hold" verdict is then decided); cancelled
    properties are reported UNKNOWN.

Worker progress events are merged into the session's normal event
channel; :class:`WorkerStarted`, :class:`PropertyCancelled` and
:class:`PropertyRequeued` (a crashed worker's job re-dispatched onto a
survivor) make the pool's lifecycle observable.  Jobs are dispatched
largest-estimated-cone-first unless the config pins an explicit
``order``.

Cross-run proof cache
---------------------

Two config fields connect any strategy to the content-addressed proof
store in :mod:`repro.cache`:

``VerificationConfig.cache_dir``
    directory of the on-disk :class:`~repro.cache.ProofStore`
    (``None``: no caching).  Before dispatch, properties whose
    COI-cone digest has a stored verdict are resolved from the store —
    each one re-certified against the *current* design
    (:func:`~repro.engines.certify.certify_invariant` /
    :func:`~repro.engines.certify.certify_cex`) and announced with a
    :class:`CacheHit` event; only the rest are proved.  Fresh verdicts
    and warm-start clauses are written back;
``VerificationConfig.cache_mode``
    ``"readwrite"`` (default), ``"read"`` (serve hits, never write),
    or ``"off"`` (ignore ``cache_dir`` entirely).

Cache-served outcomes carry ``engine == "cache"``; the report's
``stats`` gain a ``cache_hits`` count so tooling can tell a warm run
from a cold one.
"""

from ..progress import (
    BudgetCheckpoint,
    CacheHit,
    ClauseExport,
    ClauseImport,
    ClusterStarted,
    Emit,
    FrameAdvanced,
    JobFinished,
    JobQueued,
    JobStarted,
    ProgressEvent,
    PropertyCancelled,
    PropertyRequeued,
    PropertySolved,
    PropertyStarted,
    RunFinished,
    RunStarted,
    ServiceSaturated,
    WorkerStarted,
    format_event,
)
from .config import ENGINE_OVERRIDE_KEYS, ConfigError, VerificationConfig, resolve_order
from .core import Session, load_design
from .registry import (
    Strategy,
    UnknownStrategyError,
    available_strategies,
    get_strategy,
    register_strategy,
    unregister_strategy,
)

# Importing the module registers the built-in strategies.
from . import strategies as _builtin_strategies  # noqa: E402,F401

__all__ = [
    "Session",
    "VerificationConfig",
    "ConfigError",
    "ENGINE_OVERRIDE_KEYS",
    "resolve_order",
    "load_design",
    "Strategy",
    "UnknownStrategyError",
    "register_strategy",
    "unregister_strategy",
    "get_strategy",
    "available_strategies",
    "ProgressEvent",
    "RunStarted",
    "RunFinished",
    "PropertyStarted",
    "PropertySolved",
    "FrameAdvanced",
    "ClauseImport",
    "ClauseExport",
    "BudgetCheckpoint",
    "CacheHit",
    "ClusterStarted",
    "WorkerStarted",
    "PropertyCancelled",
    "PropertyRequeued",
    "JobQueued",
    "JobStarted",
    "JobFinished",
    "ServiceSaturated",
    "Emit",
    "format_event",
]
