"""The :class:`Session` facade: one entry point for every strategy.

A session binds a design (path, :class:`~repro.circuit.aig.AIG`, or
:class:`~repro.ts.system.TransitionSystem`) to one
:class:`~repro.session.config.VerificationConfig`, resolves the strategy
through the registry, and fans progress events out to subscribers.
Events can be consumed two ways:

* **callback** — ``Session(..., on_event=print)`` or
  :meth:`Session.subscribe`, then :meth:`Session.run`;
* **iterator** — ``for event in session.stream(): ...`` drives the run
  on a worker thread and yields events as they happen; the report is
  available as ``session.report`` once the iterator is exhausted.
"""

from __future__ import annotations

import os
import queue
import threading
from collections.abc import Iterator

from ..circuit.aig import AIG
from ..multiprop.report import MultiPropReport
from ..progress import Emit, ProgressEvent, RunFinished, RunStarted
from ..ts.system import TransitionSystem
from .config import ConfigError, VerificationConfig, resolve_order
from .registry import get_strategy

DesignLike = str | os.PathLike | AIG | TransitionSystem

#: How often :meth:`Session.stream` wakes to notice a dead worker
#: thread that never delivered its end-of-stream sentinel.
_STREAM_POLL_TIMEOUT = 0.5


def load_design(path: "str | os.PathLike[str]") -> AIG:
    """Load an AIGER design, dispatching on the ``.aig``/``.aag`` suffix."""
    from ..circuit.aiger import load_aag
    from ..circuit.aiger_binary import load_aig

    path = os.fspath(path)
    if path.endswith(".aig"):
        return load_aig(path)
    return load_aag(path)


class Session:
    """One verification run: design + config + event subscribers.

    ``overrides`` are :class:`VerificationConfig` fields applied on top
    of ``config`` (or of a default config when none is given), so the
    common cases stay one-liners::

        report = Session("design.aag", strategy="joint", total_time=60).run()
    """

    def __init__(
        self,
        design: DesignLike,
        config: VerificationConfig | None = None,
        *,
        on_event: Emit | None = None,
        **overrides: object,
    ) -> None:
        base = config if config is not None else VerificationConfig()
        if overrides:
            base = base.with_overrides(**overrides)
        self.ts, design_name = self._coerce_design(design)
        if base.design_name == "design" and design_name is not None:
            base = base.with_overrides(design_name=design_name)
        base.validate()
        get_strategy(base.strategy)  # fail fast on unknown strategies
        resolve_order(self.ts, base.order)  # ... and on unknown property names
        self.config = base
        self.report: MultiPropReport | None = None
        self._subscribers: list[Emit] = []
        if on_event is not None:
            self.subscribe(on_event)

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_design(design: DesignLike):
        if isinstance(design, TransitionSystem):
            return design, None
        if isinstance(design, AIG):
            return TransitionSystem(design), None
        if isinstance(design, (str, os.PathLike)):
            path = os.fspath(design)
            return TransitionSystem(load_design(path)), path
        raise ConfigError(
            f"design must be a path, AIG, or TransitionSystem, "
            f"not {type(design).__name__}"
        )

    # ------------------------------------------------------------------
    # Event channel
    # ------------------------------------------------------------------
    def subscribe(self, callback: Emit) -> Emit:
        """Register an event callback; returns it (usable as decorator)."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Emit) -> None:
        """Remove a previously subscribed callback."""
        self._subscribers.remove(callback)

    def _emit(self, event: ProgressEvent) -> None:
        for callback in list(self._subscribers):
            callback(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> MultiPropReport:
        """Run the configured strategy to completion, emitting events.

        The session is a thin synchronous wrapper over a **private
        single-job** :class:`~repro.service.VerificationService`: the
        run is submitted as one job and awaited, so the one-shot API
        exercises exactly the machinery the server API does (the job
        lifecycle shows up in the event stream as
        ``job-queued``/``job-started``/``job-finished`` between the
        session's :class:`RunStarted`/:class:`RunFinished` brackets).

        :class:`RunFinished` is emitted even when the strategy raises
        (with zeroed counters), so subscribers can always close their
        bookkeeping on it; the exception then propagates to the caller.
        """
        from ..service.core import VerificationService

        get_strategy(self.config.strategy)  # fail fast, as before
        self._emit(
            RunStarted(
                strategy=self.config.strategy,
                design=self.config.design_name,
                properties=tuple(p.name for p in self.ts.properties),
            )
        )
        report: MultiPropReport | None = None
        try:
            service = VerificationService._private()
            try:
                handle = service.submit(
                    self.ts, self.config, on_event=self._emit
                )
                report = handle.result()
            finally:
                service.close()
        finally:
            self._emit(
                RunFinished(
                    strategy=self.config.strategy,
                    design=self.config.design_name,
                    total_time=report.total_time if report is not None else 0.0,
                    num_true=len(report.true_props()) if report is not None else 0,
                    num_false=len(report.false_props()) if report is not None else 0,
                    num_unknown=len(report.unsolved()) if report is not None else 0,
                )
            )
        self.report = report
        return report

    def stream(self) -> Iterator[ProgressEvent]:
        """Run on a worker thread, yielding events as they are emitted.

        The generator terminates after :class:`RunFinished`; the report
        is then available as :attr:`report`.  Exceptions raised by the
        strategy re-raise here, on the consumer's thread.

        Abandoning the iterator early (``break``, ``close()``) detaches
        rather than blocks: the strategy has no cancellation point, so
        the daemon worker keeps running in the background and ``report``
        is populated whenever it finishes.
        """
        events: "queue.Queue[object]" = queue.Queue()
        done = object()
        failure: list[BaseException] = []

        def pump(event: ProgressEvent) -> None:
            events.put(event)

        def worker() -> None:
            try:
                self.run()
            except BaseException as exc:  # re-raised on the consumer side
                failure.append(exc)
            finally:
                events.put(done)

        self.subscribe(pump)
        thread = threading.Thread(
            target=worker, name="repro-session", daemon=True
        )
        thread.start()
        finished = False
        try:
            while True:
                try:
                    item = events.get(timeout=_STREAM_POLL_TIMEOUT)
                except queue.Empty:
                    if not thread.is_alive():
                        # The worker died without its sentinel (killed
                        # thread, interpreter teardown): stop streaming
                        # rather than wait forever.
                        finished = True
                        break
                    continue
                if item is done:
                    finished = True
                    break
                yield item  # type: ignore[misc]
        finally:
            self.unsubscribe(pump)
            if finished:
                thread.join()
        if failure:
            raise failure[0]
