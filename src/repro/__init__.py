"""repro — multi-property hardware model checking with JA-verification.

A from-scratch reproduction of Goldberg, Güdemann, Kroening, Mukherjee,
"Efficient Verification of Multi-Property Designs (The Benefit of Wrong
Assumptions)", DATE 2018 (arXiv:1711.05698).

Layers (bottom-up):

* :mod:`repro.sat` — a CDCL SAT solver (incremental, assumption cores);
* :mod:`repro.circuit` — AIG circuit model, word-level builder, AIGER
  I/O, concrete simulator;
* :mod:`repro.encode` — Tseitin encoding and BMC unrolling;
* :mod:`repro.ts` — transition systems, the ``T^P`` projection,
  counterexample traces, explicit-state ground truth;
* :mod:`repro.engines` — BMC, k-induction and IC3/PDR (with local-proof
  constraints, two lifting modes, clause import/export);
* :mod:`repro.multiprop` — JA-verification, joint and separate-global
  drivers, clauseDB, debugging-set analysis, parallel simulation;
* :mod:`repro.gen` — benchmark generators (Example 1's counter and the
  synthetic HWMCC-12/13 stand-ins).

Quickstart::

    from repro import TransitionSystem, ja_verify
    from repro.gen import buggy_counter

    ts = TransitionSystem(buggy_counter(bits=8))
    report = ja_verify(ts)
    print(report.debugging_set())   # ['P0']
"""

from .circuit import AIG, Simulator, load_aag, parse_aag, save_aag, write_aag
from .engines import (
    EngineResult,
    IC3Options,
    PropStatus,
    ResourceBudget,
    bmc_check,
    ic3_check,
    kinduction_check,
)
from .multiprop import (
    ClauseDB,
    JAOptions,
    JAVerifier,
    JointOptions,
    MultiPropReport,
    SeparateOptions,
    debugging_report,
    ja_verify,
    joint_verify,
    separate_verify,
)
from .sat import Solver, Status
from .ts import ProjectedReachability, Trace, TransitionSystem

__version__ = "1.0.0"

__all__ = [
    "AIG",
    "Simulator",
    "parse_aag",
    "write_aag",
    "load_aag",
    "save_aag",
    "Solver",
    "Status",
    "TransitionSystem",
    "Trace",
    "ProjectedReachability",
    "bmc_check",
    "kinduction_check",
    "ic3_check",
    "IC3Options",
    "PropStatus",
    "EngineResult",
    "ResourceBudget",
    "ja_verify",
    "JAVerifier",
    "JAOptions",
    "joint_verify",
    "JointOptions",
    "separate_verify",
    "SeparateOptions",
    "ClauseDB",
    "MultiPropReport",
    "debugging_report",
    "__version__",
]
