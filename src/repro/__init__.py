"""repro — multi-property hardware model checking with JA-verification.

A from-scratch reproduction of Goldberg, Güdemann, Kroening, Mukherjee,
"Efficient Verification of Multi-Property Designs (The Benefit of Wrong
Assumptions)", DATE 2018 (arXiv:1711.05698).

Layers (bottom-up):

* :mod:`repro.sat` — incremental CDCL SAT solvers behind a pluggable
  backend registry (:class:`SatBackend` protocol, assumption cores,
  activation-literal clause groups);
* :mod:`repro.circuit` — AIG circuit model, word-level builder, AIGER
  I/O, concrete simulator;
* :mod:`repro.encode` — Tseitin encoding and BMC unrolling;
* :mod:`repro.ts` — transition systems, the ``T^P`` projection,
  counterexample traces, explicit-state ground truth;
* :mod:`repro.engines` — BMC, k-induction and IC3/PDR (with local-proof
  constraints, two lifting modes, clause import/export);
* :mod:`repro.multiprop` — JA-verification, joint and separate-global
  drivers, clauseDB, debugging-set analysis, parallel simulation;
* :mod:`repro.session` — the unified orchestration API: a
  :class:`Session` facade, one :class:`VerificationConfig`, a pluggable
  strategy registry, and streaming :class:`ProgressEvent` channels;
* :mod:`repro.service` — the server regime: a
  :class:`VerificationService` accepting concurrent job submissions
  (``submit -> JobHandle -> events()/result()``) multiplexed over one
  shared worker pool with priorities and bounded admission;
* :mod:`repro.gen` — benchmark generators (Example 1's counter and the
  synthetic HWMCC-12/13 stand-ins).

Quickstart::

    from repro import Session
    from repro.gen import buggy_counter

    session = Session(buggy_counter(bits=8), strategy="ja")
    report = session.run()
    print(report.debugging_set())   # ['P0']

Progress events stream via callback or iterator::

    session = Session(buggy_counter(bits=8), strategy="ja", on_event=print)
    session.run()

Every verification strategy (``ja``, ``joint``, ``separate``,
``clustered``, ``sweep-ja``, and anything registered with
:func:`register_strategy`) runs through the same ``Session`` API; see
:mod:`repro.session` for the migration table from the older per-driver
entry points (``ja_verify`` & friends), which remain available but are
deprecated.
"""

from .circuit import AIG, Simulator, load_aag, parse_aag, save_aag, write_aag
from .engines import (
    EngineResult,
    IC3Options,
    PropStatus,
    ResourceBudget,
    bmc_check,
    ic3_check,
    kinduction_check,
)
from .multiprop import (
    ClauseDB,
    JAOptions,
    JAVerifier,
    JointOptions,
    MultiPropReport,
    SeparateOptions,
    debugging_report,
    ja_verify,
    joint_verify,
    separate_verify,
)
from .progress import ProgressEvent, format_event
from .sat import (
    SatBackend,
    Solver,
    Status,
    UnknownBackendError,
    available_backends,
    create_solver,
    register_backend,
)
from .service import JobHandle, JobStatus, QueueFull, VerificationService
from .session import (
    ConfigError,
    Session,
    Strategy,
    UnknownStrategyError,
    VerificationConfig,
    available_strategies,
    get_strategy,
    register_strategy,
)
from .ts import ProjectedReachability, Trace, TransitionSystem

__version__ = "1.1.0"

__all__ = [
    "AIG",
    "Simulator",
    "parse_aag",
    "write_aag",
    "load_aag",
    "save_aag",
    "Solver",
    "SatBackend",
    "Status",
    "UnknownBackendError",
    "register_backend",
    "create_solver",
    "available_backends",
    "TransitionSystem",
    "Trace",
    "ProjectedReachability",
    "bmc_check",
    "kinduction_check",
    "ic3_check",
    "IC3Options",
    "PropStatus",
    "EngineResult",
    "ResourceBudget",
    "Session",
    "VerificationConfig",
    "ConfigError",
    "VerificationService",
    "JobHandle",
    "JobStatus",
    "QueueFull",
    "Strategy",
    "UnknownStrategyError",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "ProgressEvent",
    "format_event",
    "ja_verify",
    "JAVerifier",
    "JAOptions",
    "joint_verify",
    "JointOptions",
    "separate_verify",
    "SeparateOptions",
    "ClauseDB",
    "MultiPropReport",
    "debugging_report",
    "__version__",
]
