"""Cross-run proof cache: content-addressed invariant store.

The paper's clause-reuse story (Section 6) stops at the job boundary:
every submitted job re-proves every property from scratch, even when
the service proved the identical design minutes earlier.  This package
extends reuse across runs and across processes:

* :mod:`~repro.cache.hashing` — the repo's *single* home for stable
  content hashes (design digests, per-property COI-cone digests,
  pickle-payload digests, seed derivation);
* :mod:`~repro.cache.store` — :class:`ProofStore`, a content-addressed
  on-disk store of certified verdicts (inductive invariants for HOLDS,
  counterexample traces for FAILS) plus warm clause logs, with atomic
  writes, a versioned record format and LRU/GC size bounds;
* :mod:`~repro.cache.resolve` — :class:`CacheResolver`, the
  certification gate: a stored verdict is *never* trusted until it
  re-passes :func:`~repro.engines.certify.certify_invariant` /
  :func:`~repro.engines.certify.certify_cex` against the design
  actually being verified.

Because every hit is re-certified, the cache key does not need to
capture everything that determines a verdict — an imperfect key can
cause a spurious miss (costing a re-proof) but never a wrong verdict.
That is what makes *incremental re-verification* sound: an edited
design changes its design digest, but properties whose COI cones are
untouched keep their cone digest, resolve from cache, and only the
changed-cone properties enter the scheduler.
"""

from .hashing import cone_digest, design_digest, payload_digest
from .store import CacheRecord, ProofStore, atomic_write
from .resolve import CacheResolver

__all__ = [
    "CacheRecord",
    "CacheResolver",
    "ProofStore",
    "atomic_write",
    "cone_digest",
    "design_digest",
    "payload_digest",
]
