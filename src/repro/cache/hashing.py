"""Stable content hashes, unified for the whole repo.

Before this module each layer grew its own ad-hoc hashing: the worker
pool hashed pickle payloads to dedupe design shipping, the random-walk
engine hashed name tuples for seed derivation, and the proof cache
needed design and cone digests.  All of them live here now, with the
stability of each flavour documented:

``payload_digest``
    SHA-256 of raw bytes.  Stable only for the exact byte string —
    pickle payloads are *not* guaranteed stable across Python versions,
    so this flavour is for process-local dedup (the pool's design
    shipping cache), never for on-disk cache keys.

``design_digest``
    SHA-256 of the design's canonical AAG text
    (:func:`~repro.circuit.aiger.write_aag`).  Stable across processes,
    machines and Python versions; two designs with identical logic,
    names and resets collide exactly.  This keys warm clause logs.

``cone_digest``
    SHA-256 of the canonical AAG text of one property's *assumption
    cone*: the COI cone of the property plus every assumable property
    whose support is transitively connected to it (the same
    support-connected fixpoint the JA verifier uses for COI reduction).
    An edit outside the cone leaves the digest unchanged — which is the
    whole basis of incremental re-verification.  The target property's
    name is mixed into the digest so that mutually-assuming properties
    sharing one cone still get distinct keys.  The assumed-name list
    itself is deliberately *not* part of the key: assumption sets are
    re-derived (and re-certified) against the current design on every
    hit, so a key that ignored them stays sound while hitting more.

``joined_digest``
    SHA-256 over NUL-joined string parts, for stable derived values
    (per-property seeds) where field boundaries must not smear.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

from ..circuit.aiger import write_aag
from ..circuit.coi import reduce_to_cone, support_signature
from ..ts.projection import assumption_names
from ..ts.system import TransitionSystem

__all__ = [
    "cone_digest",
    "cone_properties",
    "cone_support",
    "design_digest",
    "joined_digest",
    "payload_digest",
    "text_digest",
]


def payload_digest(payload: bytes) -> str:
    """Hex SHA-256 of ``payload``.  Process-local dedup only (see module doc)."""
    return hashlib.sha256(payload).hexdigest()


def text_digest(text: str) -> str:
    """Hex SHA-256 of UTF-8 encoded ``text``."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def joined_digest(*parts: object) -> bytes:
    """Raw SHA-256 over NUL-joined ``str(part)`` values.

    The NUL separator keeps field boundaries exact: ``("ab", "c")`` and
    ``("a", "bc")`` hash differently.
    """
    return hashlib.sha256("\x00".join(str(p) for p in parts).encode("utf-8")).digest()


def design_digest(ts: TransitionSystem) -> str:
    """Cross-process stable content hash of a whole design."""
    return text_digest(write_aag(ts.aig))


def cone_properties(
    ts: TransitionSystem,
    name: str,
    supports: dict[str, frozenset] | None = None,
) -> list[str]:
    """Assumable properties support-connected to ``name``'s cone.

    The same fixpoint as the JA verifier's COI reduction: start from the
    target's support (latches and inputs in its cone) and repeatedly
    absorb any assumable property whose support overlaps the region.
    Properties outside the closure cannot constrain the projected
    transition relation for ``name``, so they are irrelevant to its
    local verdict — and to its cache key.

    ``supports`` is an optional per-design memo (property name ->
    support signature) shared across calls: a resolve pass over P
    properties would otherwise recompute every signature P times.
    """
    aig = ts.aig
    assumed = assumption_names(ts, name)
    if supports is None:
        supports = {}
    for n in (name, *assumed):
        if n not in supports:
            supports[n] = support_signature(aig, ts.prop_by_name[n].lit)
    region = set(supports[name])
    kept: list[str] = []
    changed = True
    while changed:
        changed = False
        for n in assumed:
            if n in kept or not supports[n] & region:
                continue
            kept.append(n)
            region |= supports[n]
            changed = True
    return kept


def cone_support(
    ts: TransitionSystem,
    name: str,
    kept: Sequence[str] | None = None,
    supports: dict[str, frozenset] | None = None,
) -> frozenset:
    """Latch/input literals inside ``name``'s assumption cone.

    The union of the target's support with every kept assumable
    property's support — the variable universe a cached witness for
    ``name`` is allowed to mention if it is to survive out-of-cone
    edits.  ``supports`` is the same optional memo
    :func:`cone_properties` takes.
    """
    if supports is None:
        supports = {}
    if kept is None:
        kept = cone_properties(ts, name, supports)
    aig = ts.aig
    for n in (name, *kept):
        if n not in supports:
            supports[n] = support_signature(aig, ts.prop_by_name[n].lit)
    region = set(supports[name])
    for n in kept:
        region |= supports[n]
    return frozenset(region)


def cone_digest(
    ts: TransitionSystem,
    name: str,
    kept: Sequence[str] | None = None,
    *,
    reduction=None,
) -> str:
    """Content hash of ``name``'s assumption cone (see module doc).

    ``kept`` may be passed when :func:`cone_properties` was already
    computed, to avoid re-running the fixpoint; ``reduction`` may be
    passed when :func:`~repro.circuit.coi.reduce_to_cone` over
    ``[name, *kept]`` was already computed, to avoid re-running it.
    """
    if reduction is None:
        if kept is None:
            kept = cone_properties(ts, name)
        reduction = reduce_to_cone(ts.aig, [name, *kept])
    # The target name is mixed in because two properties can share one
    # cone (mutually-assuming pairs) yet need distinct verdicts.
    return text_digest(f"{name}\x00{write_aag(reduction.aig)}")
