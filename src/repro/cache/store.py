"""Content-addressed on-disk proof store.

Layout (under the store root)::

    entries/<cone-digest>.json      one certified verdict per property cone
    warm/<design-digest>.clausedb   warm-start clause log per design

Entries are keyed by the property's COI-cone digest
(:func:`~repro.cache.hashing.cone_digest`): the design digest is
recorded *inside* each record (so stats can distinguish exact-design
hits from cone-level hits on an edited design) but deliberately kept
out of the key — that is what lets an unchanged-cone property of an
edited design resolve from cache.

Three robustness rules, enforced here and audited by the
``cache-hygiene`` lint checker:

* **Atomic writes.**  Every file this package writes goes through
  :func:`atomic_write` (temp file + ``os.replace``), so a crashed or
  concurrent writer can never leave a half-written record where a
  reader will find it.
* **Versioned records.**  Every record carries a magic string and a
  format version; anything unreadable, unparseable, or from an unknown
  version is treated as a *miss* (counted under ``corrupt``), never an
  error — a corrupted store degrades to a normal proof.
* **Certification before trust** lives one layer up, in
  :class:`~repro.cache.resolve.CacheResolver`; the store itself only
  promises well-formed records, not true ones.

GC is LRU by file modification time (reads touch their entry), bounded
by ``max_entries`` / ``max_bytes``, and never evicts an entry pinned by
an in-flight resolution in this process.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..ts.system import Clause, TransitionSystem
from ..ts.trace import Trace

RECORD_MAGIC = "repro-proof-cache"
RECORD_VERSION = 1

__all__ = [
    "CacheRecord",
    "ProofStore",
    "RECORD_MAGIC",
    "RECORD_VERSION",
    "atomic_write",
]


def atomic_write(path: str | os.PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory so the final
    rename never crosses a filesystem boundary; readers observe either
    the old content or the new, never a prefix.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent, prefix=f".{target.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _encode_trace(trace: Trace) -> dict:
    return {
        "inputs": [{str(k): v for k, v in frame.items()} for frame in trace.inputs],
        "uninit": {str(k): v for k, v in trace.uninit.items()},
        "property_name": trace.property_name,
    }


def _decode_trace(obj: dict) -> Trace:
    return Trace(
        inputs=[{int(k): bool(v) for k, v in frame.items()} for frame in obj["inputs"]],
        uninit={int(k): bool(v) for k, v in obj.get("uninit", {}).items()},
        property_name=str(obj.get("property_name", "")),
    )


@dataclass
class CacheRecord:
    """One certified verdict: what was proven, for which cone, with what witness."""

    prop: str
    status: str  # "holds" | "fails"
    design: str  # design digest the verdict was produced on
    cone: str  # cone digest (the store key)
    design_name: str = "design"
    local: bool = True
    frames: int = 0
    time_seconds: float = 0.0
    cex_depth: int | None = None
    assumed: list[str] = field(default_factory=list)
    engine: str | None = None
    invariant: list[Clause] | None = None  # HOLDS witness
    trace: Trace | None = None  # FAILS witness
    created: float = 0.0

    def to_json(self) -> str:
        payload = {
            "magic": RECORD_MAGIC,
            "version": RECORD_VERSION,
            "prop": self.prop,
            "status": self.status,
            "design": self.design,
            "cone": self.cone,
            "design_name": self.design_name,
            "local": self.local,
            "frames": self.frames,
            "time_seconds": self.time_seconds,
            "cex_depth": self.cex_depth,
            "assumed": list(self.assumed),
            "engine": self.engine,
            "invariant": (
                None if self.invariant is None else [list(c) for c in self.invariant]
            ),
            "trace": None if self.trace is None else _encode_trace(self.trace),
            "created": self.created,
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CacheRecord":
        obj = json.loads(text)
        if not isinstance(obj, dict) or obj.get("magic") != RECORD_MAGIC:
            raise ValueError("not a proof-cache record")
        if obj.get("version") != RECORD_VERSION:
            raise ValueError(f"unsupported record version {obj.get('version')!r}")
        if obj.get("status") not in ("holds", "fails"):
            raise ValueError(f"bad cached status {obj.get('status')!r}")
        invariant = obj.get("invariant")
        if invariant is not None:
            invariant = [tuple(int(l) for l in clause) for clause in invariant]
        trace = obj.get("trace")
        if trace is not None:
            trace = _decode_trace(trace)
        return cls(
            prop=str(obj["prop"]),
            status=str(obj["status"]),
            design=str(obj["design"]),
            cone=str(obj["cone"]),
            design_name=str(obj.get("design_name", "design")),
            local=bool(obj.get("local", True)),
            frames=int(obj.get("frames", 0)),
            time_seconds=float(obj.get("time_seconds", 0.0)),
            cex_depth=None if obj.get("cex_depth") is None else int(obj["cex_depth"]),
            assumed=[str(n) for n in obj.get("assumed", [])],
            engine=None if obj.get("engine") is None else str(obj["engine"]),
            invariant=invariant,
            trace=trace,
            created=float(obj.get("created", 0.0)),
        )


class ProofStore:
    """Content-addressed store of certified verdicts + warm clause logs."""

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self.root = Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._pinned: set[str] = set()
        self.counters: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "certify_rejects": 0,
            "writes": 0,
            "corrupt": 0,
            "warm_loads": 0,
            "warm_clauses": 0,
            "evicted": 0,
        }

    # ------------------------------------------------------------------
    # Entry records
    # ------------------------------------------------------------------
    @property
    def entries_dir(self) -> Path:
        return self.root / "entries"

    @property
    def warm_dir(self) -> Path:
        return self.root / "warm"

    def entry_path(self, cone: str) -> Path:
        return self.entries_dir / f"{cone}.json"

    def get(self, cone: str) -> CacheRecord | None:
        """Load the record for ``cone``; anything unreadable is a miss."""
        path = self.entry_path(cone)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            record = CacheRecord.from_json(text)
        except (ValueError, KeyError, TypeError):
            self.counters["corrupt"] += 1
            return None
        if record.cone != cone:
            self.counters["corrupt"] += 1
            return None
        try:
            os.utime(path)  # LRU touch: reads refresh eviction age
        except OSError:
            pass
        return record

    def put(self, record: CacheRecord) -> None:
        """Persist ``record`` (atomic) and apply the GC bounds."""
        if not record.created:
            record.created = time.time()
        atomic_write(self.entry_path(record.cone), record.to_json())
        self.counters["writes"] += 1
        if self.max_entries is not None or self.max_bytes is not None:
            self.gc()

    # ------------------------------------------------------------------
    # Pinning (GC must not evict an in-flight entry)
    # ------------------------------------------------------------------
    def pin(self, cone: str) -> None:
        self._pinned.add(cone)

    def unpin(self, cone: str) -> None:
        self._pinned.discard(cone)

    # ------------------------------------------------------------------
    # Warm clause logs
    # ------------------------------------------------------------------
    def warm_path(self, design: str) -> Path:
        return self.warm_dir / f"{design}.clausedb"

    def load_warm(self, design: str, ts: TransitionSystem) -> list[Clause]:
        """Strengthening clauses previously exported for this exact design.

        Clauses are re-validated structurally on load (latch-name match,
        init-state check inside :meth:`ClauseDB.load`); an unreadable or
        mismatched log is simply no warm start.  Soundness does not rest
        on this: seeded clauses are certificate-checked by the engine,
        which retries seedless on :class:`SeedCertificateError`.
        """
        from ..multiprop.clausedb import ClauseDB, ClauseDBFormatError

        path = self.warm_path(design)
        if not path.exists():
            return []
        try:
            db = ClauseDB.load(path, ts)
        except (ClauseDBFormatError, ValueError, OSError):
            self.counters["corrupt"] += 1
            return []
        clauses = db.clauses()
        if clauses:
            self.counters["warm_loads"] += 1
            self.counters["warm_clauses"] += len(clauses)
        return clauses

    def save_warm(self, design: str, ts: TransitionSystem, clauses: list[Clause]) -> int:
        """Merge ``clauses`` into the design's warm log (atomic rewrite)."""
        from ..multiprop.clausedb import ClauseDB, ClauseDBFormatError

        db = ClauseDB(ts)
        path = self.warm_path(design)
        if path.exists():
            try:
                db = ClauseDB.load(path, ts)
            except (ClauseDBFormatError, ValueError, OSError):
                self.counters["corrupt"] += 1
                db = ClauseDB(ts)
        added = db.add_all(clauses)
        if added or not path.exists():
            atomic_write(path, db.dumps())
        return added

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def _entry_files(self) -> list[Path]:
        if not self.entries_dir.is_dir():
            return []
        return [p for p in self.entries_dir.iterdir() if p.suffix == ".json"]

    def _warm_files(self) -> list[Path]:
        if not self.warm_dir.is_dir():
            return []
        return [p for p in self.warm_dir.iterdir() if p.suffix == ".clausedb"]

    def stats(self) -> dict:
        """Disk facts plus this process's runtime counters."""
        entry_files = self._entry_files()
        warm_files = self._warm_files()

        def total(paths: list[Path]) -> int:
            out = 0
            for p in paths:
                try:
                    out += p.stat().st_size
                except OSError:
                    pass
            return out

        return {
            "root": str(self.root),
            "entries": len(entry_files),
            "entry_bytes": total(entry_files),
            "warm_logs": len(warm_files),
            "warm_bytes": total(warm_files),
            **self.counters,
        }

    def gc(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> int:
        """Evict least-recently-used entries beyond the size bounds.

        Pinned entries (in-flight resolutions in this process) are never
        evicted, even when that leaves the store over budget.  Returns
        the number of entries removed.
        """
        max_entries = self.max_entries if max_entries is None else max_entries
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        if max_entries is None and max_bytes is None:
            return 0
        aged = []
        total_bytes = 0
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            aged.append((stat.st_mtime, stat.st_size, path))
            total_bytes += stat.st_size
        aged.sort()  # oldest first
        removed = 0
        count = len(aged)
        for mtime, size, path in aged:
            over_entries = max_entries is not None and count > max_entries
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            if not (over_entries or over_bytes):
                break
            if path.stem in self._pinned:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            count -= 1
            total_bytes -= size
        self.counters["evicted"] += removed
        return removed

    def clear(self) -> int:
        """Remove every entry and warm log.  Returns files removed."""
        removed = 0
        for path in self._entry_files() + self._warm_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
