"""Certification-gated cache resolution.

:class:`CacheResolver` is the only component allowed to turn a stored
record into a reported verdict, and it refuses to do so until the
stored witness re-passes certification *against the design actually
being verified*:

* a HOLDS record must carry an inductive invariant that passes
  :func:`~repro.engines.certify.certify_invariant` under the current
  assumption set;
* a FAILS record must carry a trace that replays under
  :func:`~repro.engines.certify.certify_cex` (including the local-CEX
  side conditions).

A record that fails certification — poisoned store, stale assumption
structure, hash collision, cosmic rays — is counted as a
``certify_reject`` and treated as a miss, so the property simply gets
re-proved.  The cache can therefore never produce a wrong verdict,
only a wasted certification check.

Assumption handling: the stored record remembers which properties were
assumed when the verdict was produced.  On resolution the list is
intersected with the assumptions *currently legal* for the property
(``assumption_names`` on the current design): dropping an assumption
only strengthens the certification obligation, so a record certified
under the intersection is sound to report — while a record that needed
a now-illegal assumption fails certification and degrades to a proof.
"""

from __future__ import annotations

import time

from ..circuit.coi import reduce_to_cone
from ..engines.certify import certify_cex, certify_invariant
from ..engines.result import PropStatus
from ..multiprop.report import PropOutcome
from ..progress import CacheHit, Emit, emit_or_null
from ..ts.projection import assumption_names
from ..ts.system import TransitionSystem
from .hashing import cone_digest, cone_properties, cone_support, design_digest
from .store import CacheRecord, ProofStore

__all__ = ["CacheResolver"]

_STATUS = {"holds": PropStatus.HOLDS, "fails": PropStatus.FAILS}


def _remap_clauses(ts, rts, latch_map, clauses):
    """Translate 1-based latch-index clauses onto a COI reduction.

    Returns ``None`` when any literal falls outside the reduction (or
    outside the design entirely — poisoned records), signalling the
    caller to certify against the full design instead.
    """
    index_by_lit = {latch.lit: i + 1 for i, latch in enumerate(rts.latches)}
    full = ts.latches
    mapped = []
    for clause in clauses:
        out = []
        for lit in clause:
            if not isinstance(lit, int):
                return None
            position = abs(lit) - 1
            if not 0 <= position < len(full):
                return None
            reduced_lit = latch_map.get(full[position].lit)
            if reduced_lit is None:
                return None
            index = index_by_lit[reduced_lit]
            out.append(index if lit > 0 else -index)
        mapped.append(tuple(out))
    return mapped


class CacheResolver:
    """Resolve properties from a :class:`ProofStore`, certification first."""

    def __init__(
        self,
        store: ProofStore,
        mode: str = "readwrite",
        *,
        solver_backend: str | None = None,
    ) -> None:
        if mode not in ("off", "read", "readwrite"):
            raise ValueError(f"bad cache mode {mode!r}")
        self.store = store
        self.mode = mode
        self.solver_backend = solver_backend

    @property
    def readable(self) -> bool:
        return self.mode in ("read", "readwrite")

    @property
    def writable(self) -> bool:
        return self.mode == "readwrite"

    # ------------------------------------------------------------------
    # Lookup side
    # ------------------------------------------------------------------
    def resolve(
        self,
        ts: TransitionSystem,
        order: list[str],
        emit: Emit | None = None,
    ) -> tuple[dict[str, PropOutcome], list[str]]:
        """Split ``order`` into cache-served outcomes and remaining work.

        Returns ``(outcomes, remaining)``: ``outcomes`` maps property
        name to a certified cache-served :class:`PropOutcome` (one
        :class:`CacheHit` emitted per entry), ``remaining`` preserves
        the submission order of everything that must be proved.
        """
        emit = emit_or_null(emit)
        outcomes: dict[str, PropOutcome] = {}
        remaining: list[str] = []
        if not self.readable:
            return outcomes, list(order)
        current_design = design_digest(ts)
        supports: dict[str, frozenset] = {}  # shared support-signature memo
        for name in order:
            outcome = self._resolve_one(ts, name, current_design, emit, supports)
            if outcome is None:
                remaining.append(name)
            else:
                outcomes[name] = outcome
        return outcomes, remaining

    def _resolve_one(
        self,
        ts: TransitionSystem,
        name: str,
        current_design: str,
        emit: Emit,
        supports: dict[str, frozenset],
    ) -> PropOutcome | None:
        kept = cone_properties(ts, name, supports)
        reduction = reduce_to_cone(ts.aig, [name, *kept])
        cone = cone_digest(ts, name, kept, reduction=reduction)
        self.store.pin(cone)  # GC must not race the certification below
        try:
            record = self.store.get(cone)
            if record is None or record.prop != name:
                self.store.counters["misses"] += 1
                return None
            outcome = self._certify(ts, name, record, reduction)
            if outcome is None:
                self.store.counters["certify_rejects"] += 1
                return None
            self.store.counters["hits"] += 1
            emit(
                CacheHit(
                    name=name,
                    status=outcome.status,
                    exact_design=record.design == current_design,
                    frames=outcome.frames,
                )
            )
            return outcome
        finally:
            self.store.unpin(cone)

    def _certify(
        self,
        ts: TransitionSystem,
        name: str,
        record: CacheRecord,
        reduction=None,
    ) -> PropOutcome | None:
        """Re-check the stored witness; ``None`` means reject (re-prove)."""
        status = _STATUS.get(record.status)
        if status is None:
            return None
        start = time.monotonic()
        allowed = set(assumption_names(ts, name))
        assumed = [n for n in record.assumed if n in allowed]
        if status is PropStatus.HOLDS:
            if record.invariant is None:
                return None
            report = self._certify_invariant(
                ts, name, record.invariant, assumed, reduction
            )
            if not report.valid:
                return None
        else:
            if record.trace is None:
                return None
            report = certify_cex(ts, name, record.trace, assumed)
            if not report.valid:
                return None
        return PropOutcome(
            name=name,
            status=status,
            local=bool(assumed) if record.local else False,
            frames=record.frames,
            time_seconds=time.monotonic() - start,
            cex_depth=record.cex_depth,
            assumed=assumed,
            engine="cache",
            invariant=record.invariant,
            cex=record.trace,
        )

    def _certify_invariant(
        self,
        ts: TransitionSystem,
        name: str,
        invariant,
        assumed: list[str],
        reduction,
    ):
        """Certify on the reduced cone when possible, full design otherwise.

        The SAT queries certification runs are linear in the encoded
        design, and on a many-property design each cone is a small slice
        of the whole — so re-certifying against the cone the digest was
        computed from (same latch names, resets and constraints, per
        :func:`~repro.circuit.coi.reduce_to_cone`) is both sound and far
        cheaper.  Clause latch indices are remapped through the
        reduction's latch map; a clause that mentions an out-of-cone
        latch (legacy full-DB invariants) falls back to full-design
        certification.  Assumptions absent from the cone are dropped —
        the support fixpoint guarantees they are variable-disjoint, and
        dropping only strengthens the obligation.
        """
        if reduction is not None:
            rts = TransitionSystem(reduction.aig)
            mapped = _remap_clauses(ts, rts, reduction.latch_map, invariant)
            if mapped is not None:
                kept = [n for n in assumed if n in rts.prop_by_name]
                return certify_invariant(
                    rts, name, mapped, kept, solver_backend=self.solver_backend
                )
        return certify_invariant(
            ts, name, invariant, assumed, solver_backend=self.solver_backend
        )

    # ------------------------------------------------------------------
    # Write-back side
    # ------------------------------------------------------------------
    def record_outcomes(
        self,
        ts: TransitionSystem,
        outcomes: dict[str, PropOutcome],
        design_name: str = "design",
    ) -> int:
        """Persist fresh HOLDS/FAILS verdicts (and warm clauses).

        Cache-served outcomes (``engine == "cache"``) and UNKNOWNs are
        skipped; a HOLDS without an invariant or a FAILS without a
        trace cannot be re-certified later, so they are not cached
        either.  Returns the number of records written.
        """
        if not self.writable:
            return 0
        design = design_digest(ts)
        written = 0
        warm: list = []
        supports: dict[str, frozenset] = {}  # shared support-signature memo
        for name, outcome in outcomes.items():
            if outcome.engine == "cache":
                continue
            kept = cone_properties(ts, name, supports)
            invariant = outcome.invariant
            if outcome.status is PropStatus.HOLDS and invariant is not None:
                status = "holds"
                warm.extend(invariant)
                invariant = self._cone_invariant(ts, name, kept, outcome, supports)
            elif outcome.status is PropStatus.FAILS and outcome.cex is not None:
                status = "fails"
            else:
                continue
            self.store.put(
                CacheRecord(
                    prop=name,
                    status=status,
                    design=design,
                    cone=cone_digest(ts, name, kept),
                    design_name=design_name,
                    local=outcome.local,
                    frames=outcome.frames,
                    time_seconds=outcome.time_seconds,
                    cex_depth=outcome.cex_depth,
                    assumed=list(outcome.assumed),
                    engine=outcome.engine,
                    invariant=invariant,
                    trace=outcome.cex,
                )
            )
            written += 1
        if warm:
            self.store.save_warm(design, ts, warm)
        return written

    def _cone_invariant(self, ts, name, kept, outcome, supports=None) -> list:
        """The invariant restricted to the property's cone, if it certifies.

        The JA clause DB shares strengthening clauses across properties,
        so a fresh HOLDS invariant typically mentions latches far outside
        the property's own cone.  Stored as-is, such an invariant fails
        certification after any out-of-cone edit — exactly the hits the
        cone key exists to provide.  Dropping the out-of-cone clauses
        cannot break consecution of the in-cone ones (their transition
        functions read only in-cone variables), but rather than argue,
        we check: the restricted invariant is re-certified here and the
        full one kept as a fallback if it somehow does not pass.
        """
        invariant = [tuple(c) for c in outcome.invariant]
        region = cone_support(ts, name, kept, supports)
        latches = ts.latches
        restricted = [
            clause
            for clause in invariant
            if all(latches[abs(lit) - 1].lit in region for lit in clause)
        ]
        if restricted == invariant:
            return invariant
        report = certify_invariant(
            ts,
            name,
            restricted,
            list(outcome.assumed),
            solver_backend=self.solver_backend,
        )
        return restricted if report.valid else invariant

    def warm_clauses(self, ts: TransitionSystem) -> list:
        """Warm-start clauses recorded for this exact design (or [])."""
        if not self.readable:
            return []
        return self.store.load_warm(design_digest(ts), ts)
