"""repro.analysis — project-native static analysis for the repro tree.

Generic linters see syntax; this package checks the *protocols* the
codebase actually runs on: that every tuple-tagged message sent across
a process queue has a dispatch arm on the other side, that nothing
unpicklable rides in a cross-process payload, that supervision loops
cannot block forever on a dead peer, that critical sections stay
bookkeeping-only, and that the event/config registries stay closed
under the CLI.  ``repro lint`` (see :mod:`repro.cli`) is the entry
point; CI runs it as a blocking gate.

Layout::

    findings.py    Finding / Severity, fingerprints for baselining
    registry.py    @register_checker, mirrors the strategy registry
    context.py     FileContext / ProjectContext + naming-convention helpers
    checkers/      the built-in domain checkers (register on import)
    baseline.py    analysis_baseline.toml — justified false positives
    runner.py      analyze_paths / analyze_sources, parallel driver
    reporting.py   text and JSON reports

Suppressing a finding, in preference order: fix the code; add an inline
``# repro: ignore[checker-id]`` pragma on (or just above) the line; add
a justified entry to ``analysis_baseline.toml``.  Baseline entries
without a real justification are rejected at load time.

Docstring conventions for checker modules
-----------------------------------------
Checkers are documentation-first — a finding nobody understands gets
suppressed, not fixed.  Every checker module follows these rules:

* the **module docstring** explains the *hazard* (what breaks at
  runtime, where in this codebase it would bite) before the *rule*,
  and ends by enumerating exactly what is flagged and what is
  deliberately excluded;
* the **class docstring's first line** is the one-line rule statement
  shown by ``repro lint --list-checkers`` — imperative mood, under 72
  characters, no trailing period needed;
* **finding messages** state the consequence, not just the pattern
  ("a crashed peer hangs this loop forever", not "get() without
  timeout"), and never contain line numbers or other position-dependent
  data — the baseline fingerprints on the message text;
* helper functions carry one-line docstrings describing their
  *contract* (what maps to what), not their implementation.
"""

from __future__ import annotations

from .baseline import (
    BaselineEntry,
    BaselineError,
    load_baseline,
    parse_baseline,
    render_baseline,
    save_baseline,
    split_baselined,
)
from .context import FileContext, ProjectContext, channel_of, terminal_name
from .findings import Finding, Severity
from .registry import (
    Checker,
    UnknownCheckerError,
    all_checkers,
    available_checkers,
    get_checker,
    register_checker,
    unregister_checker,
)
from .reporting import render_json, render_text
from .runner import AnalysisResult, analyze_paths, analyze_sources, collect_files

__all__ = [
    "AnalysisResult",
    "BaselineEntry",
    "BaselineError",
    "Checker",
    "FileContext",
    "Finding",
    "ProjectContext",
    "Severity",
    "UnknownCheckerError",
    "all_checkers",
    "analyze_paths",
    "analyze_sources",
    "available_checkers",
    "channel_of",
    "collect_files",
    "get_checker",
    "load_baseline",
    "parse_baseline",
    "register_checker",
    "render_baseline",
    "render_json",
    "render_text",
    "save_baseline",
    "split_baselined",
    "terminal_name",
    "unregister_checker",
]
