"""Text and JSON reporters for analysis results.

The text form is the human-facing ``file:line: severity [checker]
message`` stream plus a one-line verdict; the JSON form is the
machine-facing document CI archives (``repro lint --format=json``).
Both render the same :class:`~repro.analysis.runner.AnalysisResult`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import AnalysisResult


def render_text(result: "AnalysisResult") -> str:
    """The human report: findings, stale entries, one-line verdict."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    for entry in result.stale_baseline:
        lines.append(
            f"{entry.file}: warning [stale-baseline] baseline entry for "
            f"[{entry.checker}] no longer matches: {entry.message!r}"
        )
    verdict = "clean" if result.ok else "FAILED"
    lines.append(
        f"{verdict}: {len(result.errors())} error(s), "
        f"{len(result.warnings())} warning(s) in {result.files_analyzed} "
        f"file(s) ({result.baselined} baselined, "
        f"{result.suppressed} suppressed inline)"
    )
    return "\n".join(lines)


def render_json(result: "AnalysisResult") -> str:
    """The machine report (stable key order, newline-terminated)."""
    document = {
        "tool": "repro-lint",
        "ok": result.ok,
        "files_analyzed": result.files_analyzed,
        "checkers": result.checkers,
        "findings": [finding.to_json() for finding in result.findings],
        "counts": {
            "errors": len(result.errors()),
            "warnings": len(result.warnings()),
            "baselined": result.baselined,
            "suppressed": result.suppressed,
            "stale_baseline": len(result.stale_baseline),
        },
        "stale_baseline": [
            {
                "checker": entry.checker,
                "file": entry.file,
                "message": entry.message,
            }
            for entry in result.stale_baseline
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"
