"""Findings: what a checker reports and how findings are identified.

A :class:`Finding` is one diagnostic — checker id, severity, location
and message.  Two identities matter:

* the **location key** (``file:line``) is what reporters print and what
  humans navigate by;
* the **fingerprint** (checker id + file + message, *no line number*)
  is what the baseline matches on, so a finding does not "escape" its
  baseline entry just because unrelated edits shifted it a few lines.

Messages therefore must be stable: checkers never interpolate line
numbers or other position-dependent data into ``message``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding affects the exit status of ``repro lint``."""

    ERROR = "error"  # new occurrences fail the run
    WARNING = "warning"  # reported, never fails the run

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by one checker at one source location."""

    file: str
    line: int
    checker: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)
    column: int = 0

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.checker, self.file, self.message)

    def render(self) -> str:
        """The canonical one-line text form (``file:line: ...``)."""
        return (
            f"{self.file}:{self.line}: {self.severity.value} "
            f"[{self.checker}] {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "checker": self.checker,
            "severity": self.severity.value,
            "message": self.message,
        }
