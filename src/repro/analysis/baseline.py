"""The explicit false-positive baseline (``analysis_baseline.toml``).

A baseline entry acknowledges one finding as a *documented* false
positive: it names the checker, the file, the exact (line-independent)
message, and — mandatorily — a justification.  ``repro lint`` subtracts
baselined findings from its verdict; an entry that no longer matches
anything is reported as *stale* so the baseline can only shrink, never
silently rot.

File format (TOML, read with the stdlib ``tomllib``)::

    [[suppression]]
    checker = "config-hygiene"
    file = "src/repro/session/config.py"
    message = "field 'pool' is not reachable from the CLI"
    justification = "pools are in-process objects; only the API sets them"

:func:`save_baseline` writes the same shape back (used by
``repro lint --write-baseline`` to adopt the current findings wholesale
— every generated entry gets a ``justification = "TODO"`` that a human
must replace, and :func:`load_baseline` rejects empty or TODO
justifications so an unreviewed baseline cannot pass silently).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass

from .findings import Finding


class BaselineError(ValueError):
    """The baseline file is malformed or under-justified."""


@dataclass(frozen=True)
class BaselineEntry:
    """One acknowledged false positive."""

    checker: str
    file: str
    message: str
    justification: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.checker, self.file, self.message)


def parse_baseline(text: str, *, origin: str = "<baseline>") -> list[BaselineEntry]:
    """Parse and validate baseline TOML text."""
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise BaselineError(f"{origin}: invalid TOML: {exc}") from None
    entries: list[BaselineEntry] = []
    for index, raw in enumerate(data.get("suppression", [])):
        if not isinstance(raw, dict):
            raise BaselineError(f"{origin}: suppression #{index} is not a table")
        missing = {"checker", "file", "message", "justification"} - set(raw)
        if missing:
            raise BaselineError(
                f"{origin}: suppression #{index} is missing {sorted(missing)}"
            )
        justification = str(raw["justification"]).strip()
        if not justification or justification.upper() == "TODO":
            raise BaselineError(
                f"{origin}: suppression #{index} "
                f"({raw['checker']} in {raw['file']}) needs a real "
                f"justification, not {justification!r}"
            )
        entries.append(
            BaselineEntry(
                checker=str(raw["checker"]),
                file=str(raw["file"]),
                message=str(raw["message"]),
                justification=justification,
            )
        )
    return entries


def load_baseline(path: str) -> list[BaselineEntry]:
    """Load a baseline file; a missing file is an empty baseline."""
    try:
        with open(path, "rb") as f:
            text = f.read().decode("utf-8")
    except FileNotFoundError:
        return []
    return parse_baseline(text, origin=path)


def _toml_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def render_baseline(findings: list[Finding]) -> str:
    """Baseline TOML adopting ``findings`` (justifications left TODO)."""
    blocks = [
        "# repro lint baseline — every entry is a documented false positive.",
        "# Replace each TODO justification; the loader rejects TODOs.",
    ]
    for finding in sorted(findings):
        blocks.append(
            "\n[[suppression]]\n"
            f'checker = "{_toml_escape(finding.checker)}"\n'
            f'file = "{_toml_escape(finding.file)}"\n'
            f'message = "{_toml_escape(finding.message)}"\n'
            'justification = "TODO"'
        )
    return "\n".join(blocks) + "\n"


def save_baseline(path: str, findings: list[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(render_baseline(findings))


def split_baselined(
    findings: list[Finding], entries: list[BaselineEntry]
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """``(new, baselined, stale)`` partition of findings vs the baseline.

    Duplicate findings with one fingerprint all match one entry (the
    fingerprint is line-independent, so one justified message may occur
    on several lines of the same file).
    """
    by_fingerprint = {entry.fingerprint: entry for entry in entries}
    new: list[Finding] = []
    baselined: list[Finding] = []
    used: set[tuple[str, str, str]] = set()
    for finding in findings:
        entry = by_fingerprint.get(finding.fingerprint)
        if entry is None:
            new.append(finding)
        else:
            baselined.append(finding)
            used.add(entry.fingerprint)
    stale = [e for e in entries if e.fingerprint not in used]
    return new, baselined, stale
