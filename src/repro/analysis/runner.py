"""The analysis driver: collect files, run checkers, apply the baseline.

:func:`analyze_paths` is what ``repro lint`` calls: it expands the
given paths to ``*.py`` files, runs every registered *file-scope*
checker over them — in parallel across files when ``jobs > 1``, one
worker process per chunk of files — then runs the *project-scope*
checkers over the whole set in-process, applies inline suppressions and
the TOML baseline, and returns an :class:`AnalysisResult`.

:func:`analyze_sources` is the in-memory variant the test suite uses to
feed fixture snippets (and mutated copies of real modules) through the
exact same pipeline without touching disk.

A file that fails to parse yields one ``parse-error`` finding instead
of crashing the run — broken source must fail the lint gate, not the
linter.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from .baseline import BaselineEntry, load_baseline, split_baselined
from .context import FileContext, ProjectContext
from .findings import Finding, Severity
from .registry import Checker, all_checkers, get_checker

#: Files per parallel work unit; small enough to balance, large enough
#: that process overhead does not dominate on medium trees.
_CHUNK = 8


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    checkers: list[str] = field(default_factory=list)
    baselined: int = 0
    suppressed: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when nothing new at error severity was found."""
        return not self.errors()


def collect_files(paths: list[str]) -> list[str]:
    """Expand files/directories to a sorted, de-duplicated ``.py`` list."""
    out: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        elif path.endswith(".py") or os.path.isfile(path):
            out.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return sorted(out)


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as f:
        return f.read()


def _parse_error_finding(ctx: FileContext) -> Finding:
    exc = ctx.parse_error
    assert exc is not None
    return Finding(
        file=ctx.path,
        line=exc.lineno or 1,
        checker="parse-error",
        message=f"file does not parse: {exc.msg}",
    )


def _check_one_file(
    ctx: FileContext, checkers: list[Checker]
) -> tuple[list[Finding], int]:
    """``(kept findings, inline-suppressed count)`` for one file."""
    if ctx.parse_error is not None:
        return [_parse_error_finding(ctx)], 0
    kept: list[Finding] = []
    suppressed = 0
    for checker in checkers:
        if checker.scope != "file":
            continue
        for finding in checker.check_file(ctx):
            if ctx.suppressed(finding):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def _worker_check_paths(
    paths: list[str], checker_ids: list[str]
) -> tuple[list[Finding], int]:
    """Process-pool work unit: read, parse and file-check a path chunk.

    Checkers travel as registry ids (the instances need not be
    picklable); each worker re-resolves them against its own registry,
    which the package import populates identically.
    """
    checkers = [get_checker(checker_id) for checker_id in checker_ids]
    findings: list[Finding] = []
    suppressed = 0
    for path in paths:
        ctx = FileContext(path, _read(path))
        kept, skipped = _check_one_file(ctx, checkers)
        findings.extend(kept)
        suppressed += skipped
    return findings, suppressed


def _run_project_checkers(
    project: ProjectContext, checkers: list[Checker]
) -> tuple[list[Finding], int]:
    findings: list[Finding] = []
    suppressed = 0
    for checker in checkers:
        if checker.scope != "project":
            continue
        for finding in checker.check_project(project):
            ctx = (
                project.file(finding.file)
                if finding.file in project.paths
                else None
            )
            if ctx is not None and ctx.suppressed(finding):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def _finish(
    findings: list[Finding],
    suppressed: int,
    *,
    files: int,
    checkers: list[Checker],
    baseline: list[BaselineEntry],
) -> AnalysisResult:
    new, baselined, stale = split_baselined(sorted(findings), baseline)
    return AnalysisResult(
        findings=new,
        files_analyzed=files,
        checkers=[c.id for c in checkers],
        baselined=len(baselined),
        suppressed=suppressed,
        stale_baseline=stale,
    )


def analyze_sources(
    sources: dict[str, str],
    *,
    checkers: list[Checker] | None = None,
    baseline: list[BaselineEntry] | None = None,
) -> AnalysisResult:
    """Run the full pipeline over in-memory ``{path: source}`` pairs."""
    selected = checkers if checkers is not None else all_checkers()
    project = ProjectContext(sources)
    findings: list[Finding] = []
    suppressed = 0
    for ctx in project.files():
        kept, skipped = _check_one_file(ctx, selected)
        findings.extend(kept)
        suppressed += skipped
    project_findings, project_skipped = _run_project_checkers(project, selected)
    findings.extend(project_findings)
    suppressed += project_skipped
    return _finish(
        findings,
        suppressed,
        files=len(project.paths),
        checkers=selected,
        baseline=baseline or [],
    )


def analyze_paths(
    paths: list[str],
    *,
    jobs: int | None = None,
    baseline_path: str | None = None,
    checkers: list[Checker] | None = None,
) -> AnalysisResult:
    """Analyze files/directories on disk (the ``repro lint`` entry).

    ``jobs`` is the file-scope parallelism: ``None`` sizes to the host
    (one process per CPU, capped by the chunk count), ``1`` forces the
    serial path.  Project-scope checkers always run in-process — they
    need the whole file set at once.
    """
    selected = checkers if checkers is not None else all_checkers()
    files = collect_files(paths)
    baseline = load_baseline(baseline_path) if baseline_path else []
    chunks = [files[i : i + _CHUNK] for i in range(0, len(files), _CHUNK)]
    if jobs is None:
        jobs = min(os.cpu_count() or 1, len(chunks)) or 1

    findings: list[Finding] = []
    suppressed = 0
    sources: dict[str, str] = {path: _read(path) for path in files}
    project = ProjectContext(sources)
    if jobs > 1 and len(chunks) > 1:
        checker_ids = [c.id for c in selected if c.scope == "file"]
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            futures = [
                executor.submit(_worker_check_paths, chunk, checker_ids)
                for chunk in chunks
            ]
            for future in futures:
                chunk_findings, chunk_suppressed = future.result()
                findings.extend(chunk_findings)
                suppressed += chunk_suppressed
    else:
        for path in files:
            kept, skipped = _check_one_file(project.file(path), selected)
            findings.extend(kept)
            suppressed += skipped

    project_findings, project_skipped = _run_project_checkers(project, selected)
    findings.extend(project_findings)
    suppressed += project_skipped
    return _finish(
        findings,
        suppressed,
        files=len(files),
        checkers=selected,
        baseline=baseline,
    )
