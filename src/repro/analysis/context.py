"""Parsed-source contexts handed to checkers, plus shared AST helpers.

A :class:`FileContext` owns one file's source, AST and suppression
table; a :class:`ProjectContext` owns the whole analyzed set (parsed
lazily, so a project checker that only reads three files never pays for
the rest).  The helpers at the bottom encode the project's *naming
conventions* for cross-process plumbing — most importantly
:func:`channel_of`, which maps a queue expression to its wire-channel
name (``slot.ctrl`` → ``"ctrl"``, ``self._out_queue`` → ``"out"``) so
the wire-protocol and pickle-safety checkers agree on what they are
looking at.

Suppressions: a ``# repro: ignore[checker-id]`` comment suppresses
matching findings on its own line, or — when the whole line is just the
comment — on the next code line.  ``ignore[*]`` suppresses every
checker; several ids may be comma-separated.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from .findings import Finding, Severity

#: ``# repro: ignore[wire-protocol]`` / ``# repro: ignore[a, b]`` / ``[*]``
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]*)\]")


class FileContext:
    """One file: path, source, AST, line table and suppressions."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_error = exc
        self.suppressions = _parse_suppressions(self.lines)

    def walk(self) -> Iterator[ast.AST]:
        """Every AST node of the file (empty if it failed to parse)."""
        if self.tree is None:
            return iter(())
        return ast.walk(self.tree)

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in self.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def finding(
        self,
        node: ast.AST,
        checker: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """A finding anchored at ``node`` in this file."""
        return Finding(
            file=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            checker=checker,
            message=message,
            severity=severity,
        )

    def suppressed(self, finding: Finding) -> bool:
        """True when an inline pragma covers this finding's line."""
        ids = self.suppressions.get(finding.line)
        return ids is not None and ("*" in ids or finding.checker in ids)


class ProjectContext:
    """The whole analyzed file set, parsed lazily by path."""

    def __init__(self, sources: dict[str, str]) -> None:
        self._sources = dict(sources)
        self._contexts: dict[str, FileContext] = {}

    @property
    def paths(self) -> list[str]:
        return sorted(self._sources)

    def file(self, path: str) -> FileContext:
        ctx = self._contexts.get(path)
        if ctx is None:
            ctx = self._contexts[path] = FileContext(path, self._sources[path])
        return ctx

    def files(self) -> Iterator[FileContext]:
        for path in self.paths:
            yield self.file(path)

    def find(self, suffix: str) -> FileContext | None:
        """The unique file whose path ends with ``suffix`` (or None)."""
        matches = [p for p in self.paths if p.endswith(suffix)]
        return self.file(matches[0]) if len(matches) == 1 else None


def _parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Line number -> suppressed checker ids (1-based, next-line aware)."""
    table: dict[int, set[str]] = {}
    for index, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if not ids:
            continue
        table.setdefault(index, set()).update(ids)
        # A comment-only line covers the next line of actual code.
        if text.strip().startswith("#"):
            table.setdefault(index + 1, set()).update(ids)
    return table


# ----------------------------------------------------------------------
# Naming-convention helpers shared by the concurrency checkers
# ----------------------------------------------------------------------
class QueueBindings:
    """Which queue names a file binds, and to what kind of queue.

    ``thread`` holds terminal names assigned from the stdlib ``queue``
    module (under any import alias), ``mp`` names assigned from any
    other ``Queue``/``SimpleQueue``/``JoinableQueue`` constructor
    (multiprocessing or a context object), and ``bounded`` the subset
    constructed with a positive ``maxsize``.  Purely syntactic, per
    file — good enough because this codebase constructs queues next to
    where it names them.
    """

    _CTORS = ("Queue", "SimpleQueue", "JoinableQueue")

    def __init__(self, ctx: "FileContext") -> None:
        self.thread: set[str] = set()
        self.mp: set[str] = set()
        self.bounded: set[str] = set()
        modules, names = self._queue_module_aliases(ctx)
        for node in ctx.walk():
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            call = getattr(node, "value", None)
            if not isinstance(call, ast.Call) or call_name(call) not in self._CTORS:
                continue
            is_thread = False
            if isinstance(call.func, ast.Name):
                is_thread = call.func.id in names
            elif isinstance(call.func, ast.Attribute) and isinstance(
                call.func.value, ast.Name
            ):
                is_thread = call.func.value.id in modules
            for target in targets:
                name = terminal_name(target)
                if name is None:
                    continue
                (self.thread if is_thread else self.mp).add(name)
                if self._is_bounded(call):
                    self.bounded.add(name)

    @staticmethod
    def _queue_module_aliases(ctx: "FileContext") -> tuple[set[str], set[str]]:
        """``(aliases of the stdlib queue module, names imported from it)``."""
        modules: set[str] = set()
        names: set[str] = set()
        for node in ctx.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "queue":
                        modules.add(alias.asname or "queue")
            elif isinstance(node, ast.ImportFrom) and node.module == "queue":
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return modules, names

    @staticmethod
    def _is_bounded(call: ast.Call) -> bool:
        size: ast.expr | None = call.args[0] if call.args else None
        for kw in call.keywords:
            if kw.arg == "maxsize":
                size = kw.value
        return (
            isinstance(size, ast.Constant)
            and isinstance(size.value, int)
            and size.value > 0
        )


def terminal_name(node: ast.AST) -> str | None:
    """The last name of an attribute chain (``slot.ctrl`` -> ``"ctrl"``).

    Subscripts are looked through (``self._slots[i].ctrl`` -> ``"ctrl"``);
    anything else (calls, literals) has no terminal name.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        return terminal_name(node.value)
    return None


def channel_of(node: ast.AST) -> str | None:
    """The wire-channel name of a queue expression, by naming convention.

    The project's convention: the queue *is* the channel, and its name
    is the channel name with optional ``_queue`` suffix and leading
    underscores — ``ctrl``, ``ctrl_queue``, ``self._out_queue`` and
    ``out_queue`` all denote the channels ``ctrl`` and ``out``.
    """
    name = terminal_name(node)
    if name is None:
        return None
    name = name.lstrip("_")
    if name.endswith("_queue"):
        name = name[: -len("_queue")]
    return name or None


def call_name(node: ast.Call) -> str | None:
    """The called name: ``foo(...)`` -> ``foo``, ``a.b.foo(...)`` -> ``foo``."""
    return terminal_name(node.func)


def is_method_call(node: ast.AST, method: str) -> bool:
    """True for ``<expr>.method(...)`` calls."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == method
    )


def str_const(node: ast.AST) -> str | None:
    """The value of a string-constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
