"""Queue discipline: no unbounded blocking in supervision loops.

The pool, the scheduler and the service all sit in loops that pump
queues.  A ``.get()`` with no timeout inside such a loop waits forever
when the peer has crashed — the exact failure mode the pool's crash
re-dispatch machinery exists to survive.  A ``.join()`` with no timeout
has the same shape during shutdown.  A blocking ``.put()`` on a
*bounded* queue deadlocks the producer when the consumer died with the
queue full.

Flagged, inside any ``for``/``while`` body:

* ``<q>.get()`` / ``<q>.get(block=True)`` with no ``timeout=`` — the
  loop cannot observe a dead peer (``get_nowait`` and any form carrying
  a timeout are fine);
* ``<x>.join()`` with no argument and no ``timeout=`` (string
  receivers are excluded: ``", ".join(...)`` is not a join);
* ``<x>.wait()`` with no timeout on event/condition-ish receivers.

Flagged anywhere:

* ``.put(...)`` without ``timeout=`` or ``block=False`` on a queue this
  file constructed with a nonzero ``maxsize`` — bounded queues demand
  explicit back-pressure handling.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext, QueueBindings, is_method_call, terminal_name
from ..findings import Finding
from ..registry import Checker, register_checker


def _has_timeout(node: ast.Call) -> bool:
    return any(kw.arg == "timeout" for kw in node.keywords)


def _nonblocking(node: ast.Call) -> bool:
    for kw in node.keywords:
        if (
            kw.arg == "block"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
        ):
            return True
    return False


def _positional_timeout(node: ast.Call) -> bool:
    # Queue.get(block, timeout) / Process.join(timeout): any second
    # positional on get, any first positional on join.
    return len(node.args) >= 2


def _loop_bodies(ctx: FileContext) -> Iterable[ast.AST]:
    for node in ctx.walk():
        if isinstance(node, (ast.While, ast.For)):
            for stmt in node.body:
                yield stmt


@register_checker("queue-discipline")
class QueueDisciplineChecker(Checker):
    """Supervision loops must time out; bounded puts must back-pressure."""

    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        bounded = QueueBindings(ctx).bounded

        in_loop: set[int] = set()
        for stmt in _loop_bodies(ctx):
            for node in ast.walk(stmt):
                in_loop.add(id(node))

        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            if id(node) in in_loop:
                finding = self._check_loop_call(ctx, node)
                if finding is not None:
                    yield finding
            if is_method_call(node, "put"):
                receiver = terminal_name(node.func.value)
                if (
                    receiver in bounded
                    and not _has_timeout(node)
                    and not _nonblocking(node)
                ):
                    yield ctx.finding(
                        node,
                        self.id,
                        f"blocking .put() on bounded queue "
                        f"{receiver.lstrip('_')!r} without timeout= or "
                        f"block=False; a dead consumer deadlocks this "
                        f"producer",
                    )

    def _check_loop_call(self, ctx: FileContext, node: ast.Call) -> Finding | None:
        if _has_timeout(node) or _nonblocking(node) or _positional_timeout(node):
            return None
        if is_method_call(node, "get") and not node.args:
            return ctx.finding(
                node,
                self.id,
                "blocking .get() with no timeout inside a loop; a crashed "
                "peer hangs this loop forever",
            )
        if is_method_call(node, "join") and not node.args:
            receiver = node.func.value
            if isinstance(receiver, ast.Constant):
                return None  # ", ".join(...) — string, not a process
            return ctx.finding(
                node,
                self.id,
                "blocking .join() with no timeout inside a loop; a wedged "
                "peer hangs shutdown forever",
            )
        if is_method_call(node, "wait") and not node.args:
            return ctx.finding(
                node,
                self.id,
                "blocking .wait() with no timeout inside a loop; a lost "
                "notify hangs this loop forever",
            )
        return None
