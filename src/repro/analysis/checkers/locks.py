"""Blocking-while-locked: no slow calls inside ``with <lock>:`` bodies.

The service keeps its dispatcher honest by doing only bookkeeping under
``self._lock``; a queue ``.get()``, a ``.join()``, a ``sleep()`` or a
solver call inside the critical section would stall every other thread
touching the service — and, worse, can deadlock against a peer that
needs the same lock to make the awaited event happen.

Lock-ish context managers are recognised by construction
(``threading.Lock()`` / ``RLock`` / ``Condition`` / semaphores assigned
to an attribute), by name (a terminal name containing ``lock``), or by
the ``<value>.get_lock()`` idiom on shared ctypes.

Inside such a ``with`` body the checker flags calls named ``get``,
``put``, ``join``, ``wait``, ``acquire``, ``result``, ``solve`` or
``sleep``.  The one deliberate exception is the condition-variable
idiom — ``with self._cond: self._cond.wait(...)`` — where the blocking
receiver *is* the lock being held: that is how conditions are meant to
be used, and it is excluded by comparing the receiver expression
against the ``with`` item.  ``dict.get(key)`` lookups (positional
arguments) and ``*_nowait`` variants are not blocking and not flagged,
and neither is ``.put()`` on an *unbounded thread-local* queue (plain
``queue.Queue()`` with no maxsize) — that put is pure bookkeeping and
holding a lock across it is fine.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import (
    FileContext,
    QueueBindings,
    call_name,
    is_method_call,
    terminal_name,
)
from ..findings import Finding
from ..registry import Checker, register_checker

_LOCK_CTORS = ("Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore")
_BLOCKING_METHODS = ("get", "put", "join", "wait", "acquire", "result", "solve")


def _lockish_names(ctx: FileContext) -> set[str]:
    """Terminal names bound to lock constructions in this file."""
    names: set[str] = set()
    for node in ctx.walk():
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        if call_name(node.value) not in _LOCK_CTORS:
            continue
        for target in node.targets:
            name = terminal_name(target)
            if name is not None:
                names.add(name)
    return names


def _is_lockish(item: ast.withitem, known: set[str]) -> bool:
    expr = item.context_expr
    if is_method_call(expr, "get_lock"):
        return True
    name = terminal_name(expr)
    if name is None:
        return False
    return name in known or "lock" in name.lower()


def _same_expr(a: ast.expr, b: ast.expr) -> bool:
    return ast.dump(a) == ast.dump(b)


@register_checker("blocking-while-locked")
class BlockingWhileLockedChecker(Checker):
    """Critical sections must stay bookkeeping-only."""

    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        known = _lockish_names(ctx)
        bindings = QueueBindings(ctx)
        for node in ctx.walk():
            if not isinstance(node, ast.With):
                continue
            lock_items = [i for i in node.items if _is_lockish(i, known)]
            if not lock_items:
                continue
            lock_label = (
                terminal_name(lock_items[0].context_expr) or "lock"
            ).lstrip("_")
            for stmt in node.body:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    finding = self._check_call(
                        ctx, call, lock_items, lock_label, bindings
                    )
                    if finding is not None:
                        yield finding

    def _check_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        lock_items: list[ast.withitem],
        lock_label: str,
        bindings: QueueBindings,
    ) -> Finding | None:
        name = call_name(call)
        if name == "sleep":
            return ctx.finding(
                call,
                self.id,
                f"sleep() while holding {lock_label!r} stalls every "
                f"thread contending for it",
            )
        if not isinstance(call.func, ast.Attribute):
            return None
        if name not in _BLOCKING_METHODS:
            return None
        receiver = call.func.value
        # Condition idiom: waiting on the very lock being held is the
        # intended use of Condition objects.
        if any(_same_expr(receiver, item.context_expr) for item in lock_items):
            return None
        if name == "get" and call.args:
            return None  # dict.get(key[, default]) — a lookup, not a wait
        if name == "join" and isinstance(receiver, ast.Constant):
            return None  # ", ".join(...) — string, not a process
        if name == "put":
            target = terminal_name(receiver)
            if target in bindings.thread and target not in bindings.bounded:
                return None  # unbounded thread queue: put never blocks
        return ctx.finding(
            call,
            self.id,
            f"potentially blocking .{name}() while holding "
            f"{lock_label!r}; move the slow call outside the critical "
            f"section",
        )
