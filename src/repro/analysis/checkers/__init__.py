"""Built-in checkers; importing this package registers all of them.

Each module registers its checkers via :func:`@register_checker
<repro.analysis.registry.register_checker>` at import time, exactly as
verification strategies register with the session registry.  Add a new
checker by dropping a module here and importing it below.
"""

from __future__ import annotations

from . import (
    cache_hygiene,
    hygiene,
    locks,
    net_protocol,
    pickle_safety,
    queue_discipline,
    wire_protocol,
)

__all__ = [
    "cache_hygiene",
    "hygiene",
    "locks",
    "net_protocol",
    "pickle_safety",
    "queue_discipline",
    "wire_protocol",
]
