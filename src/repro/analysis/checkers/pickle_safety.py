"""Pickle safety of cross-process queue payloads.

Everything that crosses a ``multiprocessing`` queue is pickled in the
sender and unpickled in the child.  A lambda, a function defined inside
the enclosing function, an open file handle, a lock/condition, or a
``Manager`` object in the payload raises ``PicklingError`` (or the
``multiprocessing`` "can only be shared through inheritance"
``RuntimeError``) at ``.put()`` time — typically inside the pool's
dispatch path, where the traceback points nowhere near the offending
object.

The checker flags those payload shapes on ``.put()`` calls against
*cross-process* queues.  Which queues are cross-process is decided per
file:

* a queue constructed from the stdlib ``queue`` module (``queue.Queue``
  under any import alias, or an imported ``Queue`` name from ``queue``)
  is thread-local — never flagged;
* a queue constructed via ``multiprocessing`` / a context object
  (``ctx.Queue()``, ``mp.SimpleQueue()``, ``JoinableQueue()``) is
  cross-process;
* otherwise the project naming convention decides: receivers whose
  :func:`channel_of` name is a known wire channel-ish name (contains
  ``ctrl``, ``out`` or ``queue``) are assumed cross-process, because
  that is what those names mean in this codebase.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import (
    FileContext,
    QueueBindings,
    call_name,
    channel_of,
    is_method_call,
    terminal_name,
)
from ..findings import Finding
from ..registry import Checker, register_checker

_LOCK_CTORS = ("Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event")
_CHANNELISH = ("ctrl", "out", "queue")


def _is_cross_process(receiver: ast.expr, bindings: QueueBindings) -> bool:
    name = terminal_name(receiver)
    if name is None:
        return False
    if name in bindings.thread:
        return False
    if name in bindings.mp:
        return True
    channel = channel_of(receiver) or ""
    stripped = name.lstrip("_")
    return any(
        marker in candidate
        for marker in _CHANNELISH
        for candidate in (channel, stripped)
    )


def _local_hazards(func: ast.AST) -> dict[str, str]:
    """Names bound (one level deep) to unpicklable things in ``func``."""
    hazards: dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            hazards[node.name] = (
                f"function {node.name!r} defined in the enclosing scope "
                f"(closures do not pickle)"
            )
        if not isinstance(node, ast.Assign):
            continue
        label = _hazard_of_expr(node.value)
        if label is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                hazards[target.id] = f"{target.id!r} is bound to {label}"
    return hazards


def _hazard_of_expr(node: ast.expr) -> str | None:
    if isinstance(node, ast.Lambda):
        return "a lambda (not picklable)"
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name == "open":
            return "an open file handle (not picklable)"
        if name in _LOCK_CTORS:
            return (
                f"a {name} (synchronization primitives cannot cross "
                f"process queues)"
            )
        if name == "Manager":
            return "a Manager (share its proxies, never the manager itself)"
    return None


@register_checker("pickle-safety")
class PickleSafetyChecker(Checker):
    """No lambdas, closures, locks or handles in cross-process payloads."""

    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        bindings = QueueBindings(ctx)
        module_hazards = _local_hazards(ctx.tree) if ctx.tree else {}
        # Module-level defs are picklable by reference; only *nested*
        # functions and hazardous local bindings matter.
        module_level_defs = {
            node.name
            for node in (ctx.tree.body if ctx.tree else [])
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        for func in ctx.functions():
            hazards = dict(module_hazards)
            hazards.update(_local_hazards(func))
            for name in module_level_defs:
                hazards.pop(name, None)
            for node in ast.walk(func):
                if not is_method_call(node, "put") or not node.args:
                    continue
                if not _is_cross_process(node.func.value, bindings):
                    continue
                yield from self._check_payload(ctx, node, hazards)

    def _check_payload(
        self,
        ctx: FileContext,
        put_call: ast.Call,
        hazards: dict[str, str],
    ) -> Iterable[Finding]:
        seen: set[str] = set()
        for arg in put_call.args:
            for node in ast.walk(arg):
                message: str | None = None
                if isinstance(node, ast.Lambda):
                    message = (
                        "cross-process payload contains a lambda, which "
                        "cannot be pickled"
                    )
                elif isinstance(node, ast.Call):
                    label = _hazard_of_expr(node)
                    if label is not None:
                        message = f"cross-process payload contains {label}"
                elif isinstance(node, ast.Name) and node.id in hazards:
                    message = (
                        f"cross-process payload references {hazards[node.id]}"
                    )
                if message is not None and message not in seen:
                    seen.add(message)
                    yield ctx.finding(put_call, self.id, message)
