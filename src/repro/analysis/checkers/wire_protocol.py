"""Wire-protocol exhaustiveness: every sent tag has a dispatch arm.

The cross-process plumbing (:mod:`repro.parallel.pool` /
:mod:`repro.parallel.worker` / :mod:`repro.parallel.engine`) speaks
tuple-tagged messages: ``slot.ctrl.put(("job", run_id, job))`` on the
sending side, ``if kind == "job": ...`` on the receiving side.  Nothing
type-checks that pairing — a tag typo, a new message kind without a
dispatch arm, or a dispatch arm for a message nobody sends all fail
only at runtime, in a child process, as a hang or a dropped message.

This checker proves the pairing statically, over the whole analyzed
file set:

* **send sites** are ``<queue>.put((<str-constant>, ...))`` calls; the
  channel is the queue's conventional name (:func:`channel_of`:
  ``slot.ctrl`` → ``ctrl``, ``out_queue`` → ``out``);
* **dispatch sites** are string comparisons against a *message tag
  variable* — a name bound from ``<queue>.get(...)`` /
  ``get_nowait()`` / ``next_message()`` (the pool's out-stream
  accessor, by convention channel ``out``), its ``[0]`` subscript, or a
  variable assigned from that subscript.  Message variables propagate
  one call hop, so ``message = pool.next_message(); self._dispatch(message)``
  marks ``_dispatch``'s parameter as carrying ``out`` messages.

Findings, per channel:

* a tag sent but matched by no dispatch arm (the message would fall
  through the receiver loop — or worse, hit a catch-all that unpacks
  it as something else);
* a dispatch arm whose tag no send site produces (dead protocol arm,
  usually a typo on one of the two sides);
* a channel carrying tagged sends with no dispatcher found at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Iterable

from ..context import (
    FileContext,
    ProjectContext,
    call_name,
    channel_of,
    is_method_call,
    str_const,
    terminal_name,
)
from ..findings import Finding
from ..registry import Checker, register_checker

#: ``WorkerPool.next_message`` re-streams the pool's single output
#: queue; by project convention its results are ``out``-channel messages.
NEXT_MESSAGE_CHANNEL = "out"

#: Call names whose result is a wire message (when called without
#: positional arguments, which excludes ``dict.get(key)``).
_RECEIVE_CALLS = ("get", "get_nowait")


@dataclass
class _Site:
    ctx: FileContext
    node: ast.AST


@dataclass
class _Protocol:
    """Everything observed about one channel across the project."""

    sends: dict[str, list[_Site]] = field(default_factory=dict)
    handles: dict[str, list[_Site]] = field(default_factory=dict)
    dispatchers: int = 0


def _message_channel_of_call(node: ast.Call) -> str | None:
    """The channel whose message this call returns, or None."""
    name = call_name(node)
    if name == "next_message":
        return NEXT_MESSAGE_CHANNEL
    if name in _RECEIVE_CALLS and not node.args and isinstance(node.func, ast.Attribute):
        return channel_of(node.func.value)
    return None


def _assign_pairs(node: ast.Assign | ast.AnnAssign) -> list[tuple[ast.expr, ast.expr]]:
    """``(target, value)`` pairs, unzipping parallel tuple assignments."""
    if isinstance(node, ast.AnnAssign):
        return [(node.target, node.value)] if node.value is not None else []
    pairs: list[tuple[ast.expr, ast.expr]] = []
    for target in node.targets:
        if (
            isinstance(target, ast.Tuple)
            and isinstance(node.value, ast.Tuple)
            and len(target.elts) == len(node.value.elts)
        ):
            pairs.extend(zip(target.elts, node.value.elts))
        else:
            pairs.append((target, node.value))
    return pairs


def _is_tag_read(node: ast.expr, message_vars: dict[str, str]) -> str | None:
    """Channel when ``node`` is ``<message>[0]``, else None."""
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id in message_vars
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == 0
    ):
        return message_vars[node.value.id]
    return None


class _FunctionScan:
    """Message/tag variables and dispatch comparisons of one function."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.message_vars: dict[str, str] = {}  # name -> channel
        self.tag_vars: dict[str, str] = {}  # name -> channel
        self.handled: list[tuple[str, str, ast.AST]] = []  # (channel, tag, node)

    def seed_param(self, param: str, channel: str) -> None:
        self.message_vars.setdefault(param, channel)

    def scan(self) -> None:
        # Two passes so a tag variable assigned after its first textual
        # use (rare, but legal) still resolves.
        for _ in range(2):
            for node in ast.walk(self.func):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    for target, value in _assign_pairs(node):
                        if not isinstance(target, ast.Name):
                            continue
                        if isinstance(value, ast.Call):
                            channel = _message_channel_of_call(value)
                            if channel is not None:
                                self.message_vars.setdefault(target.id, channel)
                            continue
                        channel = _is_tag_read(value, self.message_vars)
                        if channel is not None:
                            self.tag_vars.setdefault(target.id, channel)
        for node in ast.walk(self.func):
            if isinstance(node, ast.Compare):
                self._scan_compare(node)

    def _channel_of_compared(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name) and node.id in self.tag_vars:
            return self.tag_vars[node.id]
        return _is_tag_read(node, self.message_vars)

    def _scan_compare(self, node: ast.Compare) -> None:
        channel = self._channel_of_compared(node.left)
        if channel is None or len(node.ops) != 1:
            return
        op = node.ops[0]
        comparator = node.comparators[0]
        if isinstance(op, (ast.Eq, ast.NotEq)):
            tag = str_const(comparator)
            if tag is not None:
                self.handled.append((channel, tag, node))
        elif isinstance(op, (ast.In, ast.NotIn)) and isinstance(
            comparator, (ast.Tuple, ast.List, ast.Set)
        ):
            for element in comparator.elts:
                tag = str_const(element)
                if tag is not None:
                    self.handled.append((channel, tag, node))


def _scan_module(ctx: FileContext) -> tuple[list[tuple[str, str, _Site]], list[_FunctionScan]]:
    """``(send sites, per-function scans)`` for one parsed module.

    Message variables propagate one call hop inside the module: a call
    ``f(msg)`` (or ``self._f(msg)``) whose argument is a known message
    variable seeds the parameter of the same-named local function.
    """
    sends: list[tuple[str, str, _Site]] = []
    for node in ctx.walk():
        if not is_method_call(node, "put") or not node.args:
            continue
        payload = node.args[0]
        if not isinstance(payload, ast.Tuple) or not payload.elts:
            continue
        tag = str_const(payload.elts[0])
        if tag is None:
            continue
        channel = channel_of(node.func.value)
        if channel is not None:
            sends.append((channel, tag, _Site(ctx, node)))

    scans = {func: _FunctionScan(func) for func in ctx.functions()}
    by_name: dict[str, list[_FunctionScan]] = {}
    for func, scan in scans.items():
        by_name.setdefault(func.name, []).append(scan)
    for scan in scans.values():
        scan.scan()
    # One-hop propagation into same-module callees, then rescan.
    for scan in scans.values():
        for node in ast.walk(scan.func):
            if not isinstance(node, ast.Call):
                continue
            callee = terminal_name(node.func)
            if callee is None or callee not in by_name:
                continue
            offset = 1 if isinstance(node.func, ast.Attribute) else 0
            for index, arg in enumerate(node.args):
                if not (
                    isinstance(arg, ast.Name) and arg.id in scan.message_vars
                ):
                    continue
                for target in by_name[callee]:
                    params = target.func.args.args
                    param_index = index + offset
                    if param_index < len(params):
                        target.seed_param(
                            params[param_index].arg,
                            scan.message_vars[arg.id],
                        )
    for scan in scans.values():
        scan.handled.clear()
        scan.scan()
    return sends, list(scans.values())


@register_checker("wire-protocol")
class WireProtocolChecker(Checker):
    """Every tuple-tagged queue message must have a matching dispatch arm."""

    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        protocols: dict[str, _Protocol] = {}
        for ctx in project.files():
            if ctx.tree is None:
                continue
            sends, scans = _scan_module(ctx)
            for channel, tag, site in sends:
                proto = protocols.setdefault(channel, _Protocol())
                proto.sends.setdefault(tag, []).append(site)
            for scan in scans:
                channels_here = set()
                for channel, tag, node in scan.handled:
                    proto = protocols.setdefault(channel, _Protocol())
                    proto.handles.setdefault(tag, []).append(_Site(ctx, node))
                    channels_here.add(channel)
                for channel in channels_here:
                    protocols[channel].dispatchers += 1

        for channel in sorted(protocols):
            proto = protocols[channel]
            if not proto.sends:
                # Comparisons with no sends anywhere and no send sites on
                # the channel at all: not a wire protocol we can prove
                # anything about (likely an unrelated [0] == "..." match).
                continue
            if not proto.dispatchers:
                first = min(
                    (s for sites in proto.sends.values() for s in sites),
                    key=lambda s: s.node.lineno,
                )
                yield first.ctx.finding(
                    first.node,
                    self.id,
                    f"channel {channel!r} carries tagged messages but no "
                    f"dispatcher reads it anywhere in the analyzed files",
                )
                continue
            for tag in sorted(set(proto.sends) - set(proto.handles)):
                site = proto.sends[tag][0]
                yield site.ctx.finding(
                    site.node,
                    self.id,
                    f"wire tag {tag!r} sent on channel {channel!r} has no "
                    f"dispatch arm on the receiving side",
                )
            for tag in sorted(set(proto.handles) - set(proto.sends)):
                site = proto.handles[tag][0]
                yield site.ctx.finding(
                    site.node,
                    self.id,
                    f"dispatch arm for tag {tag!r} on channel {channel!r} "
                    f"matches no send site (dead arm or tag typo)",
                )
