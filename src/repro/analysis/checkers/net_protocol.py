"""Wire-boundary hygiene for the remote service (``repro/net``).

One project-scope checker, ``net-protocol``, keeping the two
declarative registries of the HTTP front end in lock-step with the
code they describe:

*Event codec exhaustiveness.*  Every ``ProgressEvent`` subclass
declared in ``progress.py`` must appear in the ``EVENT_TYPES`` literal
of ``net/codec.py`` — an event without a codec entry streams to remote
clients as an opaque blob, silently (``encode_event`` falls back rather
than failing the job).  The reverse holds too: a codec entry naming a
class that is no longer a ``ProgressEvent`` subclass is a stale row
that would shadow a real kind.

*Route/handler pairing.*  Every ``Route(method, pattern, handler)`` row
of the ``ROUTES`` literal in ``net/server.py`` must have a matching
``_handle_<handler>`` coroutine on ``VerificationServer`` (a missing
one is a guaranteed ``AttributeError`` at request time), and every
``_handle_*`` method must be reachable through some route (an
unreferenced handler is dead endpoint code that tests exercise or —
worse — don't).

Like the other registry checkers, this one locates its subject modules
by path suffix and stays inert when the analyzed set does not include
them, so linting a fixture tree fabricates nothing.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext, ProjectContext, terminal_name
from ..findings import Finding
from ..registry import Checker, register_checker


def _registry_literal(
    ctx: FileContext, name: str
) -> tuple[ast.AST, list[ast.expr]] | None:
    """The ``name = (...)`` / ``name: T = (...)`` tuple literal, if any."""
    for node in ctx.walk():
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in targets
        ):
            continue
        if isinstance(value, (ast.Tuple, ast.List)):
            return node, list(value.elts)
    return None


def _event_classes(ctx: FileContext) -> dict[str, ast.ClassDef]:
    return {
        node.name: node
        for node in ctx.walk()
        if isinstance(node, ast.ClassDef)
        and any(terminal_name(base) == "ProgressEvent" for base in node.bases)
    }


@register_checker("net-protocol")
class NetProtocolChecker(Checker):
    """Codec entries and HTTP routes must match the code they index."""

    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        yield from self._check_codec(project)
        yield from self._check_routes(project)

    # ------------------------------------------------------------------
    # EVENT_TYPES <-> ProgressEvent subclasses
    # ------------------------------------------------------------------
    def _check_codec(self, project: ProjectContext) -> Iterable[Finding]:
        codec_ctx = project.find("net/codec.py")
        progress_ctx = project.find("repro/progress.py") or project.find(
            "progress.py"
        )
        if (
            codec_ctx is None
            or codec_ctx.tree is None
            or progress_ctx is None
            or progress_ctx.tree is None
        ):
            return
        registry = _registry_literal(codec_ctx, "EVENT_TYPES")
        events = _event_classes(progress_ctx)
        if registry is None:
            if events:
                yield codec_ctx.finding(
                    codec_ctx.tree,
                    self.id,
                    "net/codec.py has no EVENT_TYPES tuple literal; the "
                    "event codec registry cannot be checked (or used)",
                )
            return
        anchor, elements = registry
        registered: dict[str, ast.expr] = {}
        for element in elements:
            name = terminal_name(element)
            if name is not None:
                registered[name] = element
        for name, node in sorted(events.items()):
            if name not in registered:
                yield codec_ctx.finding(
                    anchor,
                    self.id,
                    f"ProgressEvent subclass {name!r} has no codec entry "
                    f"in EVENT_TYPES; it would cross the wire as an "
                    f"opaque blob",
                )
        for name, element in sorted(registered.items()):
            if name not in events:
                yield codec_ctx.finding(
                    element,
                    self.id,
                    f"EVENT_TYPES names {name!r}, which is not a "
                    f"ProgressEvent subclass in progress.py (stale "
                    f"codec entry)",
                )

    # ------------------------------------------------------------------
    # ROUTES <-> _handle_* methods
    # ------------------------------------------------------------------
    def _check_routes(self, project: ProjectContext) -> Iterable[Finding]:
        server_ctx = project.find("net/server.py")
        if server_ctx is None or server_ctx.tree is None:
            return
        registry = _registry_literal(server_ctx, "ROUTES")
        server_class = next(
            (
                node
                for node in server_ctx.walk()
                if isinstance(node, ast.ClassDef)
                and node.name == "VerificationServer"
            ),
            None,
        )
        if registry is None or server_class is None:
            if registry is not None or server_class is not None:
                yield server_ctx.finding(
                    server_ctx.tree,
                    self.id,
                    "net/server.py must declare both the ROUTES tuple "
                    "literal and the VerificationServer class",
                )
            return
        _, elements = registry
        handlers: dict[str, ast.AST] = {
            stmt.name[len("_handle_"):]: stmt
            for stmt in server_class.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name.startswith("_handle_")
        }
        routed: set[str] = set()
        for element in elements:
            if not (
                isinstance(element, ast.Call)
                and terminal_name(element.func) == "Route"
            ):
                yield server_ctx.finding(
                    element,
                    self.id,
                    "ROUTES entries must be literal Route(...) calls so "
                    "the table stays statically checkable",
                )
                continue
            strings = [
                arg.value
                for arg in element.args
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            ]
            if len(strings) != 3:
                yield server_ctx.finding(
                    element,
                    self.id,
                    "Route(...) needs three string literals "
                    "(method, pattern, handler)",
                )
                continue
            method, pattern, handler = strings
            routed.add(handler)
            if handler not in handlers:
                yield server_ctx.finding(
                    element,
                    self.id,
                    f"route {method} {pattern} names handler "
                    f"{handler!r} but VerificationServer defines no "
                    f"_handle_{handler}",
                )
        for handler, node in sorted(handlers.items()):
            if handler not in routed:
                yield server_ctx.finding(
                    node,
                    self.id,
                    f"_handle_{handler} is not reachable from any ROUTES "
                    f"entry (dead endpoint)",
                )
