"""Registry hygiene: events all render, config fields all reachable.

Two project-scope checkers that keep the repo's registries honest:

``event-hygiene``
    Every ``ProgressEvent`` subclass declared in ``progress.py`` must
    (a) have a rendering arm — an ``isinstance`` test naming it inside
    ``format_event`` — and (b) be exported via ``__all__``.  A new
    event class that misses either is silently invisible: the CLI
    renderer falls through to the generic branch and API users cannot
    import the type.

``config-hygiene``
    Every field of ``VerificationConfig`` must be (a) *consumed*
    somewhere outside its defining module (a dead field is a knob wired
    to nothing), (b) *reachable* from the CLI (mentioned by name in
    ``cli.py`` — as a keyword argument or a string key), and (c), for
    numeric fields, *validated* in a ``validate`` method (an
    unvalidated conflict budget propagates as a cryptic backend error
    three layers down).

Both checkers locate their subject modules by path suffix and stay
inert when the analyzed file set does not include them (so linting a
fixture directory does not fabricate findings about missing modules).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext, ProjectContext, call_name, str_const, terminal_name
from ..findings import Finding
from ..registry import Checker, register_checker


def _class_defs(ctx: FileContext) -> Iterable[ast.ClassDef]:
    for node in ctx.walk():
        if isinstance(node, ast.ClassDef):
            yield node


def _dunder_all(ctx: FileContext) -> set[str]:
    names: set[str] = set()
    for node in ctx.walk():
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "__all__"
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                for element in node.value.elts:
                    value = str_const(element)
                    if value is not None:
                        names.add(value)
    return names


@register_checker("event-hygiene")
class EventHygieneChecker(Checker):
    """ProgressEvent subclasses must be rendered and exported."""

    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        ctx = project.find("repro/progress.py") or project.find("progress.py")
        if ctx is None or ctx.tree is None:
            return

        events = [
            node
            for node in _class_defs(ctx)
            if any(terminal_name(base) == "ProgressEvent" for base in node.bases)
        ]
        if not events:
            return

        rendered: set[str] = set()
        for node in ctx.walk():
            if not (
                isinstance(node, ast.Call) and call_name(node) == "isinstance"
            ):
                continue
            if len(node.args) != 2:
                continue
            spec = node.args[1]
            candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
            for candidate in candidates:
                name = terminal_name(candidate)
                if name is not None:
                    rendered.add(name)

        exported = _dunder_all(ctx)
        for event in events:
            if event.name not in rendered:
                yield ctx.finding(
                    event,
                    self.id,
                    f"ProgressEvent subclass {event.name!r} has no "
                    f"isinstance rendering arm in this module; the CLI "
                    f"renderer will fall through to the generic branch",
                )
            if exported and event.name not in exported:
                yield ctx.finding(
                    event,
                    self.id,
                    f"ProgressEvent subclass {event.name!r} is missing "
                    f"from __all__",
                )


def _config_fields(node: ast.ClassDef) -> list[tuple[str, str]]:
    """``(field name, annotation source)`` for each dataclass field."""
    fields: list[tuple[str, str]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.append((stmt.target.id, ast.unparse(stmt.annotation)))
    return fields


def _names_used(ctx: FileContext) -> set[str]:
    """Attribute names, keyword names and string constants in a file."""
    used: set[str] = set()
    for node in ctx.walk():
        if isinstance(node, ast.Attribute):
            used.add(node.attr)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            used.add(node.arg)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)
    return used


@register_checker("config-hygiene")
class ConfigHygieneChecker(Checker):
    """VerificationConfig fields must be consumed, CLI-reachable, validated."""

    scope = "project"

    CONFIG_CLASS = "VerificationConfig"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        config_ctx = project.find("session/config.py")
        if config_ctx is None or config_ctx.tree is None:
            return
        config_class = next(
            (
                node
                for node in _class_defs(config_ctx)
                if node.name == self.CONFIG_CLASS
            ),
            None,
        )
        if config_class is None:
            return
        fields = _config_fields(config_class)

        validated: set[str] = set()
        for stmt in ast.walk(config_class):
            if (
                isinstance(stmt, ast.FunctionDef)
                and "validate" in stmt.name
            ):
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                    ):
                        validated.add(node.attr)
                    value = str_const(node)
                    if value is not None:
                        validated.add(value)

        cli_ctx = project.find("repro/cli.py") or project.find("cli.py")
        cli_names = _names_used(cli_ctx) if cli_ctx is not None else None

        consumed: set[str] = set()
        for ctx in project.files():
            if ctx is config_ctx or ctx.tree is None:
                continue
            consumed |= _names_used(ctx)

        for name, annotation in fields:
            anchor = config_class
            if len(project.paths) > 1 and name not in consumed:
                yield config_ctx.finding(
                    anchor,
                    self.id,
                    f"config field {name!r} is never consumed outside its "
                    f"defining module (dead knob)",
                )
            if cli_names is not None and name not in cli_names:
                yield config_ctx.finding(
                    anchor,
                    self.id,
                    f"config field {name!r} is not reachable from the CLI "
                    f"(no flag, keyword or key names it in cli.py)",
                )
            numeric = ("int" in annotation or "float" in annotation)
            if numeric and name not in validated:
                yield config_ctx.finding(
                    anchor,
                    self.id,
                    f"numeric config field {name!r} is never checked in "
                    f"validate(); bad values surface as backend errors "
                    f"layers away",
                )
