"""Robustness rules of the cross-run proof cache.

The cache's safety story (see :mod:`repro.cache`) rests on two
mechanical disciplines that are easy to erode one refactor at a time:

1. **Atomic writes.**  Every file the ``repro/cache`` package writes
   must go through :func:`repro.cache.store.atomic_write` (temp file +
   ``os.replace``).  A direct write-mode ``open()`` or
   ``Path.write_text`` anywhere else in the package can leave a
   half-written record where a concurrent reader — or the next process
   after a crash — will find it.

2. **Certification before trust.**  Any module that reads records back
   out of a proof store *and* turns them into reported outcomes must
   re-certify the stored witnesses against the current design: a HOLDS
   witness via ``certify_invariant``, a FAILS witness via
   ``certify_cex``.  A consumer that serves a cached verdict without
   both calls would turn a corrupted (or adversarial) store into a
   wrong verdict instead of a wasted re-proof.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import (
    FileContext,
    ProjectContext,
    call_name,
    str_const,
    terminal_name,
)
from ..findings import Finding
from ..registry import Checker, register_checker

_WRITE_MODE_CHARS = set("wax+")
_WRITE_METHODS = ("write_text", "write_bytes")
_ATOMIC_FUNC = "atomic_write"


def _open_write_mode(node: ast.Call) -> str | None:
    """The write-ish mode string of an ``open``/``fdopen`` call, or None."""
    if call_name(node) not in ("open", "fdopen"):
        return None
    mode_node: ast.AST | None = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return None  # default mode is "r"
    mode = str_const(mode_node)
    if mode is not None and _WRITE_MODE_CHARS & set(mode):
        return mode
    return None


def _write_site(node: ast.AST) -> str | None:
    """A human label for a file-writing call, or None."""
    if not isinstance(node, ast.Call):
        return None
    mode = _open_write_mode(node)
    if mode is not None:
        return f"{call_name(node)}(..., {mode!r})"
    name = call_name(node)
    if name in _WRITE_METHODS and isinstance(node.func, ast.Attribute):
        return f".{name}(...)"
    return None


def _enclosing_functions(tree: ast.Module) -> dict[ast.AST, str]:
    """Map every AST node to the name of its innermost enclosing function."""
    owner: dict[ast.AST, str] = {}

    def visit(node: ast.AST, current: str | None) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            current = node.name
        for child in ast.iter_child_nodes(node):
            if current is not None:
                owner[child] = current
            visit(child, current)

    visit(tree, None)
    return owner


def _called_names(ctx: FileContext) -> set[str]:
    return {
        name
        for node in ctx.walk()
        if isinstance(node, ast.Call)
        for name in (call_name(node),)
        if name is not None
    }


@register_checker("cache-hygiene")
class CacheHygieneChecker(Checker):
    """Atomic writes and certification-before-trust in the proof cache."""

    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        for ctx in project.files():
            if "/cache/" in ctx.path.replace("\\", "/"):
                yield from self._check_atomic_writes(ctx)
            yield from self._check_certification(ctx)

    # ------------------------------------------------------------------
    # Rule 1: all writes inside repro/cache go through atomic_write
    # ------------------------------------------------------------------
    def _check_atomic_writes(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        owner = _enclosing_functions(ctx.tree)
        for node in ctx.walk():
            label = _write_site(node)
            if label is None:
                continue
            if owner.get(node) == _ATOMIC_FUNC:
                continue
            yield ctx.finding(
                node,
                self.id,
                f"cache package writes {label} outside atomic_write(); "
                f"route the write through atomic_write so readers never "
                f"observe a torn record",
            )

    # ------------------------------------------------------------------
    # Rule 2: store readers that report outcomes must re-certify
    # ------------------------------------------------------------------
    def _check_certification(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        reads_store = False
        outcome_call: ast.Call | None = None
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "get" and isinstance(node.func, ast.Attribute):
                receiver = (terminal_name(node.func.value) or "").lstrip("_")
                # "store" / "proof_store" are proof stores by project
                # convention; plural dicts of stores ("stores") are not.
                if receiver == "store" or receiver.endswith("_store"):
                    reads_store = True
            elif name == "from_json":
                receiver = terminal_name(node.func) or ""
                if isinstance(node.func, ast.Attribute) and (
                    terminal_name(node.func.value) or ""
                ).endswith("CacheRecord"):
                    reads_store = True
            elif name == "PropOutcome" and outcome_call is None:
                outcome_call = node
        if not reads_store or outcome_call is None:
            return
        called = _called_names(ctx)
        for required, witness in (
            ("certify_invariant", "a cached HOLDS invariant"),
            ("certify_cex", "a cached FAILS trace"),
        ):
            if required not in called:
                yield ctx.finding(
                    outcome_call,
                    self.id,
                    f"module reads proof-store records and builds "
                    f"PropOutcome but never calls {required}(); {witness} "
                    f"must be re-certified against the current design "
                    f"before it is reported",
                )
