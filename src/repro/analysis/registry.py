"""The checker registry: how analysis passes plug into ``repro lint``.

Mirrors the strategy (:mod:`repro.session.registry`) and SAT-backend
(:mod:`repro.sat.backend`) registries: a checker registers under an id
with :func:`register_checker`, the runner resolves ids through
:func:`get_checker` and enumerates them with :func:`available_checkers`,
so adding a project-specific rule never requires touching the runner or
the CLI:

    from repro.analysis import register_checker, Checker, Finding

    @register_checker("no-print")
    class NoPrint(Checker):
        \"\"\"Flag print() calls in library code.\"\"\"

        def check_file(self, ctx):
            for node in ctx.walk():
                ...
                yield ctx.finding(node, self.id, "print() in library code")

Checkers come in two scopes:

* ``scope = "file"`` — :meth:`Checker.check_file` sees one parsed file
  at a time (these run in parallel across files);
* ``scope = "project"`` — :meth:`Checker.check_project` sees the whole
  analyzed file set at once, for cross-file invariants like
  wire-protocol exhaustiveness (a tag *sent* in ``pool.py`` must be
  *dispatched* in ``worker.py``).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import FileContext, ProjectContext


class UnknownCheckerError(KeyError):
    """Lookup of a checker id that is not registered."""

    def __init__(self, name: str, available: list) -> None:
        super().__init__(name)
        self.name = name
        self.available = available

    def __str__(self) -> str:
        return (
            f"unknown checker {self.name!r}; "
            f"available: {', '.join(self.available) or '(none)'}"
        )


class Checker:
    """Base class of every analysis pass (see the registry docstring)."""

    #: Registry id, set by :func:`register_checker`.
    id: str = ""
    #: ``"file"`` (per-file, parallelizable) or ``"project"`` (cross-file).
    scope: str = "file"

    def check_file(self, ctx: "FileContext") -> Iterable[Finding]:
        """Findings for one file (``scope == "file"`` checkers)."""
        return ()

    def check_project(self, project: "ProjectContext") -> Iterable[Finding]:
        """Findings over the whole file set (``scope == "project"``)."""
        return ()


_REGISTRY: dict[str, Checker] = {}


def register_checker(
    name: str, *, replace: bool = False
) -> Callable[[type], type]:
    """Class decorator: instantiate and register a checker under ``name``.

    The decorated class is instantiated once (checkers are stateless —
    per-run state belongs in the contexts they are handed) and its
    ``id`` attribute is set to the registered name.  Re-registration
    raises unless ``replace=True``, exactly like the strategy registry.
    """

    def decorator(cls: type) -> type:
        if name in _REGISTRY and not replace:
            raise ValueError(f"checker {name!r} is already registered")
        instance = cls()
        instance.id = name
        _REGISTRY[name] = instance
        return cls

    return decorator


def unregister_checker(name: str) -> None:
    """Remove a registered checker (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_checker(name: str) -> Checker:
    """Resolve a checker id; raises :class:`UnknownCheckerError`."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownCheckerError(name, sorted(_REGISTRY)) from None


def all_checkers() -> list[Checker]:
    """Every registered checker, id order (built-ins auto-import)."""
    _load_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def available_checkers() -> dict[str, str]:
    """Registered ids mapped to one-line descriptions.

    The description is the first line of the checker's docstring —
    exactly what ``python -m repro lint --list-checkers`` prints.
    """
    _load_builtins()
    out: dict[str, str] = {}
    for name in sorted(_REGISTRY):
        doc = (type(_REGISTRY[name]).__doc__ or "").strip()
        out[name] = doc.splitlines()[0] if doc else ""
    return out


def _load_builtins() -> None:
    """Import the built-in checker modules (registers on import)."""
    from . import checkers  # noqa: F401  (import-for-effect)
