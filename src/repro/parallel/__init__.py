"""Process-parallel JA-verification (paper Section 11, for real).

The paper argues that JA-verification parallelizes naturally — one
processor per property, no mandatory clause exchange, local proofs
getting *easier* as the assumption pool grows.  This package executes
that claim instead of simulating it:

* :mod:`repro.parallel.engine` — a pool of worker **processes**, each
  running per-property local IC3 proofs (the same
  :class:`~repro.multiprop.ja.JAVerifier` machinery the sequential
  driver uses), with verdict aggregation, a total-time watchdog, and
  early cancellation of still-queued jobs once the run-level verdict is
  decided;
* :mod:`repro.parallel.sharing` — a manager-mediated shared clause
  exchange: workers publish the strengthening clauses of each local
  proof and import everything published so far before starting the next
  property (the paper's *optional* exchange mode, Section 11);
* :mod:`repro.parallel.worker` — the worker process entry point and the
  picklable job/result messages; every worker forwards its typed
  :class:`~repro.progress.ProgressEvent` stream to the parent, which
  merges the streams into the session's event channel.

The legacy list-scheduling simulator
(:mod:`repro.multiprop.parallel`) survives as the engine's
``schedule_only`` mode: it still measures standalone local proofs
sequentially and reports projected makespans, which is useful on
machines with fewer cores than properties.

Entry points: ``Session(design, strategy="parallel-ja", workers=4)`` or
:func:`parallel_ja_verify` directly.
"""

from .engine import ParallelOptions, parallel_ja_verify
from .sharing import ClauseExchange, ExchangeManager, start_exchange

__all__ = [
    "ParallelOptions",
    "parallel_ja_verify",
    "ClauseExchange",
    "ExchangeManager",
    "start_exchange",
]
