"""Process-parallel JA-verification (paper Section 11, for real).

The paper argues that JA-verification parallelizes naturally — one
processor per property, no mandatory clause exchange, local proofs
getting *easier* as the assumption pool grows.  This package executes
that claim instead of simulating it:

* :mod:`repro.parallel.engine` — a pool of worker **processes**, each
  running per-property local IC3 proofs (the same
  :class:`~repro.multiprop.ja.JAVerifier` machinery the sequential
  driver uses), with verdict aggregation, a total-time watchdog, and
  early cancellation of still-queued jobs once the run-level verdict is
  decided.  Its :class:`SeatScheduler` is the fair multiplexer behind
  :class:`repro.service.VerificationService`: any number of jobs'
  property backlogs interleaved onto one pool's seats;
* :mod:`repro.parallel.pool` — a persistent :class:`WorkerPool` that
  outlives a single run: workers cache pickled designs by content hash,
  accept successive job batches, and are shared across
  ``Session.run()`` calls (``VerificationConfig.pool`` or the
  module-level :func:`default_pool`), amortizing the per-run O(design)
  setup cost of server-style workloads;
* :mod:`repro.parallel.exchange` — the cluster-sharded clause exchange:
  one append-only clause log per property cluster, each hosted in its
  own manager process, with clause traffic routed only between
  same-shard subscribers (``exchange_shards=N`` or ``"auto"``);
* :mod:`repro.parallel.sharing` — the legacy single-manager exchange,
  kept for direct callers;
* :mod:`repro.parallel.worker` — the pool worker entry point and the
  picklable job/result messages; every worker forwards its typed
  :class:`~repro.progress.ProgressEvent` stream to the parent, which
  merges the streams into the session's event channel.

The legacy list-scheduling simulator
(:mod:`repro.multiprop.parallel`) survives as the engine's
``schedule_only`` mode: it still measures standalone local proofs
sequentially and reports projected makespans, which is useful on
machines with fewer cores than properties.

Entry points: ``Session(design, strategy="parallel-ja", workers=4)`` or
:func:`parallel_ja_verify` directly.
"""

from .engine import ParallelOptions, PooledJob, SeatScheduler, parallel_ja_verify
from .portfolio import (
    ENGINE_NAMES,
    PortfolioController,
    admit_portfolio,
    parse_engine_slate,
    portfolio_verify,
)
from .exchange import (
    ExchangeShard,
    ShardedExchange,
    ShardHost,
    ShardMap,
    build_shard_map,
    pack_clauses,
    shard_clusters,
    start_sharded_exchange,
    unpack_clauses,
)
from .pool import (
    WorkerPool,
    default_pool,
    shutdown_all_pools,
    shutdown_default_pool,
)
from .sharing import ClauseExchange, ExchangeManager, start_exchange
from .stats import PoolStats, SeatStats

__all__ = [
    "ParallelOptions",
    "parallel_ja_verify",
    "PooledJob",
    "SeatScheduler",
    "ENGINE_NAMES",
    "PortfolioController",
    "admit_portfolio",
    "parse_engine_slate",
    "portfolio_verify",
    "PoolStats",
    "SeatStats",
    "WorkerPool",
    "default_pool",
    "shutdown_default_pool",
    "shutdown_all_pools",
    "ExchangeShard",
    "ShardedExchange",
    "ShardHost",
    "ShardMap",
    "build_shard_map",
    "shard_clusters",
    "start_sharded_exchange",
    "pack_clauses",
    "unpack_clauses",
    "ClauseExchange",
    "ExchangeManager",
    "start_exchange",
]
