"""The live clause exchange shared by parallel JA workers.

Section 11 of the paper notes that workers proving different properties
*may* (but need not) exchange strengthening clauses.  The sequential
driver realizes exchange implicitly — one clauseDB, properties checked
one after another.  With real worker processes the clauseDB must live
outside any single worker, so it is hosted in a
:class:`multiprocessing.managers.BaseManager` server process and
accessed through proxies.

The server keeps an append-only, deduplicated clause log.  Workers
``fetch`` with a cursor (the length of the log they have already seen)
and ``publish`` the invariant clauses of each finished local proof;
because the log is append-only, a fetch never misses a clause published
before its cursor position and the cursor protocol needs no locking
beyond what the manager already serializes.

Semantic validation (does the clause hold at the initial states? is it
in range?) stays *worker-side* in :class:`~repro.multiprop.clausedb.ClauseDB`:
the server would need the transition system for that, and shipping it
into the manager process buys nothing — every consumer re-validates on
import anyway.
"""

from __future__ import annotations

from multiprocessing.managers import BaseManager
from collections.abc import Iterable

Clause = tuple[int, ...]


class ClauseExchange:
    """Append-only deduplicated clause log (runs in the manager process).

    All methods are invoked through manager proxies; the manager
    serializes calls, so no explicit locking is needed.
    """

    def __init__(self) -> None:
        self._log: list[Clause] = []
        self._seen = set()
        self._published = 0  # publish() calls, including all-duplicate ones

    def publish(self, clauses: Iterable[Iterable[int]]) -> int:
        """Append the new clauses (duplicates dropped); returns #new."""
        added = 0
        for clause in clauses:
            normalized = tuple(sorted((int(l) for l in clause), key=abs))
            if not normalized or normalized in self._seen:
                continue
            self._seen.add(normalized)
            self._log.append(normalized)
            added += 1
        self._published += 1
        return added

    def fetch(self, cursor: int) -> tuple[list[Clause], int]:
        """Clauses appended at or after ``cursor``, plus the new cursor."""
        if cursor < 0:
            raise ValueError(f"cursor must be non-negative, got {cursor}")
        return self._log[cursor:], len(self._log)

    def size(self) -> int:
        return len(self._log)

    def stats(self) -> dict:
        return {"clauses": len(self._log), "publishes": self._published}


class ExchangeManager(BaseManager):
    """Manager hosting one :class:`ClauseExchange` per parallel run."""


ExchangeManager.register("ClauseExchange", ClauseExchange)


def start_exchange(ctx=None):
    """Start a manager process and return ``(manager, exchange_proxy)``.

    The caller owns the manager and must ``shutdown()`` it; the proxy is
    picklable and can be handed to worker processes.
    """
    manager = ExchangeManager(ctx=ctx)
    manager.start()
    return manager, manager.ClauseExchange()
