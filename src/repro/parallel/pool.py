"""A persistent, reusable pool of JA-verification worker processes.

The PR-2 engine spawned worker processes per run and shipped the
pickled design to each as a :class:`multiprocessing.Process` argument —
an O(design) setup cost on *every* ``Session.run()``, which dominates
server-style workloads that verify many small batches against the same
design.  :class:`WorkerPool` removes that cost:

* **Workers outlive runs.**  The pool spawns its processes once
  (lazily, on the first run) and keeps them polling their private
  control queues; successive runs reuse them via :meth:`begin_run`.
* **Designs ship once.**  The parent pickles a design exactly once per
  content hash (``stats["design_pickles"]``, memoized by object
  identity so repeat runs do not even re-hash) and each worker caches
  the unpickled :class:`~repro.ts.system.TransitionSystem` by the same
  hash — the second run on a design sends only the hash.
* **Runs are isolated.**  Every run gets a fresh run id; job, result
  and event messages are all tagged with it, workers rebuild their
  per-run clause databases on every ``begin_run``, and the parent
  discards any straggler message from an earlier run — no clause or
  verdict leakage between runs.
* **Crashed workers are replaced between runs.**  Mid-run, a crash is
  handled by the engine's bounded re-dispatch exactly as before;
  :meth:`ensure_workers` (called by the engine at the start of every
  run) respawns dead slots so the next run starts at full strength
  (``stats["workers_replaced"]``).

Queueing discipline: jobs flow through **per-worker queues** with the
scheduling done parent-side (the engine assigns the next backlog job
to whichever worker reports idle), not through one shared task queue.
A shared queue load-balances for free but is fragile against exactly
the failure this pool must survive: a worker killed while blocked in
``Queue.get`` dies *holding the queue's reader lock*, deadlocking every
sibling.  With private queues a dead worker poisons only its own
channel, which is discarded when :meth:`ensure_workers` replaces the
seat — and the parent always knows exactly which job a dead worker
held, so crash attribution needs no claim protocol.

Cancellation is a shared *epoch* (a :class:`multiprocessing.Value`
holding the highest cancelled run id) rather than a per-run event,
because synchronization primitives cannot be shipped through queues to
already-running processes: cancelling run ``r`` raises the epoch to
``r``, and a worker declines (reports ``cancelled``) any assigned job
whose run id is at or below the epoch.  Run ids increase monotonically,
so old cancellations never affect new runs.

Run protocol: **seat leasing, not exclusive ownership.**  The PR-4
pool allowed exactly one batch at a time (``begin_run`` raised on
concurrency), which blocked the server regime where many jobs share
one pool.  The primitive is now :meth:`open_run` — any number of runs
may be open concurrently, each identified by its monotonically
increasing run id; the scheduler that drives them (the engine's
``SeatScheduler``, shared with :class:`repro.service.VerificationService`)
leases idle seats job-by-job via :meth:`assign` and routes the single
output queue's run-tagged messages itself.  Because one process may
not have two consumers of that queue, a scheduler must take the
message lease (:meth:`acquire_messages`) first; the legacy exclusive
protocol (:meth:`begin_run` / :meth:`get` / :meth:`end_run`) survives
as a thin shim over ``open_run`` that refuses to start while any other
run is open.

Cancellation is per run: :meth:`cancel_run` raises the shared epoch (a
:class:`multiprocessing.Value` holding a run id below which every job
is declined) when the target is the *oldest* open run — run ids are
monotonic, so that never touches a newer run — and falls back to
explicit ``("cancel", run_id)`` control messages otherwise.  Workers
decline (report ``cancelled``) any assigned job of a cancelled run.

Use :func:`default_pool` for the module-level shared pool
(``VerificationConfig(pool=default_pool())``), or construct pools
explicitly and pass them around; a pool is a context manager, every
live pool is shut down at interpreter exit (an ``atexit`` hook walks a
weak registry, so no seat process ever outlives the interpreter), and
:meth:`shutdown` is idempotent.  The engine still creates a private
single-run pool when no pool is supplied, preserving the original
per-run semantics.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import queue as queue_mod
import time
import weakref
from collections import OrderedDict

from ..cache.hashing import payload_digest
from ..ts.system import TransitionSystem

#: Designs kept per cache (parent payloads and each worker's unpickled
#: copies), LRU-evicted beyond this.  Both sides apply the same policy
#: to the same per-worker message stream, so the parent always knows
#: exactly which hashes a worker still holds.
DESIGN_CACHE_SIZE = 8

#: Every live pool, weakly held, so interpreter exit can sweep seat
#: processes even for pools the caller forgot to shut down.
_live_pools: "weakref.WeakSet" = weakref.WeakSet()


def _lru_touch(cache: "OrderedDict", key, value) -> None:
    """Insert/refresh ``key`` and evict the stalest beyond the cap."""
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > DESIGN_CACHE_SIZE:
        cache.popitem(last=False)


class _Slot:
    """One worker seat: its process, control queue and design cache map."""

    __slots__ = ("process", "ctrl", "designs")

    def __init__(self, process, ctrl) -> None:
        self.process = process
        self.ctrl = ctrl
        # Content hashes this worker holds, mirroring the worker's own
        # LRU (same keys, same order, same cap).
        self.designs: "OrderedDict" = OrderedDict()


class _OpenRun:
    """Parent-side record of one open run (for late seat attachment)."""

    __slots__ = ("ts", "settings", "exchange")

    def __init__(self, ts, settings, exchange) -> None:
        self.ts = ts
        self.settings = settings
        self.exchange = exchange


class WorkerPool:
    """A persistent process pool shared across verification runs."""

    def __init__(
        self,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        resolved = workers if workers is not None else os.cpu_count() or 1
        if resolved < 1:
            raise ValueError(f"workers must be >= 1, got {resolved}")
        self.workers = resolved
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self.context = multiprocessing.get_context(start_method)
        self._out_queue = self.context.Queue()
        # Highest cancelled run id; workers decline jobs at or below it.
        self._cancel_epoch = self.context.Value("q", -1)
        self._stop = self.context.Event()
        self._slots: list[_Slot] = []
        # content hash -> pickled payload (LRU, DESIGN_CACHE_SIZE deep)
        self._pickled: "OrderedDict[str, bytes]" = OrderedDict()
        self._hash_memo: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._run_ids = itertools.count()
        self._open: dict[int, _OpenRun] = {}
        self._cancelled_runs: set = set()
        self._active: int | None = None
        self._consumer: object | None = None  # message-lease holder
        self._closed = False
        _live_pools.add(self)
        self.stats = {
            "runs": 0,
            "design_pickles": 0,
            "designs_cached": 0,
            "workers_spawned": 0,
            "workers_replaced": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _spawn(self, worker_id: int) -> _Slot:
        # Late import so crash-injection tests can monkeypatch the
        # module attribute before the pool forks its workers.
        from . import worker as worker_mod

        ctrl = self.context.Queue()
        process = self.context.Process(
            target=worker_mod.pool_worker_main,
            args=(
                worker_id,
                ctrl,
                self._out_queue,
                self._cancel_epoch,
                self._stop,
            ),
            name=f"repro-pool-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self.stats["workers_spawned"] += 1
        return _Slot(process, ctrl)

    def ensure_workers(self) -> tuple[list[int], list[int]]:
        """Bring the pool to full strength; ``(new_ids, replaced_ids)``.

        Called by the engine at the start of every run: missing seats
        are filled, and a seat whose process died (crash in a previous
        run) gets a fresh process — with a fresh control queue and an
        empty design cache, since whatever the dead worker held is gone.
        Service-mode schedulers do NOT use this blanket respawn: a
        crashed seat's respawn timing is governed by the scheduler's
        per-seat backoff, through :meth:`respawn_workers`.
        """
        replaced = self.respawn_workers(range(len(self._slots)))
        started = self.start_missing_workers()
        return started, replaced

    def start_missing_workers(self) -> list[int]:
        """Spawn seats that have never been started; ids, no respawns.

        The service-mode admission path: brings a fresh pool to
        strength without touching dead seats, whose (possibly
        backoff-delayed) respawn belongs to the scheduler.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is shut down")
        started: list[int] = []
        while len(self._slots) < self.workers:
            worker_id = len(self._slots)
            self._slots.append(self._spawn(worker_id))
            started.append(worker_id)
        return started

    def respawn_workers(self, worker_ids) -> list[int]:
        """Respawn exactly the given seats, where dead; respawned ids.

        Seats still alive (or never spawned) are left untouched, so a
        backoff-aware scheduler can revive precisely the seats whose
        delay has elapsed — and is only ever charged for those
        (``stats["workers_replaced"]``).
        """
        if self._closed:
            raise RuntimeError("WorkerPool is shut down")
        fresh: list[int] = []
        for worker_id in sorted(set(worker_ids)):
            if not 0 <= worker_id < len(self._slots):
                continue
            if self._slots[worker_id].process.is_alive():
                continue
            self._slots[worker_id] = self._spawn(worker_id)
            self.stats["workers_replaced"] += 1
            fresh.append(worker_id)
        return fresh

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._active = None
        self._open.clear()
        self._cancelled_runs.clear()
        self._consumer = None
        self._stop.set()
        for slot in self._slots:
            try:
                slot.ctrl.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for slot in self._slots:
            slot.process.join(timeout=timeout)
            if slot.process.is_alive():  # pragma: no cover - last resort
                slot.process.terminate()
                slot.process.join(timeout=5.0)
        for q in [self._out_queue] + [slot.ctrl for slot in self._slots]:
            q.cancel_join_thread()
            q.close()

    # ------------------------------------------------------------------
    # Design shipping
    # ------------------------------------------------------------------
    def _design_digest(self, ts: TransitionSystem) -> str:
        """Content hash of ``ts``; guarantees the payload is cached.

        The identity memo means a design object reused across runs is
        never re-pickled, which is what ``stats["design_pickles"]``
        counts; a *different* object with identical content re-pickles
        to hash it but still hits the workers' caches.  A design whose
        payload was LRU-evicted (more than :data:`DESIGN_CACHE_SIZE`
        designs in rotation) is re-pickled on its next use — a bounded
        cache, not a leak, for servers cycling through many designs.
        """
        try:
            digest = self._hash_memo.get(ts)
        except TypeError:  # unhashable/unweakrefable design
            digest = None
        if digest is not None and digest in self._pickled:
            self._pickled.move_to_end(digest)
            return digest
        payload = pickle.dumps(ts, protocol=pickle.HIGHEST_PROTOCOL)
        self.stats["design_pickles"] += 1
        digest = payload_digest(payload)
        if digest not in self._pickled:
            self.stats["designs_cached"] += 1
        _lru_touch(self._pickled, digest, payload)
        try:
            self._hash_memo[ts] = digest
        except TypeError:  # pragma: no cover - exotic design classes
            pass
        return digest

    # ------------------------------------------------------------------
    # Message lease
    # ------------------------------------------------------------------
    def acquire_messages(self, owner: object) -> None:
        """Claim the pool's single output-message stream for ``owner``.

        The pool has one output queue; two consumers would steal each
        other's messages, so whoever pumps :meth:`next_message` (a
        ``SeatScheduler``, usually inside a
        :class:`~repro.service.VerificationService`) must hold this
        lease.  Re-acquiring by the same owner is a no-op; a second
        owner is refused — attach to the service instead of running the
        engine directly on its pool.
        """
        if self._consumer is not None and self._consumer is not owner:
            raise RuntimeError(
                "pool messages are already being consumed by another "
                "scheduler (is this pool attached to a running "
                "VerificationService?)"
            )
        self._consumer = owner

    def release_messages(self, owner: object) -> None:
        """Give up the message lease (no-op when ``owner`` lacks it)."""
        if self._consumer is owner:
            self._consumer = None

    # ------------------------------------------------------------------
    # Run protocol — seat leasing (many runs may be open at once)
    # ------------------------------------------------------------------
    @property
    def open_runs(self) -> list[int]:
        """Ids of runs currently open, oldest first."""
        return sorted(self._open)

    def open_run(self, ts, settings, exchange=None) -> int:
        """Open a run: ship the design + settings to every live worker.

        Returns the run id.  Each worker acknowledges its setup with a
        ``ready`` message (surfaced through :meth:`next_message`);
        because setup and job messages share the worker's FIFO control
        queue, a worker can never see a job before the run's design and
        settings.  Any number of runs may be open concurrently — their
        jobs are interleaved onto seats by whoever holds the message
        lease — but an *exclusive* legacy run (:meth:`begin_run`)
        blocks new opens until it ends.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is shut down")
        if self._active is not None:
            raise RuntimeError(
                f"run {self._active} is still active on this pool"
            )
        if not self._slots:
            self.ensure_workers()
        run_id = next(self._run_ids)
        self._open[run_id] = _OpenRun(ts, settings, exchange)
        for worker_id, slot in enumerate(self._slots):
            if slot.process.is_alive():
                self.attach_worker(run_id, worker_id)
        self.stats["runs"] += 1
        return run_id

    def attach_worker(self, run_id: int, worker_id: int) -> None:
        """Ship an open run's setup to one seat (late join/respawn).

        Used by schedulers that revive crashed seats mid-flight: the
        fresh process knows nothing, so every open run's design and
        settings must be re-shipped before it can serve their jobs.
        """
        run = self._open[run_id]
        digest = self._design_digest(run.ts)
        payload = self._pickled[digest]
        slot = self._slots[worker_id]
        body = None if digest in slot.designs else payload
        slot.ctrl.put(
            ("run", run_id, digest, body, run.settings, run.exchange)
        )
        _lru_touch(slot.designs, digest, True)

    def assign(self, worker_id: int, job, run_id: int | None = None) -> None:
        """Hand one job of a run to a specific worker seat."""
        if run_id is None:
            if self._active is None:
                raise RuntimeError("no active run; call begin_run first")
            run_id = self._active
        if run_id not in self._open:
            raise RuntimeError(f"run {run_id} is not open on this pool")
        self._slots[worker_id].ctrl.put(("job", run_id, job))

    def next_message(self, timeout: float = 0.2):
        """Next message of any open run: ``(kind, run_id, worker, ...)``.

        Kinds are ``ready``, ``event``, ``result``, ``cancelled`` and
        ``error`` (payloads as documented in :mod:`repro.parallel.worker`).
        Messages from runs no longer open (stragglers of a finished or
        cancelled batch) are silently discarded.  Raises
        :class:`queue.Empty` on timeout, like a queue would; a
        non-positive timeout polls without blocking (the scheduler's
        burst-drain path).
        """
        deadline = time.monotonic() + timeout
        while True:
            if timeout <= 0:
                message = self._out_queue.get_nowait()
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise queue_mod.Empty
                message = self._out_queue.get(timeout=remaining)
            if message[1] not in self._open:
                continue
            return (message[0], message[1]) + tuple(message[2:])

    def cancel_run(self, run_id: int) -> None:
        """Cancel one open run (assigned-but-unstarted jobs decline).

        The oldest open run is cancelled through the shared epoch —
        prompt, reaches even jobs already sitting in worker queues, and
        can never touch a newer run because ids are monotonic.  Younger
        runs get explicit per-worker ``cancel`` messages instead, so a
        cancelled job never takes its siblings down with it.
        """
        if run_id not in self._open:
            return
        self._cancelled_runs.add(run_id)
        if run_id == min(self._open):
            with self._cancel_epoch.get_lock():
                if self._cancel_epoch.value < run_id:
                    self._cancel_epoch.value = run_id
        else:
            for slot in self._slots:
                if slot.process.is_alive():
                    slot.ctrl.put(("cancel", run_id))

    def run_cancelled(self, run_id: int) -> bool:
        """True once ``run_id`` has been cancelled."""
        return (
            run_id in self._cancelled_runs
            or self._cancel_epoch.value >= run_id
        )

    def close_run(self, run_id: int) -> None:
        """Close an open run; anything still in flight goes stale.

        Workers drop the run's cached state on the ``end`` message, and
        :meth:`next_message`'s open-run filter discards late replies,
        so a finished run cannot haunt its successors.
        """
        if run_id not in self._open:
            return
        del self._open[run_id]
        self._cancelled_runs.discard(run_id)
        for slot in self._slots:
            if slot.process.is_alive():
                try:
                    slot.ctrl.put(("end", run_id))
                except Exception:  # pragma: no cover - queue already broken
                    pass

    # ------------------------------------------------------------------
    # Run protocol — legacy exclusive shim (one batch at a time)
    # ------------------------------------------------------------------
    def begin_run(self, ts, settings, exchange=None) -> int:
        """Open an *exclusive* run (the pre-service single-batch mode).

        Raises while any other run is open; direct callers that want
        concurrency should go through
        :class:`~repro.service.VerificationService` (or :meth:`open_run`
        with their own scheduler) instead.
        """
        if self._open:
            raise RuntimeError(
                f"run {min(self._open)} is still active on this pool"
            )
        run_id = self.open_run(ts, settings, exchange)
        self._active = run_id
        return run_id

    def get(self, timeout: float = 0.2):
        """Next message of the exclusive run, run-id tag stripped."""
        if self._active is None:
            raise RuntimeError("no active run; call begin_run first")
        message = self.next_message(timeout)
        return (message[0],) + tuple(message[2:])

    def cancel_active(self) -> None:
        """Cancel the exclusive run (see :meth:`cancel_run`)."""
        if self._active is not None:
            self.cancel_run(self._active)

    @property
    def cancelled(self) -> bool:
        """True once the exclusive run has been cancelled."""
        return self._active is not None and self.run_cancelled(self._active)

    def end_run(self) -> None:
        """Close the exclusive run; anything still in flight goes stale."""
        if self._active is None:
            return
        self.cancel_run(self._active)
        self.close_run(self._active)
        self._active = None

    # ------------------------------------------------------------------
    # Liveness (consumed by the engine's crash handling)
    # ------------------------------------------------------------------
    def worker_alive(self, worker_id: int) -> bool:
        """True for a live seat (False for one not yet spawned)."""
        return (
            0 <= worker_id < len(self._slots)
            and self._slots[worker_id].process.is_alive()
        )

    def worker_failed(self, worker_id: int) -> bool:
        """True if the seat's process died with a nonzero exit code."""
        if not 0 <= worker_id < len(self._slots):
            return False
        process = self._slots[worker_id].process
        return not process.is_alive() and process.exitcode not in (0, None)

    def failed_workers(self) -> list[int]:
        return [
            worker_id
            for worker_id in range(len(self._slots))
            if self.worker_failed(worker_id)
        ]

    def alive_workers(self) -> list[int]:
        return [
            worker_id
            for worker_id, slot in enumerate(self._slots)
            if slot.process.is_alive()
        ]

    def any_alive(self) -> bool:
        return bool(self.alive_workers())


# ----------------------------------------------------------------------
# Module-level default pool (server-style workloads)
# ----------------------------------------------------------------------
_default: WorkerPool | None = None


def default_pool(
    workers: int | None = None, start_method: str | None = None
) -> WorkerPool:
    """The process-wide shared pool, created on first use.

    ``workers``/``start_method`` only apply when the pool is (re)built —
    after a :func:`shutdown_default_pool` or on first call; a live
    default pool is returned as-is.
    """
    global _default
    if _default is None or _default.closed:
        _default = WorkerPool(workers=workers, start_method=start_method)
    return _default


def shutdown_default_pool() -> None:
    """Tear down the shared pool (no-op when none is live)."""
    global _default
    if _default is not None:
        _default.shutdown()
        _default = None


def shutdown_all_pools() -> None:
    """Shut down every live pool (the ``atexit`` seat-process sweep).

    Covers explicitly constructed pools as well as :func:`default_pool`:
    seats are daemon processes, but an orderly stop lets them flush
    their queues instead of dying mid-message at interpreter teardown.
    """
    shutdown_default_pool()
    for pool in list(_live_pools):
        pool.shutdown()


atexit.register(shutdown_all_pools)
