"""Structured introspection records for the pool/scheduler layer.

The crash-recovery rework made seat state genuinely dynamic — a seat
can be alive, busy, crashed-and-waiting-out-its-backoff, or freshly
revived — and a long-lived :class:`~repro.service.VerificationService`
needs to *show* that state, not just act on it.  These frozen records
are the wire-free snapshot format: :class:`SeatStats` describes one
seat (liveness, current assignment, crash/backoff bookkeeping),
:class:`PoolStats` one whole pool at one instant (occupancy plus the
pool's lifetime counters).  ``as_dict()`` keeps the JSON/legacy-dict
shape stable: the pool's counter keys (``runs``, ``design_pickles``,
``workers_spawned``, ...) stay top-level, exactly where pre-stats
consumers of ``service.stats()["pool"]`` found them.

Snapshots are built by :meth:`SeatScheduler.stats` (full seat detail)
or :meth:`PoolStats.from_pool` (a bare pool with no scheduler — seat
liveness only), and embedded into the service-level
:class:`~repro.service.ServiceStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SeatStats", "PoolStats"]


@dataclass(frozen=True)
class SeatStats:
    """One worker seat at one instant.

    ``crashes`` counts every crash the observing scheduler attributed
    to this seat; ``consecutive_crashes`` only those since the seat
    last served a full property (the backoff input — it resets on
    healthy service).  ``backoff_s`` is the delay the current crash
    earned and ``respawn_in_s`` how much of it is still to run; both
    are ``0.0`` for a live seat.
    """

    worker: int
    alive: bool
    busy: bool
    job: str | None = None  # job id of the property it is executing
    prop: str | None = None
    crashes: int = 0
    consecutive_crashes: int = 0
    backoff_s: float = 0.0
    respawn_in_s: float = 0.0
    properties_served: int = 0

    def as_dict(self) -> dict:
        return {
            "worker": self.worker,
            "alive": self.alive,
            "busy": self.busy,
            "job": self.job,
            "prop": self.prop,
            "crashes": self.crashes,
            "consecutive_crashes": self.consecutive_crashes,
            "backoff_s": self.backoff_s,
            "respawn_in_s": self.respawn_in_s,
            "properties_served": self.properties_served,
        }


@dataclass(frozen=True)
class PoolStats:
    """Occupancy and per-seat state of one pool at one instant.

    ``counters`` is the pool's lifetime ``stats`` dict (runs opened,
    designs pickled/cached, workers spawned/replaced); ``as_dict``
    splices it in at the top level so the snapshot is a strict
    superset of the old ``dict(pool.stats)`` shape.
    """

    workers: int
    alive: int
    busy: int
    idle: int
    open_runs: int
    seats: tuple[SeatStats, ...]
    counters: dict

    @classmethod
    def from_pool(cls, pool) -> "PoolStats":
        """A scheduler-less snapshot: liveness only, no assignments."""
        seats = tuple(
            SeatStats(worker=worker_id, alive=pool.worker_alive(worker_id), busy=False)
            for worker_id in range(pool.workers)
        )
        alive = sum(1 for seat in seats if seat.alive)
        return cls(
            workers=pool.workers,
            alive=alive,
            busy=0,
            idle=alive,
            open_runs=len(pool.open_runs),
            seats=seats,
            counters=dict(pool.stats),
        )

    def as_dict(self) -> dict:
        return {
            **self.counters,
            "workers": self.workers,
            "alive": self.alive,
            "busy": self.busy,
            "idle": self.idle,
            "open_runs": self.open_runs,
            "seats": [seat.as_dict() for seat in self.seats],
        }
