"""Worker-process side of the parallel JA engine (pool protocol).

Each worker process is a *persistent* pool member: it is spawned once
by :class:`~repro.parallel.pool.WorkerPool`, caches unpickled designs
by content hash across runs, and loops on its private FIFO control
queue.  One job = one property: the worker computes the paper's
``T^P`` projection for it (via
:func:`repro.ts.projection.assumption_names`, inside
:class:`~repro.multiprop.ja.JAVerifier`), runs the local IC3 proof with
the full spurious-CEX re-run ladder, and reports a
:class:`~repro.multiprop.report.PropOutcome` back on the output queue.

Control messages (private queue, parent -> worker):

``("run", run_id, design_hash, payload-or-None, settings, exchange)``
    a new run: the pickled design ships only when this worker has not
    cached the hash yet; the worker builds the run's fresh clause
    databases and acknowledges with ``ready``.  Several runs may be
    live at once — the worker keeps one state record per open run and
    serves whichever run each job message names, which is what lets a
    :class:`~repro.service.VerificationService` interleave many jobs'
    properties on one seat;
``("job", run_id, PropertyJob)``
    one property to verify.  Scheduling is parent-side: the scheduler
    assigns the next backlog job to whichever worker reported idle, so
    the queue is FIFO and a setup always precedes the run's jobs.  The
    job's ``engine`` selects the checker: ``None``/``"ic3"`` run the
    full :class:`~repro.multiprop.ja.JAVerifier` ladder; ``"bmc"``,
    ``"kind"`` and ``"rw"`` run the matching single engine under the
    same local (``T^P``) semantics — that is what lets the portfolio
    race heterogeneous engines through one seat protocol;
``("cancel", run_id)``
    decline (report ``cancelled``) any later job of that run — the
    per-run complement of the pool-wide cancel epoch;
``("end", run_id)``
    the run is over; drop its cached state;
``("stop",)``
    shutdown sentinel.

Output messages (shared queue, worker -> parent), all run-tagged so
the parent can discard stragglers of finished runs — and, with one
worker, the whole stream is deterministic:

``("ready", run, worker)``
    the run setup was absorbed; jobs may follow;
``("event", run, worker, ProgressEvent)``
    a forwarded progress event from the verifier/engine stack;
``("result", run, worker, PropOutcome)``
    the verdict for one property (terminal for that job);
``("cancelled", run, worker, name)``
    the job was declined because the run's cancel epoch was raised
    before it started (terminal);
``("error", run, worker, name, message)``
    the verifier raised; the parent re-raises after the run (terminal).

Clause traffic: the worker keeps one private
:class:`~repro.multiprop.clausedb.ClauseDB` **per shard per run**
(fresh on every setup, so runs never leak clauses into each other, and
a worker serving jobs from several shards never lets one shard's
clauses seed another shard's proofs), accumulating its own proofs —
the sequential driver's Section 6 re-use, per worker.  When the run
carries a :class:`~repro.parallel.exchange.ShardedExchange` the worker
additionally imports everything the job's *shard* published since its
last fetch before each job and publishes each new invariant to that
same shard — clauses never cross shard boundaries, worker-side
included.  Imported clauses are re-validated by ``ClauseDB.add``
worker-side.
"""

from __future__ import annotations

import pickle
import queue as queue_mod
from collections import OrderedDict
from dataclasses import dataclass, field
from collections.abc import Mapping

from ..engines.bmc import bmc_check
from ..engines.kinduction import kinduction_check
from ..engines.randomwalk import randomwalk_check
from ..engines.result import EngineResult, ResourceBudget
from ..multiprop.clausedb import ClauseDB
from ..multiprop.ja import JAOptions, JAVerifier
from ..multiprop.report import PropOutcome
from ..progress import BudgetCheckpoint, ProgressEvent, PropertyStarted
from ..ts.projection import assumption_names
from ..ts.system import TransitionSystem
from .pool import _lru_touch

#: Poll interval while waiting for work (seconds).
_POLL_TIMEOUT = 0.1


@dataclass(frozen=True)
class PropertyJob:
    """One unit of work: verify one property locally."""

    name: str
    per_property_time: float | None = None
    per_property_conflicts: int | None = None
    #: Which checker to run: ``None``/``"ic3"`` -> the full JAVerifier
    #: ladder; ``"bmc"``/``"kind"``/``"rw"`` -> that single engine under
    #: local semantics (portfolio attempts).
    engine: str | None = None
    #: Sub-seed for stochastic engines (``"rw"``); ignored otherwise.
    seed: int | None = None


@dataclass(frozen=True)
class WorkerSettings:
    """The per-run knobs every job of this run shares (picklable)."""

    design_name: str = "design"
    clause_reuse: bool = True
    respect_constraints_in_lifting: bool = False
    coi_reduction: bool = False
    ctg: bool = False
    max_frames: int = 500
    stop_on_failure: bool = False
    solver_backend: str | None = None
    engine_overrides: Mapping[str, object] = None  # type: ignore[assignment]
    #: Warm-start clauses from a cross-run proof cache: seeded into every
    #: per-shard ClauseDB this run opens.  Insertion re-validates each
    #: clause structurally; certificate re-checks backstop the rest.
    warm_clauses: tuple = ()

    def job_options(self, job: PropertyJob) -> JAOptions:
        return JAOptions(
            clause_reuse=self.clause_reuse,
            respect_constraints_in_lifting=self.respect_constraints_in_lifting,
            per_property_time=job.per_property_time,
            per_property_conflicts=job.per_property_conflicts,
            order=[job.name],
            max_frames=self.max_frames,
            coi_reduction=self.coi_reduction,
            ctg=self.ctg,
            solver_backend=self.solver_backend,
            engine_overrides=dict(self.engine_overrides or {}),
        )


@dataclass
class _ActiveRun:
    """Worker-local state of the run currently being served."""

    run_id: int
    ts: TransitionSystem
    settings: WorkerSettings
    exchange: object | None  # ShardedExchange or None
    # One clause database per exchange shard (key -1 without exchange):
    # a worker that serves jobs from several shards must not let one
    # shard's imports seed another shard's proofs, or the cross-shard
    # isolation the exchange enforces would leak back in worker-side.
    dbs: dict[int, ClauseDB] = field(default_factory=dict)
    cursors: dict[int, int] = field(default_factory=dict)

    def db_for(self, name: str) -> ClauseDB:
        shard = -1 if self.exchange is None else self.exchange.shard_of(name)
        db = self.dbs.get(shard)
        if db is None:
            db = self.dbs[shard] = ClauseDB(self.ts)
            if self.settings.warm_clauses:
                # Cross-run warm start: pre-seed the fresh shard DB with
                # the cache's clause log for this design.
                db.add_all(self.settings.warm_clauses)
        return db


def pool_worker_main(
    worker_id: int,
    ctrl_queue,
    out_queue,
    cancel_epoch,
    stop_event,
) -> None:
    """Worker loop: absorb run setups, execute assigned jobs, repeat.

    The loop polls its private control queue so it stays alive while
    idle — that is what lets the parent hand a crashed sibling's job to
    this worker arbitrarily late in a run, and what lets the *next* run
    reuse this process without respawning it.  Exit happens on the
    ``("stop",)`` sentinel or the pool-wide stop event.  The loop never
    raises: verifier exceptions become ``error`` messages so the parent
    can account for the job and keep the pool alive.
    """
    # content hash -> design; same LRU policy and cap as the parent's
    # per-slot mirror, applied to the same ordered message stream, so
    # the two sides always agree on which hashes this worker holds.
    designs: "OrderedDict[str, TransitionSystem]" = OrderedDict()
    runs: dict[int, _ActiveRun] = {}
    cancelled: set = set()
    while True:
        try:
            message = ctrl_queue.get(timeout=_POLL_TIMEOUT)
        except queue_mod.Empty:
            if stop_event.is_set():
                break
            continue
        kind = message[0]
        if kind == "stop":
            break
        if kind == "run":
            _, run_id, digest, payload, settings, exchange = message
            if payload is not None and digest not in designs:
                designs[digest] = pickle.loads(payload)
            ts = designs.get(digest)
            if ts is None:  # pragma: no cover - defensive: cache out of sync
                out_queue.put(
                    ("error", run_id, worker_id, "<setup>", "design payload missing")
                )
                continue
            _lru_touch(designs, digest, ts)
            runs[run_id] = _ActiveRun(
                run_id=run_id, ts=ts, settings=settings, exchange=exchange
            )
            out_queue.put(("ready", run_id, worker_id))
            continue
        if kind == "cancel":
            cancelled.add(message[1])
            continue
        if kind == "end":
            runs.pop(message[1], None)
            cancelled.discard(message[1])
            continue
        if kind != "job":  # pragma: no cover - defensive: protocol drift
            # An unknown control tag means the parent and this worker
            # disagree about the wire protocol; drop it rather than
            # mis-unpack it as a job.
            continue
        _, run_id, job = message
        run = runs.get(run_id)
        if run is None:
            # A job of a run this worker never set up: impossible on the
            # FIFO queue unless the run is long gone — drop it.
            continue
        if run_id <= cancel_epoch.value or run_id in cancelled:
            out_queue.put(("cancelled", run_id, worker_id, job.name))
            continue
        _execute(worker_id, run, job, out_queue)


def _execute(worker_id, run: _ActiveRun, job: PropertyJob, out_queue) -> None:
    """Run one property job and report its terminal message."""
    settings = run.settings
    run_id = run.run_id

    def forward(event: ProgressEvent) -> None:
        # The verifier emits one BudgetCheckpoint(scope="total") per
        # property against its own job-local clock; the parent emits the
        # real run-level checkpoints, so drop the worker-local ones.
        if isinstance(event, BudgetCheckpoint) and event.scope == "total":
            return
        out_queue.put(("event", run_id, worker_id, event))

    try:
        if job.engine not in (None, "ic3"):
            attempt_outcome = _run_attempt(run, job, forward)
            out_queue.put(("result", run_id, worker_id, attempt_outcome))
            return
        db = run.db_for(job.name)
        if run.exchange is not None and settings.clause_reuse:
            db.add_all(run.exchange.fetch_fresh(job.name, run.cursors))
        verifier = JAVerifier(run.ts, settings.job_options(job), emit=forward)
        if settings.clause_reuse:
            verifier.clause_db = db  # accumulate across this worker's jobs
        report = verifier.run(settings.design_name)
        outcome = report.outcomes[job.name]
        outcome.engine = job.engine
        result = verifier.results.get(job.name)
        if (
            run.exchange is not None
            and settings.clause_reuse
            and result is not None
            and result.holds
            and result.invariant
        ):
            # Own clauses come back on the next fetch and dedup in the
            # local ClauseDB; skipping the cursor ahead here could
            # silently drop clauses other workers published to this
            # shard in between, so don't.
            run.exchange.publish(job.name, result.invariant)
        out_queue.put(("result", run_id, worker_id, outcome))
    except Exception as exc:  # noqa: BLE001 - forwarded to the parent
        out_queue.put(
            ("error", run_id, worker_id, job.name, f"{type(exc).__name__}: {exc}")
        )


def _run_attempt(run: _ActiveRun, job: PropertyJob, emit) -> PropOutcome:
    """Run one non-IC3 engine attempt under local (``T^P``) semantics.

    BMC and k-induction pin the assumed properties on every frame
    strictly before the frame under test, and the random walk abandons
    any trace where an assumed property fails before the target — so a
    FAILS from any of them is a *local* counterexample by construction,
    exactly the verdict the JAVerifier ladder would certify.
    """
    settings = run.settings
    assumed = assumption_names(run.ts, job.name)
    budget = ResourceBudget(
        time_limit=job.per_property_time,
        conflict_limit=job.per_property_conflicts,
    )
    emit(PropertyStarted(name=job.name, assumed=tuple(assumed)))
    result: EngineResult
    if job.engine == "bmc":
        result = bmc_check(
            run.ts,
            job.name,
            max_depth=min(settings.max_frames, 256),
            assumed=assumed,
            budget=budget,
            emit=emit,
            solver_backend=settings.solver_backend,
        )
    elif job.engine == "kind":
        result = kinduction_check(
            run.ts,
            job.name,
            max_k=min(settings.max_frames, 64),
            assumed=assumed,
            budget=budget,
            solver_backend=settings.solver_backend,
        )
    elif job.engine == "rw":
        result = randomwalk_check(
            run.ts,
            job.name,
            seed=job.seed if job.seed is not None else 0,
            assumed=assumed,
            budget=budget,
            emit=emit,
        )
    else:
        raise ValueError(f"unknown attempt engine {job.engine!r}")
    return PropOutcome(
        name=job.name,
        status=result.status,
        local=True,
        frames=result.frames,
        time_seconds=result.time_seconds,
        cex_depth=len(result.cex) if result.cex is not None else None,
        assumed=list(result.assumed),
        expected_to_fail=run.ts.prop_by_name[job.name].expected_to_fail,
        engine=job.engine,
    )
