"""Worker-process side of the parallel JA engine.

Each worker process receives the pickled :class:`TransitionSystem` once
(through the :class:`multiprocessing.Process` arguments), then loops on
a task queue of :class:`PropertyJob` messages.  One job = one property:
the worker computes the paper's ``T^P`` projection for it (via
:func:`repro.ts.projection.assumption_names`, inside
:class:`~repro.multiprop.ja.JAVerifier`), runs the local IC3 proof with
the full spurious-CEX re-run ladder, and reports a
:class:`~repro.multiprop.report.PropOutcome` back on the output queue.

Everything the worker says goes through **one** queue, tagged with the
message kinds below, so the parent can merge per-worker progress-event
streams and result traffic without extra threads and in a
deterministic order when ``workers == 1``:

``("claim", worker, name)``
    bookkeeping before a job starts — lets the parent attribute a
    worker crash to the job it was holding;
``("event", worker, ProgressEvent)``
    a forwarded progress event from the verifier/engine stack;
``("result", worker, PropOutcome)``
    the verdict for one property (terminal for that job);
``("cancelled", worker, name)``
    the job was drained after early cancellation (terminal);
``("error", worker, name, message)``
    the verifier raised; the parent re-raises after the run (terminal).

Clause traffic: the worker keeps a private
:class:`~repro.multiprop.clausedb.ClauseDB` accumulating its own proofs
(the sequential driver's Section 6 re-use, now per worker).  When a
:class:`ClauseExchange` proxy is supplied, the worker additionally
imports everything published since its last fetch before each job and
publishes each new invariant — the paper's optional live exchange.
Imported clauses are re-validated by ``ClauseDB.add`` worker-side.
"""

from __future__ import annotations

import queue as queue_mod
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..multiprop.clausedb import ClauseDB
from ..multiprop.ja import JAOptions, JAVerifier
from ..progress import BudgetCheckpoint, ProgressEvent
from ..ts.system import TransitionSystem

#: Optional queue sentinel: immediately exits the worker loop.  The
#: engine no longer enqueues sentinels (workers exit when the queue is
#: empty and the cancel event is set, which keeps them available for
#: crash re-dispatch); the sentinel remains honored for direct callers.
SENTINEL = None

#: Poll interval while waiting for work (seconds).
_POLL_TIMEOUT = 0.1


@dataclass(frozen=True)
class PropertyJob:
    """One unit of work: verify one property locally."""

    name: str
    per_property_time: Optional[float] = None
    per_property_conflicts: Optional[int] = None


@dataclass(frozen=True)
class WorkerSettings:
    """The per-run knobs every job of this run shares (picklable)."""

    design_name: str = "design"
    clause_reuse: bool = True
    respect_constraints_in_lifting: bool = False
    coi_reduction: bool = False
    ctg: bool = False
    max_frames: int = 500
    stop_on_failure: bool = False
    solver_backend: Optional[str] = None
    engine_overrides: Mapping[str, object] = None  # type: ignore[assignment]

    def job_options(self, job: PropertyJob) -> JAOptions:
        return JAOptions(
            clause_reuse=self.clause_reuse,
            respect_constraints_in_lifting=self.respect_constraints_in_lifting,
            per_property_time=job.per_property_time,
            per_property_conflicts=job.per_property_conflicts,
            order=[job.name],
            max_frames=self.max_frames,
            coi_reduction=self.coi_reduction,
            ctg=self.ctg,
            solver_backend=self.solver_backend,
            engine_overrides=dict(self.engine_overrides or {}),
        )


def worker_main(
    worker_id: int,
    ts: TransitionSystem,
    settings: WorkerSettings,
    task_queue,
    out_queue,
    cancel_event,
    exchange=None,
) -> None:
    """Worker loop: consume jobs until cancellation (or a sentinel).

    The loop polls the task queue so it stays alive while idle — that
    is what lets the parent re-dispatch a crashed sibling's job onto
    this worker arbitrarily late in the run.  Exit happens when the
    queue is empty *and* the cancel event is set (the parent always
    sets it during teardown), or immediately on a :data:`SENTINEL`.

    ``exchange`` is a :class:`ClauseExchange` proxy or ``None``; the
    cursor into its log is worker-local.  The loop never raises: verifier
    exceptions become ``error`` messages so the parent can account for
    the job and keep the pool alive.
    """

    def forward(event: ProgressEvent) -> None:
        # The verifier emits one BudgetCheckpoint(scope="total") per
        # property against its own job-local clock; the parent emits the
        # real run-level checkpoints, so drop the worker-local ones.
        if isinstance(event, BudgetCheckpoint) and event.scope == "total":
            return
        out_queue.put(("event", worker_id, event))

    db = ClauseDB(ts)
    cursor = 0
    while True:
        try:
            job = task_queue.get(timeout=_POLL_TIMEOUT)
        except queue_mod.Empty:
            if cancel_event.is_set():
                break
            continue
        if job is SENTINEL:
            break
        if cancel_event.is_set():
            out_queue.put(("cancelled", worker_id, job.name))
            continue
        out_queue.put(("claim", worker_id, job.name))
        try:
            if exchange is not None and settings.clause_reuse:
                fresh, cursor = exchange.fetch(cursor)
                db.add_all(fresh)
            verifier = JAVerifier(ts, settings.job_options(job), emit=forward)
            if settings.clause_reuse:
                verifier.clause_db = db  # accumulate across this worker's jobs
            report = verifier.run(settings.design_name)
            outcome = report.outcomes[job.name]
            result = verifier.results.get(job.name)
            if (
                exchange is not None
                and settings.clause_reuse
                and result is not None
                and result.holds
                and result.invariant
            ):
                # Own clauses come back on the next fetch and dedup in
                # the local ClauseDB; skipping the cursor ahead here
                # could silently drop clauses other workers published
                # in between, so don't.
                exchange.publish(result.invariant)
            if settings.stop_on_failure and outcome.status.value == "fails":
                # Trip the flag worker-side: with one worker this makes
                # cancellation deterministic (the flag is set before the
                # next job is dequeued), and with many it saves a
                # round-trip through the parent.
                cancel_event.set()
            out_queue.put(("result", worker_id, outcome))
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            out_queue.put(
                ("error", worker_id, job.name, f"{type(exc).__name__}: {exc}")
            )


def drain_jobs(task_queue, jobs: Sequence[PropertyJob]) -> None:
    """Enqueue the initial job batch.

    No sentinels: workers poll and exit once the queue is empty and the
    cancel event is set (always the case during parent teardown), which
    keeps idle workers available to absorb re-dispatched jobs after a
    sibling crashes.
    """
    for job in jobs:
        task_queue.put(job)
