"""The process-pool executor behind the ``parallel-ja`` strategy.

:func:`parallel_ja_verify` dispatches one local-proof job per property
to a pool of worker processes (Section 11's "one processor per
property", generalized to ``workers <= len(properties)``), merges the
workers' progress-event streams into the caller's ``emit`` channel,
aggregates the per-property verdicts into one
:class:`~repro.multiprop.report.MultiPropReport`, and cancels the
still-queued remainder early when

* the run-level verdict is decided: ``stop_on_failure`` is set and a
  property came back FAILS (the aggregate "all properties hold" is then
  false, and per Section 3 the debugging set must be fixed before the
  rest is worth finishing), or
* the ``total_time`` budget expired (the watchdog also clamps each
  job's per-property budget, so no single worker can overrun the total
  by more than one property's worth of work).

Cancelled properties are reported UNKNOWN, exactly like the sequential
driver's budget-exhausted tail.

Design notes
------------

* **Persistent pool.**  Dispatch runs over a
  :class:`~repro.parallel.pool.WorkerPool`: pass one via
  ``ParallelOptions.pool`` (or ``VerificationConfig.pool``) and
  successive runs reuse the same worker processes and their cached
  designs — the server-style regime where per-run setup cost must be
  amortized.  With no pool supplied the engine creates a private
  single-run pool sized by ``resolve_workers`` and shuts it down
  afterwards, preserving the original per-run semantics.
* **Parent-side scheduling.**  The engine keeps the job backlog and
  assigns the next job to whichever worker reports idle, through that
  worker's private queue (see :mod:`repro.parallel.pool` for why a
  shared task queue cannot survive worker crashes).  One output queue
  carries events, results and errors, so the parent needs no auxiliary
  threads and, with one worker, the whole message stream — and
  therefore the session's event sequence — is deterministic.  Every
  message is tagged with the run id; stragglers from a previous run on
  a shared pool are discarded by the pool.
* **Size-aware dispatch**: with no explicit property order, the backlog
  is ordered by *descending* estimated cone-of-influence size, the
  classic LPT list-scheduling heuristic — big proofs start first, so
  the last running worker holds a small job and the straggler tail
  shrinks.  Verdicts are order-independent; the report always follows
  the property order.
* **Worker crashes** (a killed process, an OOM) are detected by polling
  worker liveness while the queue is idle; because assignment is
  parent-side, the engine knows exactly which job a dead worker held
  and **re-dispatches it once** onto a surviving worker (emitting
  :class:`~repro.progress.PropertyRequeued`); only a second crash on
  the same property — or a pool with no survivors — degrades it to
  UNKNOWN.  A dead seat on a persistent pool is respawned at the start
  of the *next* run by :meth:`WorkerPool.ensure_workers`.
* **Sharded clause exchange** (``exchange=True`` with ``clause_reuse``)
  routes clause traffic through one
  :class:`~repro.parallel.exchange.ExchangeShard` per property cluster
  (``exchange_shards``: a count, or ``"auto"`` for one shard per
  structural cluster), each hosted in its own manager process —
  publish/fetch throughput scales with the shard count and clauses
  never cross cluster boundaries.  With ``exchange=False`` each worker
  still re-uses its *own* proofs' clauses, Section 6 style, but nothing
  crosses process boundaries (Table X's independent-proof mode).
* ``schedule_only=True`` falls back to the legacy simulator
  (:mod:`repro.multiprop.parallel`): standalone local proofs measured
  sequentially plus a greedy list-scheduling makespan projection —
  useful when the host has fewer cores than the run has properties.
"""

from __future__ import annotations

import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..engines.result import PropStatus
from ..multiprop.parallel import ParallelSimResult, measure_local_proofs
from ..multiprop.report import MultiPropReport, PropOutcome
from ..progress import (
    BudgetCheckpoint,
    Emit,
    PoolAttached,
    PropertyCancelled,
    PropertyRequeued,
    PropertySolved,
    PropertyStarted,
    ShardOpened,
    WorkerStarted,
    emit_or_null,
)
from ..ts.system import TransitionSystem
from .exchange import build_shard_map, start_sharded_exchange
from .pool import WorkerPool
from .worker import PropertyJob, WorkerSettings


@dataclass
class ParallelOptions:
    """Configuration of one process-parallel JA run.

    The JA fields mirror :class:`~repro.multiprop.ja.JAOptions`; the
    parallel knobs are new.
    """

    workers: Optional[int] = None  # None: one per CPU (capped by #props)
    exchange: bool = True  # live clause exchange between workers
    schedule_only: bool = False  # legacy simulator instead of processes
    stop_on_failure: bool = False  # cancel the queue on the first FAILS
    start_method: Optional[str] = None  # fork where available, else spawn
    # Queue jobs in descending estimated COI size (LPT heuristic) when
    # no explicit ``order`` is given; an explicit order always wins.
    size_dispatch: bool = True
    # SAT backend name (repro.sat registry); None = process default.
    solver_backend: Optional[str] = None
    # A persistent WorkerPool to run on (shared across runs); None
    # creates a private single-run pool sized by ``resolve_workers``.
    pool: Optional[WorkerPool] = None
    # Clause-exchange shards: a positive count, or "auto" for one shard
    # per structural property cluster (capped, see repro.parallel.exchange).
    exchange_shards: Union[int, str] = 1
    # -- JA-verification knobs (see JAOptions) -------------------------
    clause_reuse: bool = True
    respect_constraints_in_lifting: bool = False
    per_property_time: Optional[float] = None
    per_property_conflicts: Optional[int] = None
    total_time: Optional[float] = None
    order: Optional[Sequence[str]] = None
    max_frames: int = 500
    coi_reduction: bool = False
    ctg: bool = False
    engine_overrides: Mapping[str, object] = field(default_factory=dict)

    def resolve_workers(self, num_jobs: int) -> int:
        import os

        workers = self.workers if self.workers is not None else os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return max(1, min(workers, num_jobs))


class _PoolRun:
    """State of one in-flight pool execution (parent side)."""

    def __init__(
        self,
        ts: TransitionSystem,
        options: ParallelOptions,
        design_name: str,
        emit: Emit,
    ) -> None:
        self.ts = ts
        self.options = options
        self.design_name = design_name
        self.emit = emit
        self.outcomes: Dict[str, PropOutcome] = {}
        # Parent-side scheduling state: jobs not yet handed out, workers
        # that are set up and idle, and who is holding what.
        self.backlog: List[PropertyJob] = []
        self.available: set = set()
        self.assignments: Dict[int, str] = {}  # worker id -> job it holds
        self.errors: List[str] = []
        self.cancelled = 0
        self.crashes = 0
        # Crash re-dispatch bookkeeping (one retry per job).
        self.retried: set = set()
        self.redispatched = 0
        self._job_time: Optional[float] = None

    # ------------------------------------------------------------------
    def run(self, order: List[str]) -> MultiPropReport:
        opts = self.options
        start = time.monotonic()
        deadline = None if opts.total_time is None else start + opts.total_time

        pool = opts.pool
        ephemeral = pool is None
        if ephemeral:
            pool = WorkerPool(
                workers=opts.resolve_workers(len(order)),
                start_method=opts.start_method,
            )
        self.pool = pool
        # Everything after pool creation runs under the teardown guard:
        # a bad shard spec or a failed manager start must not leak the
        # worker processes just spawned.
        managers: List[object] = []
        exchange = None
        num_shards = 0
        dispatch_mode = "fifo"
        use_exchange = opts.exchange and opts.clause_reuse
        exchange_stats: dict = {}
        try:
            started, replaced = pool.ensure_workers()
            for worker_id in sorted(started + replaced):
                self.emit(WorkerStarted(worker=worker_id))
            self.emit(
                PoolAttached(
                    workers=pool.workers,
                    persistent=not ephemeral,
                    runs=pool.stats["runs"],
                )
            )

            # Per-job budget, clamped by the total budget so a single
            # worker cannot overrun the watchdog by an unbounded amount.
            job_time = opts.per_property_time
            if opts.total_time is not None:
                job_time = (
                    opts.total_time
                    if job_time is None
                    else min(job_time, opts.total_time)
                )
            self._job_time = job_time
            # Dispatch order: LPT (descending cone size) unless the caller
            # pinned an explicit order.  The report keeps ``order``.
            if opts.order is None and opts.size_dispatch:
                dispatch = _cone_descending(self.ts, order)
                dispatch_mode = "cone-desc"
            else:
                dispatch = list(order)
            self.backlog = [
                PropertyJob(
                    name=name,
                    per_property_time=job_time,
                    per_property_conflicts=opts.per_property_conflicts,
                )
                for name in dispatch
            ]

            if use_exchange:
                shard_map = build_shard_map(
                    self.ts, order, opts.exchange_shards
                )
                num_shards = shard_map.num_shards
                managers, exchange = start_sharded_exchange(
                    shard_map, ctx=pool.context
                )
                for shard in range(num_shards):
                    self.emit(
                        ShardOpened(
                            shard=shard, members=len(shard_map.members(shard))
                        )
                    )

            settings = WorkerSettings(
                design_name=self.design_name,
                clause_reuse=opts.clause_reuse,
                respect_constraints_in_lifting=opts.respect_constraints_in_lifting,
                coi_reduction=opts.coi_reduction,
                ctg=opts.ctg,
                max_frames=opts.max_frames,
                stop_on_failure=opts.stop_on_failure,
                solver_backend=opts.solver_backend,
                engine_overrides=dict(opts.engine_overrides),
            )
            pool.begin_run(self.ts, settings, exchange)
            self._collect(order, pool, deadline, start)
        finally:
            pool.end_run()
            if managers:
                try:
                    exchange_stats = exchange.stats()
                except Exception:  # pragma: no cover - managers died
                    exchange_stats = {}
                for manager in managers:
                    manager.shutdown()
            if ephemeral:
                pool.shutdown()

        if self.errors:
            raise RuntimeError(
                "parallel JA worker failure(s): " + "; ".join(self.errors)
            )

        report = MultiPropReport(method="parallel-ja", design=self.design_name)
        for name in order:  # dispatch order, not completion order
            report.outcomes[name] = self.outcomes[name]
        report.total_time = time.monotonic() - start
        report.stats = {
            "mode": "process",
            "workers": pool.workers,
            "exchange": int(use_exchange),
            "exchange_clauses": exchange_stats.get("clauses", 0),
            "exchange_shards": num_shards,
            "exchange_per_shard": exchange_stats.get("shards", []),
            "cancelled": self.cancelled,
            "worker_crashes": self.crashes,
            "dispatch": dispatch_mode,
            "redispatched": self.redispatched,
            "pool": "ephemeral" if ephemeral else "persistent",
            "pool_runs": pool.stats["runs"],
            "design_pickles": pool.stats["design_pickles"],
        }
        return report

    # ------------------------------------------------------------------
    def _collect(self, order, pool: WorkerPool, deadline, start) -> None:
        """Drain worker messages until every property is accounted for.

        Scheduling happens here: a worker that acks its setup or
        finishes a job becomes available and immediately receives the
        next backlog job; cancellation drains the backlog parent-side
        without a round-trip, while already-assigned jobs still report
        (their per-job budget is clamped by the watchdog's total).
        """
        pending = set(order)
        while pending:
            if (
                deadline is not None
                and time.monotonic() > deadline
                and not pool.cancelled
            ):
                pool.cancel_active()
            if pool.cancelled:
                self._cancel_backlog(pending, start)
            try:
                message = pool.get(timeout=0.2)
            except queue_mod.Empty:
                if self._reap_crashed(pool, pending):
                    break
                continue
            kind = message[0]
            if kind == "ready":
                self._feed(message[1], pool)
            elif kind == "event":
                self.emit(message[2])
            elif kind == "result":
                _, worker_id, outcome = message
                self.assignments.pop(worker_id, None)
                self._record(outcome, pending, start)
                if (
                    self.options.stop_on_failure
                    and outcome.status is PropStatus.FAILS
                    and not pool.cancelled
                ):
                    pool.cancel_active()
                    self._cancel_backlog(pending, start)
                self._feed(worker_id, pool)
            elif kind == "cancelled":
                _, worker_id, name = message
                if self.assignments.get(worker_id) == name:
                    del self.assignments[worker_id]
                self._record_cancelled(name, worker_id, pending, start)
                self._feed(worker_id, pool)
            elif kind == "error":
                _, worker_id, name, detail = message
                self.assignments.pop(worker_id, None)
                self.errors.append(f"{name}: {detail}")
                self._record(
                    PropOutcome(name=name, status=PropStatus.UNKNOWN, local=True),
                    pending,
                    start,
                )
                self._feed(worker_id, pool)

    def _feed(self, worker_id: int, pool: WorkerPool) -> None:
        """Hand the next backlog job to a now-idle worker (or park it)."""
        if self.backlog and not pool.cancelled:
            job = self.backlog.pop(0)
            self.assignments[worker_id] = job.name
            self.available.discard(worker_id)
            pool.assign(worker_id, job)
        else:
            self.available.add(worker_id)

    def _cancel_backlog(self, pending, start) -> None:
        """Record every not-yet-assigned job as cancelled (parent-side)."""
        while self.backlog:
            job = self.backlog.pop(0)
            self._record_cancelled(job.name, None, pending, start)

    def _reap_crashed(self, pool: WorkerPool, pending) -> bool:
        """Account for dead workers; True if no worker is left alive.

        A crash (OOM kill, hard fault) is a degraded-but-valid run: the
        job the dead worker held is re-dispatched once onto a surviving
        worker (``stats["redispatched"]``); a second crash on the same
        job — or a retry with the run already cancelling — reports it
        UNKNOWN and counts in ``stats["worker_crashes"]`` either way.
        Only *verifier exceptions* (the ``error`` message kind) abort
        the run, matching the sequential driver's propagation.
        """
        for worker_id in pool.failed_workers():
            self.available.discard(worker_id)
            name = self.assignments.pop(worker_id, None)
            if name is not None and name in pending:
                self.crashes += 1
                self._retry_or_give_up(name, worker_id, pending, pool)
        if pool.any_alive():
            return False
        # Nobody left to run the backlog: mark the remainder.
        pool.cancel_active()
        for name in sorted(pending):
            self._record_cancelled(name, None, pending, None)
        return True

    def _retry_or_give_up(self, name, worker_id, pending, pool: WorkerPool) -> None:
        """One bounded retry for a job lost to a worker crash.

        Retrying needs a survivor to run the job; with none alive (or
        the run already cancelling) the job degrades to UNKNOWN here —
        never claiming a re-dispatch that could not execute.  The job
        goes to the backlog *front* (it already waited its turn once)
        and straight to an idle live worker when one is parked.
        """
        if name not in self.retried and pool.any_alive() and not pool.cancelled:
            self.retried.add(name)
            self.redispatched += 1
            self.backlog.insert(
                0,
                PropertyJob(
                    name=name,
                    per_property_time=self._job_time,
                    per_property_conflicts=self.options.per_property_conflicts,
                ),
            )
            self.emit(PropertyRequeued(name=name, worker=worker_id))
            for idle in sorted(self.available):
                if pool.worker_alive(idle):
                    self.available.discard(idle)
                    self._feed(idle, pool)
                    break
            return
        self.emit(PropertySolved(name=name, status=PropStatus.UNKNOWN, local=True))
        self._record(
            PropOutcome(name=name, status=PropStatus.UNKNOWN, local=True),
            pending,
            None,
        )

    def _record(self, outcome: PropOutcome, pending, start) -> None:
        if outcome.name not in pending:  # pragma: no cover - defensive
            return
        pending.discard(outcome.name)
        self.outcomes[outcome.name] = outcome
        if start is not None:
            self.emit(
                BudgetCheckpoint(scope="total", elapsed=time.monotonic() - start)
            )

    def _record_cancelled(self, name, worker_id, pending, start) -> None:
        if name not in pending:  # pragma: no cover - defensive
            return
        self.cancelled += 1
        self.emit(PropertyCancelled(name=name, worker=worker_id))
        self.emit(PropertySolved(name=name, status=PropStatus.UNKNOWN, local=True))
        self._record(
            PropOutcome(name=name, status=PropStatus.UNKNOWN, local=True),
            pending,
            start,
        )


# ----------------------------------------------------------------------
def _cone_descending(ts: TransitionSystem, order: List[str]) -> List[str]:
    """Jobs sorted by descending estimated COI size (ties keep order).

    Uses the same proof-hardness proxy as the ``"cone"`` property order
    (:func:`~repro.multiprop.ordering.cone_latches`) — here inverted:
    longest-processing-time-first list scheduling bounds the makespan
    much tighter than FIFO when property sizes are skewed.
    """
    from ..multiprop.ordering import cone_latches

    position = {name: i for i, name in enumerate(order)}
    return sorted(order, key=lambda n: (-cone_latches(ts, n), position[n]))


def _schedule_only(
    ts: TransitionSystem,
    options: ParallelOptions,
    design_name: str,
    emit: Emit,
    order: List[str],
) -> MultiPropReport:
    """The legacy Section 11 simulation, kept as an explicit mode.

    Standalone local proofs are measured sequentially and the makespan
    of scheduling them on the requested worker count is *projected*
    with greedy list scheduling; ``report.stats`` carries the
    projection next to the real sequential wall-clock.  Budget and
    engine knobs (conflicts, ctg, lifting mode, overrides) are honored;
    ``clause_reuse``/``exchange``/``coi_reduction`` deliberately are
    not — Table X measures proofs "generated independently of each
    other", which is what the projection models.
    """
    start = time.monotonic()
    sim = ParallelSimResult()
    report = MultiPropReport(method="parallel-ja", design=design_name)
    engine_overrides = dict(options.engine_overrides)
    engine_overrides.setdefault("ctg", options.ctg)
    engine_overrides.setdefault(
        "respect_constraints_in_lifting",
        options.respect_constraints_in_lifting,
    )
    engine_overrides.setdefault("solver_backend", options.solver_backend)
    for name in order:
        emit(PropertyStarted(name=name))
        one = measure_local_proofs(
            ts,
            [name],
            per_property_time=options.per_property_time,
            max_frames=options.max_frames,
            per_property_conflicts=options.per_property_conflicts,
            engine_overrides=engine_overrides,
        )
        sim.prop_times[name] = one.prop_times[name]
        sim.prop_frames[name] = one.prop_frames[name]
        sim.statuses[name] = one.statuses[name]
        status = PropStatus(one.statuses[name])
        report.outcomes[name] = PropOutcome(
            name=name,
            status=status,
            local=True,
            frames=one.prop_frames[name],
            time_seconds=one.prop_times[name],
            expected_to_fail=ts.prop_by_name[name].expected_to_fail,
        )
        emit(
            PropertySolved(
                name=name,
                status=status,
                local=True,
                time_seconds=one.prop_times[name],
            )
        )
        emit(BudgetCheckpoint(scope="total", elapsed=time.monotonic() - start))
    workers = options.resolve_workers(len(order)) if order else 1
    report.total_time = time.monotonic() - start
    report.stats = {
        "mode": "schedule_only",
        "workers": workers,
        "exchange": 0,
        "sequential_time": sim.sequential_time(),
        "simulated_makespan": sim.makespan(workers),
        "simulated_speedup": sim.speedup(workers),
    }
    return report


def parallel_ja_verify(
    ts: TransitionSystem,
    options: Optional[ParallelOptions] = None,
    design_name: str = "design",
    emit: Optional[Emit] = None,
) -> MultiPropReport:
    """Verify every property of ``ts`` with the process-parallel engine.

    Verdicts are the same as sequential JA-verification produces (local
    proofs are independent; clause exchange only changes how fast they
    finish), which the integration suite checks property-by-property.
    """
    opts = options or ParallelOptions()
    emit = emit_or_null(emit)
    order = list(opts.order) if opts.order else [p.name for p in ts.properties]
    unknown = set(order) - {p.name for p in ts.properties}
    if unknown:
        raise KeyError(f"unknown properties in order: {sorted(unknown)}")
    if not order:
        report = MultiPropReport(method="parallel-ja", design=design_name)
        report.stats = {"mode": "process", "workers": 0, "exchange": 0}
        return report
    if opts.schedule_only:
        return _schedule_only(ts, opts, design_name, emit, order)
    return _PoolRun(ts, opts, design_name, emit).run(order)
