"""The process-pool executor behind the ``parallel-ja`` strategy.

:func:`parallel_ja_verify` dispatches one local-proof job per property
to a pool of worker processes (Section 11's "one processor per
property", generalized to ``workers <= len(properties)``), merges the
workers' progress-event streams into the caller's ``emit`` channel,
aggregates the per-property verdicts into one
:class:`~repro.multiprop.report.MultiPropReport`, and cancels the
still-queued remainder early when

* the run-level verdict is decided: ``stop_on_failure`` is set and a
  property came back FAILS (the aggregate "all properties hold" is then
  false, and per Section 3 the debugging set must be fixed before the
  rest is worth finishing), or
* the ``total_time`` budget expired (the watchdog also clamps each
  job's per-property budget, so no single worker can overrun the total
  by more than one property's worth of work).

Cancelled properties are reported UNKNOWN, exactly like the sequential
driver's budget-exhausted tail.

Design notes
------------

* **Persistent pool.**  Dispatch runs over a
  :class:`~repro.parallel.pool.WorkerPool`: pass one via
  ``ParallelOptions.pool`` (or ``VerificationConfig.pool``) and
  successive runs reuse the same worker processes and their cached
  designs — the server-style regime where per-run setup cost must be
  amortized.  With no pool supplied the engine creates a private
  single-run pool sized by ``resolve_workers`` and shuts it down
  afterwards, preserving the original per-run semantics.
* **Parent-side scheduling, shared with the service.**  The
  :class:`SeatScheduler` keeps each job's property backlog and assigns
  the next property to whichever worker reports idle, through that
  worker's private queue (see :mod:`repro.parallel.pool` for why a
  shared task queue cannot survive worker crashes).  The same
  scheduler multiplexes *many* concurrent jobs for
  :class:`~repro.service.VerificationService` — weighted fair share
  across jobs, LPT within one — and this engine is its degenerate
  single-job case.  One output queue carries events, results and
  errors, so the parent needs no auxiliary threads and, with one
  worker and one job, the whole message stream — and therefore the
  session's event sequence — is deterministic.  Every message is
  tagged with the run id; stragglers from a previous run on a shared
  pool are discarded by the pool.
* **Size-aware dispatch**: with no explicit property order, the backlog
  is ordered by *descending* estimated cone-of-influence size, the
  classic LPT list-scheduling heuristic — big proofs start first, so
  the last running worker holds a small job and the straggler tail
  shrinks.  Verdicts are order-independent; the report always follows
  the property order.
* **Worker crashes** (a killed process, an OOM) are detected by polling
  worker liveness while the queue is idle; because assignment is
  parent-side, the engine knows exactly which job a dead worker held
  and **re-dispatches it once** onto a surviving worker (emitting
  :class:`~repro.progress.PropertyRequeued`); only a second crash on
  the same property — or a pool with no survivors — degrades it to
  UNKNOWN.  A dead seat on a persistent pool is respawned at the start
  of the *next* run by :meth:`WorkerPool.ensure_workers`.
* **Sharded clause exchange** (``exchange=True`` with ``clause_reuse``)
  routes clause traffic through one
  :class:`~repro.parallel.exchange.ExchangeShard` per property cluster
  (``exchange_shards``: a count, or ``"auto"`` for one shard per
  structural cluster), each hosted in its own manager process —
  publish/fetch throughput scales with the shard count and clauses
  never cross cluster boundaries.  With ``exchange=False`` each worker
  still re-uses its *own* proofs' clauses, Section 6 style, but nothing
  crosses process boundaries (Table X's independent-proof mode).
* ``schedule_only=True`` falls back to the legacy simulator
  (:mod:`repro.multiprop.parallel`): standalone local proofs measured
  sequentially plus a greedy list-scheduling makespan projection —
  useful when the host has fewer cores than the run has properties.
"""

from __future__ import annotations

import queue as queue_mod
import time
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from ..engines.result import PropStatus
from ..multiprop.parallel import ParallelSimResult, measure_local_proofs
from ..multiprop.report import MultiPropReport, PropOutcome
from ..progress import (
    BudgetCheckpoint,
    Emit,
    PoolAttached,
    PropertyCancelled,
    PropertyRequeued,
    PropertySolved,
    PropertyStarted,
    ShardOpened,
    WorkerStarted,
    emit_or_null,
)
from ..ts.system import TransitionSystem
from .exchange import build_shard_map, start_sharded_exchange
from .pool import WorkerPool
from .stats import PoolStats, SeatStats
from .worker import PropertyJob, WorkerSettings


@dataclass
class ParallelOptions:
    """Configuration of one process-parallel JA run.

    The JA fields mirror :class:`~repro.multiprop.ja.JAOptions`; the
    parallel knobs are new.
    """

    workers: int | None = None  # None: one per CPU (capped by #props)
    exchange: bool = True  # live clause exchange between workers
    schedule_only: bool = False  # legacy simulator instead of processes
    stop_on_failure: bool = False  # cancel the queue on the first FAILS
    start_method: str | None = None  # fork where available, else spawn
    # Queue jobs in descending estimated COI size (LPT heuristic) when
    # no explicit ``order`` is given; an explicit order always wins.
    size_dispatch: bool = True
    # SAT backend name (repro.sat registry); None = process default.
    solver_backend: str | None = None
    # A persistent WorkerPool to run on (shared across runs); None
    # creates a private single-run pool sized by ``resolve_workers``.
    pool: WorkerPool | None = None
    # Clause-exchange shards: a positive count, or "auto" for one shard
    # per structural property cluster (capped, see repro.parallel.exchange).
    exchange_shards: int | str = 1
    # Ceiling on pool seats this job may hold at once; None = no cap
    # (weighted fair share alone governs).  A narrow quota keeps one
    # big job from monopolizing a shared service pool.
    max_seats: int | None = None
    # -- JA-verification knobs (see JAOptions) -------------------------
    clause_reuse: bool = True
    respect_constraints_in_lifting: bool = False
    per_property_time: float | None = None
    per_property_conflicts: int | None = None
    total_time: float | None = None
    order: Sequence[str] | None = None
    max_frames: int = 500
    coi_reduction: bool = False
    ctg: bool = False
    engine_overrides: Mapping[str, object] = field(default_factory=dict)
    # Warm-start clauses (from a cross-run proof cache's clause log for
    # this exact design): every per-shard ClauseDB a worker opens for
    # this run is seeded with them, re-validated on insertion and
    # backstopped by the engine's SeedCertificateError retry.
    warm_clauses: tuple = ()
    # -- portfolio knobs ----------------------------------------------
    # Run-level seed for stochastic engines; per-property sub-seeds are
    # derived deterministically (repro.engines.randomwalk.derive_seed).
    seed: int | None = None
    # Engine slate raced per property by the portfolio strategy; None
    # means the default slate (see repro.parallel.portfolio).
    portfolio_engines: tuple[str, ...] | None = None

    def resolve_workers(self, num_jobs: int) -> int:
        import os

        workers = self.workers if self.workers is not None else os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return max(1, min(workers, num_jobs))


class PooledJob:
    """Parent-side state of one admitted job (= one open run on the pool).

    Everything the old single-run executor tracked per run now lives
    here, so a :class:`SeatScheduler` can keep any number of them in
    flight: the property backlog, the seats that acked this run's
    setup, outcomes and pending names, crash/retry bookkeeping, the
    watchdog deadline, and the job's private sharded-exchange managers.
    """

    def __init__(
        self,
        run_id: int,
        ts: TransitionSystem,
        options: ParallelOptions,
        design_name: str,
        emit: Emit,
        order: list[str],
        *,
        weight: float = 1.0,
        pool_label: str = "persistent",
        start: float | None = None,
        job_id: str | None = None,
        on_finish=None,
    ) -> None:
        self.run_id = run_id
        self.ts = ts
        self.options = options
        self.design_name = design_name
        self.emit = emit
        self.order = list(order)
        self.weight = weight
        self.max_seats = options.max_seats
        self.pool_label = pool_label
        self.job_id = job_id
        self.on_finish = on_finish
        self.start = time.monotonic() if start is None else start
        self.deadline = (
            None
            if options.total_time is None
            else self.start + options.total_time
        )
        self.pending = set(order)
        self.outcomes: dict[str, PropOutcome] = {}
        self.backlog: list[PropertyJob] = []
        self.ready: set = set()  # seats that acked this run's setup
        self.retried: set = set()
        self.errors: list[str] = []
        self.error: BaseException | None = None
        self.cancelled = False
        self.cancelled_count = 0
        self.crashes = 0
        self.redispatched = 0
        self.finished = False
        self.total_time = 0.0
        self.job_time: float | None = None
        self.engine: str | None = None  # attempt engine tag (portfolio)
        self.seed: int | None = None  # attempt sub-seed (portfolio)
        self.dispatch_mode = "fifo"
        self.use_exchange = False
        self.num_shards = 0
        self.managers: list[object] = []
        self.exchange = None
        self.exchange_stats: dict = {}

    # ------------------------------------------------------------------
    def record(self, outcome: PropOutcome, checkpoint: bool = True) -> None:
        if outcome.name not in self.pending:  # pragma: no cover - defensive
            return
        self.pending.discard(outcome.name)
        self.outcomes[outcome.name] = outcome
        if checkpoint:
            self.emit(
                BudgetCheckpoint(
                    scope="total", elapsed=time.monotonic() - self.start
                )
            )

    def record_cancelled(
        self, name: str, worker_id: int | None, checkpoint: bool = True
    ) -> None:
        if name not in self.pending:  # pragma: no cover - defensive
            return
        self.cancelled_count += 1
        self.emit(PropertyCancelled(name=name, worker=worker_id))
        self.emit(
            PropertySolved(name=name, status=PropStatus.UNKNOWN, local=True)
        )
        self.record(
            PropOutcome(name=name, status=PropStatus.UNKNOWN, local=True),
            checkpoint,
        )

    def build_report(self, pool: WorkerPool) -> MultiPropReport:
        """The job's :class:`MultiPropReport` (property order preserved)."""
        report = MultiPropReport(method="parallel-ja", design=self.design_name)
        for name in self.order:  # property order, not completion order
            report.outcomes[name] = self.outcomes[name]
        report.total_time = self.total_time
        report.stats = {
            "mode": "process",
            "workers": pool.workers,
            "exchange": int(self.use_exchange),
            "exchange_clauses": self.exchange_stats.get("clauses", 0),
            "exchange_shards": self.num_shards,
            "exchange_per_shard": self.exchange_stats.get("shards", []),
            "cancelled": self.cancelled_count,
            "worker_crashes": self.crashes,
            "dispatch": self.dispatch_mode,
            "max_seats": self.max_seats,
            "redispatched": self.redispatched,
            "pool": self.pool_label,
            "pool_runs": pool.stats["runs"],
            "design_pickles": pool.stats["design_pickles"],
        }
        return report


@dataclass
class _SeatHealth:
    """Crash/backoff bookkeeping of one seat, as one scheduler sees it.

    ``consecutive`` counts crashes since the seat last served a full
    property (a ``result`` message resets it); the backoff schedule is
    keyed on it: the first crash respawns immediately, every further
    consecutive crash doubles the delay from ``backoff_base`` up to
    ``backoff_cap``.  ``down`` marks a crash already accounted, so
    repeated reaps of the same corpse cannot inflate the counters.
    """

    crashes: int = 0  # lifetime crashes attributed to this seat
    consecutive: int = 0  # crashes since the seat last served a property
    served: int = 0  # properties this seat completed (result messages)
    down: bool = False  # dead and accounted, respawn still owed
    delay: float = 0.0  # backoff delay the current crash earned
    not_before: float = 0.0  # monotonic instant the respawn unlocks


class SeatScheduler:
    """Fair multiplexer of many jobs' property backlogs onto pool seats.

    This replaces the engine's exclusive pool ownership: each admitted
    job opens its own run (:meth:`WorkerPool.open_run`), and whenever a
    seat reports idle the scheduler picks which job feeds it by
    **weighted fair share** — the job minimizing
    ``(seats it holds + 1) / priority`` wins, ties to the oldest run —
    with LPT order inside each job's backlog.  One scheduler owns the
    pool's message stream (:meth:`WorkerPool.acquire_messages`); the
    engine drives a single-job scheduler to completion, while a
    :class:`~repro.service.VerificationService` keeps one alive across
    arbitrarily many concurrent jobs.

    Per-job isolation carries over from the single-run engine: run-id
    tagged messages, per-job watchdog deadlines, per-job sharded
    exchanges, exact crash attribution with one bounded re-dispatch,
    and per-job cancellation that never touches sibling jobs.  With
    ``revive_seats=True`` (service mode) a crashed seat is respawned
    *mid-flight* and re-attached to every open run, under per-seat
    exponential backoff: the first crash respawns immediately, each
    further crash without a served property in between doubles the
    delay (``backoff_base`` up to ``backoff_cap``), and a seat that
    completes a property resets its schedule.  A crash-looping seat
    therefore costs a bounded respawn rate — never a hot loop — while
    a long-lived service is never *permanently* degraded the way the
    old global revive budget could leave it.  Without ``revive_seats``
    (single-run engine mode) dead seats stay down until the next run,
    exactly as before.
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        revive_seats: bool = False,
        service_emit: Emit | None = None,
        shard_host=None,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
    ) -> None:
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ValueError(
                f"need 0 < backoff_base <= backoff_cap, got "
                f"{backoff_base!r}/{backoff_cap!r}"
            )
        pool.acquire_messages(self)
        self.pool = pool
        self.revive_seats = revive_seats
        self.service_emit = service_emit
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        # Optional persistent ShardHost: jobs' exchange shards open on
        # pooled manager processes instead of spawning their own.
        self.shard_host = shard_host
        self.jobs: dict[int, PooledJob] = {}
        # seat -> (run id, property name) it is currently executing
        self.assignments: dict[int, tuple[int, str]] = {}
        self.idle: set = set()
        # seat -> crash/backoff record (created lazily, kept forever)
        self.seat_health: dict[int, _SeatHealth] = {}
        # clause-exchange totals of finished jobs (stats surface)
        self._exchange_totals = {
            "clauses": 0,
            "publishes": 0,
            "fetches": 0,
            "fetch_batches": 0,
        }
        self._last_reap = time.monotonic()

    def _seat_health(self, worker_id: int) -> _SeatHealth:
        health = self.seat_health.get(worker_id)
        if health is None:
            health = self.seat_health[worker_id] = _SeatHealth()
        return health

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(
        self,
        ts: TransitionSystem,
        options: ParallelOptions,
        design_name: str,
        emit: Emit | None,
        order: list[str],
        *,
        priority: float = 1.0,
        pool_label: str = "persistent",
        start: float | None = None,
        job_id: str | None = None,
        on_finish=None,
        engine: str | None = None,
        seed: int | None = None,
    ) -> PooledJob:
        """Open one job on the pool and queue its property backlog.

        ``engine``/``seed`` tag every backlog job (portfolio attempts:
        one admitted job per property-engine pair); ``None`` keeps the
        default JAVerifier path.
        """
        if priority <= 0:
            raise ValueError(f"priority must be > 0, got {priority!r}")
        if options.max_seats is not None and options.max_seats < 1:
            raise ValueError(
                f"max_seats must be >= 1, got {options.max_seats!r}"
            )
        pool = self.pool
        emit = emit_or_null(emit)
        if self.revive_seats:
            # Service mode: fill never-started seats, then run a full
            # reap — even with no jobs registered — so a seat that died
            # between jobs is *accounted* before it is revived.  An
            # admission must never hot-respawn a seat that is waiting
            # out its backoff delay.
            started = pool.start_missing_workers()
            replaced: list[int] = []
            self._reap_crashed()
        else:
            if self.jobs:
                # Settle any crashed seat BEFORE the respawn erases the
                # crash evidence — otherwise the property that seat
                # held would never be re-dispatched.
                self._reap_crashed()
            started, replaced = pool.ensure_workers()
        for worker_id in sorted(started + replaced):
            emit(WorkerStarted(worker=worker_id))
        emit(
            PoolAttached(
                workers=pool.workers,
                persistent=pool_label == "persistent",
                runs=pool.stats["runs"],
            )
        )

        # Per-job budget, clamped by the total budget so a single
        # worker cannot overrun the watchdog by an unbounded amount.
        job_time = options.per_property_time
        if options.total_time is not None:
            job_time = (
                options.total_time
                if job_time is None
                else min(job_time, options.total_time)
            )
        # Dispatch order: LPT (descending cone size) unless the caller
        # pinned an explicit order.  The report keeps ``order``.
        if options.order is None and options.size_dispatch:
            dispatch = _cone_descending(ts, order)
            dispatch_mode = "cone-desc"
        else:
            dispatch = list(order)
            dispatch_mode = "fifo"

        managers: list[object] = []
        exchange = None
        num_shards = 0
        use_exchange = options.exchange and options.clause_reuse
        if use_exchange:
            shard_map = build_shard_map(ts, order, options.exchange_shards)
            num_shards = shard_map.num_shards
            if self.shard_host is not None:
                exchange = self.shard_host.open_shards(shard_map)
            else:
                managers, exchange = start_sharded_exchange(
                    shard_map, ctx=pool.context
                )
            for shard in range(num_shards):
                emit(
                    ShardOpened(
                        shard=shard, members=len(shard_map.members(shard))
                    )
                )

        settings = WorkerSettings(
            design_name=design_name,
            clause_reuse=options.clause_reuse,
            respect_constraints_in_lifting=options.respect_constraints_in_lifting,
            coi_reduction=options.coi_reduction,
            ctg=options.ctg,
            max_frames=options.max_frames,
            stop_on_failure=options.stop_on_failure,
            solver_backend=options.solver_backend,
            engine_overrides=dict(options.engine_overrides),
            warm_clauses=tuple(options.warm_clauses),
        )
        try:
            run_id = pool.open_run(ts, settings, exchange)
        except BaseException:  # don't leak the shard managers just started
            for manager in managers:
                manager.shutdown()
            raise

        job = PooledJob(
            run_id,
            ts,
            options,
            design_name,
            emit,
            order,
            weight=priority,
            pool_label=pool_label,
            start=start,
            job_id=job_id,
            on_finish=on_finish,
        )
        job.job_time = job_time
        job.dispatch_mode = dispatch_mode
        job.use_exchange = use_exchange
        job.num_shards = num_shards
        job.managers = managers
        job.exchange = exchange
        job.engine = engine
        job.seed = seed
        job.backlog = [
            PropertyJob(
                name=name,
                per_property_time=job_time,
                per_property_conflicts=options.per_property_conflicts,
                engine=engine,
                seed=seed,
            )
            for name in dispatch
        ]
        self.jobs[run_id] = job
        return job

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    @property
    def live_jobs(self) -> list[PooledJob]:
        return [job for job in self.jobs.values() if not job.finished]

    def drive(self) -> None:
        """Pump messages until every admitted job has finished."""
        while self.live_jobs:
            self.step()

    def step(self, timeout: float = 0.2, max_messages: int = 64) -> None:
        """One pump iteration: watchdogs, a message burst, crash reaping.

        Mirrors the single-run collect loop, generalized: the deadline
        check walks every live job, and an idle (or long-silent) queue
        triggers the crash sweep so a dead seat in a *busy* multi-job
        scheduler is still noticed promptly.  Only the first message
        blocks (up to ``timeout``); whatever else is already queued is
        drained in the same step, up to ``max_messages`` — with many
        jobs streaming progress events, the per-step bookkeeping cost
        is paid per burst, not per event.
        """
        now = time.monotonic()
        for job in self.live_jobs:
            if (
                job.deadline is not None
                and now > job.deadline
                and not job.cancelled
            ):
                self.cancel_job(job)
        if now - self._last_reap > 1.0:
            self._reap_crashed()
        try:
            message = self.pool.next_message(timeout=timeout)
        except queue_mod.Empty:
            self._reap_crashed()
            return
        self._dispatch_message(message)
        for _ in range(max_messages - 1):
            try:
                message = self.pool.next_message(timeout=0)
            except queue_mod.Empty:
                return
            self._dispatch_message(message)

    def _dispatch_message(self, message) -> None:
        kind, run_id, worker_id = message[0], message[1], message[2]
        job = self.jobs.get(run_id)
        if job is None or job.finished:  # pragma: no cover - defensive
            return
        if kind == "ready":
            job.ready.add(worker_id)
            if worker_id not in self.assignments:
                self._feed_seat(worker_id)
        elif kind == "event":
            job.emit(message[3])
        elif kind == "result":
            outcome = message[3]
            self.assignments.pop(worker_id, None)
            # A seat that served a full property is healthy: its crash
            # streak — and therefore its backoff schedule — resets.
            health = self._seat_health(worker_id)
            health.served += 1
            health.consecutive = 0
            health.delay = 0.0
            job.record(outcome)
            if (
                job.options.stop_on_failure
                and outcome.status is PropStatus.FAILS
                and not job.cancelled
            ):
                self.cancel_job(job)
            self._feed_seat(worker_id)
        elif kind == "cancelled":
            name = message[3]
            if self.assignments.get(worker_id) == (run_id, name):
                del self.assignments[worker_id]
            job.record_cancelled(name, worker_id)
            self._feed_seat(worker_id)
        elif kind == "error":
            name, detail = message[3], message[4]
            self.assignments.pop(worker_id, None)
            job.errors.append(f"{name}: {detail}")
            job.record(
                PropOutcome(name=name, status=PropStatus.UNKNOWN, local=True)
            )
            self._feed_seat(worker_id)
        self._maybe_finish(job)

    # ------------------------------------------------------------------
    # Seat feeding (weighted fair share across jobs, LPT within one)
    # ------------------------------------------------------------------
    def _feed_seat(self, worker_id: int) -> None:
        """Hand an idle seat the fairest job's next property (or park it)."""
        if worker_id in self.assignments:
            return
        if not self.pool.worker_alive(worker_id):
            self.idle.discard(worker_id)
            return
        job = self._pick_job(worker_id)
        if job is None:
            self.idle.add(worker_id)
            return
        prop = job.backlog.pop(0)
        self.assignments[worker_id] = (job.run_id, prop.name)
        self.idle.discard(worker_id)
        self.pool.assign(worker_id, prop, run_id=job.run_id)

    def _pick_job(self, worker_id: int) -> PooledJob | None:
        """Weighted fair share: fewest held seats per unit of priority.

        Only jobs whose setup this seat has acked are eligible (the
        FIFO control queue guarantees a worker never sees a job before
        its run's design), a job already holding its ``max_seats``
        quota is skipped outright, and ties go to the oldest run so
        admission order breaks symmetry deterministically.
        """
        busy: dict[int, int] = {}
        for run_id, _ in self.assignments.values():
            busy[run_id] = busy.get(run_id, 0) + 1
        best = None
        best_key = None
        for job in self.jobs.values():
            if job.finished or job.cancelled or not job.backlog:
                continue
            if worker_id not in job.ready:
                continue
            held = busy.get(job.run_id, 0)
            if job.max_seats is not None and held >= job.max_seats:
                continue
            key = ((held + 1) / job.weight, job.run_id)
            if best_key is None or key < best_key:
                best, best_key = job, key
        return best

    # ------------------------------------------------------------------
    # Cancellation and completion
    # ------------------------------------------------------------------
    def cancel_job(self, job: PooledJob) -> None:
        """Cancel one job: drain its backlog, let assigned seats report.

        Sibling jobs are untouched — the pool's per-run cancel either
        raises the epoch (oldest run, monotonic ids protect the rest)
        or sends run-targeted cancel messages.  Properties already on a
        seat still report (their per-property budget is clamped by this
        job's total), exactly like the single-run watchdog.
        """
        if job.finished or job.cancelled:
            return
        job.cancelled = True
        self.pool.cancel_run(job.run_id)
        while job.backlog:
            prop = job.backlog.pop(0)
            job.record_cancelled(prop.name, None)
        self._maybe_finish(job)

    def _maybe_finish(self, job: PooledJob) -> None:
        if not job.finished and not job.pending:
            self._finish_job(job)

    def _finish_job(self, job: PooledJob) -> None:
        job.finished = True
        job.total_time = time.monotonic() - job.start
        if job.exchange is not None:
            try:
                job.exchange_stats = job.exchange.stats()
            except Exception:  # pragma: no cover - managers died
                job.exchange_stats = {}
            for key in self._exchange_totals:
                self._exchange_totals[key] += job.exchange_stats.get(key, 0)
            # Dropping the proxies releases host-pooled shard objects;
            # private managers are shut down outright.
            job.exchange = None
        for manager in job.managers:
            manager.shutdown()
        job.managers = []
        self.pool.close_run(job.run_id)
        if job.errors:
            job.error = RuntimeError(
                "parallel JA worker failure(s): " + "; ".join(job.errors)
            )
        if job.on_finish is not None:
            job.on_finish(job)

    def forget(self, job: PooledJob) -> None:
        """Drop a finished job's state (long-lived service schedulers)."""
        if job.finished:
            self.jobs.pop(job.run_id, None)

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------
    def _reap_crashed(self) -> None:
        """Account for dead seats; degrade or revive as configured.

        A crash (OOM kill, hard fault) is a degraded-but-valid run: the
        property the dead seat held is re-dispatched once within its
        job (``stats["redispatched"]``); a second crash on the same
        property — or a retry with nobody to run it — reports it
        UNKNOWN and counts in ``stats["worker_crashes"]`` either way.
        Only *verifier exceptions* (the ``error`` message kind) fail a
        job, matching the sequential driver's propagation.
        """
        self._last_reap = time.monotonic()
        failed = self.pool.failed_workers()
        for worker_id in failed:
            health = self._seat_health(worker_id)
            if not health.down:
                # Transition alive -> crashed: account exactly once per
                # crash (a corpse reaped again must not inflate the
                # streak) and price the respawn by the backoff schedule.
                health.down = True
                health.crashes += 1
                health.consecutive += 1
                health.delay = (
                    0.0
                    if health.consecutive <= 1
                    else min(
                        self.backoff_cap,
                        self.backoff_base * 2 ** (health.consecutive - 2),
                    )
                )
                health.not_before = self._last_reap + health.delay
            self.idle.discard(worker_id)
            for job in self.jobs.values():
                # A finished job's state is sealed: a crash arriving
                # between _maybe_finish and forget must not touch it.
                if not job.finished:
                    job.ready.discard(worker_id)
            held = self.assignments.pop(worker_id, None)
            if held is None:
                continue
            run_id, name = held
            job = self.jobs.get(run_id)
            if job is not None and not job.finished and name in job.pending:
                job.crashes += 1
                self._retry_or_give_up(job, name, worker_id)
        if self.revive_seats and not self.pool.closed:
            self._revive()
        if not self.pool.any_alive() and not self._revival_pending():
            self._degrade_all()

    def maintain(self) -> None:
        """Idle-time upkeep: account crashes and fire due respawns.

        The service dispatcher calls this between jobs so a seat whose
        backoff expires while the pool sits idle is revived promptly —
        returning to full strength must not wait for the next
        admission.  Throttled to a few liveness sweeps per second; a
        no-op outside revive mode or once the pool is closed.
        """
        if not self.revive_seats or self.pool.closed:
            return
        if time.monotonic() - self._last_reap < 0.2:
            return
        self._reap_crashed()

    def _revival_pending(self) -> bool:
        """True while a crashed seat will eventually respawn.

        Keeps :meth:`_degrade_all` honest under delayed revival: with
        every seat dead but a respawn merely waiting out its backoff,
        jobs must wait for the revived seat, not degrade to UNKNOWN.
        """
        return (
            self.revive_seats
            and not self.pool.closed
            and bool(self.pool.failed_workers())
        )

    def _retry_or_give_up(
        self, job: PooledJob, name: str, worker_id: int
    ) -> None:
        """One bounded retry for a property lost to a seat crash.

        The property goes to its job's backlog *front* (it already
        waited its turn once) and straight to an idle live seat when
        one is parked; with no live seat, a revivable scheduler keeps
        it queued — the next revived seat's ``ready`` ack drains the
        seatless backlog — while a non-revivable one degrades it to
        UNKNOWN here, never claiming a re-dispatch that could not
        execute.
        """
        revivable = self.revive_seats and not self.pool.closed
        if (
            name not in job.retried
            and not job.cancelled
            and (self.pool.any_alive() or revivable)
        ):
            job.retried.add(name)
            job.redispatched += 1
            job.backlog.insert(
                0,
                PropertyJob(
                    name=name,
                    per_property_time=job.job_time,
                    per_property_conflicts=job.options.per_property_conflicts,
                    engine=job.engine,
                    seed=job.seed,
                ),
            )
            job.emit(PropertyRequeued(name=name, worker=worker_id))
            for idle_worker in sorted(self.idle):
                if self.pool.worker_alive(idle_worker):
                    self._feed_seat(idle_worker)
                    break
            return
        job.emit(
            PropertySolved(name=name, status=PropStatus.UNKNOWN, local=True)
        )
        job.record(
            PropOutcome(name=name, status=PropStatus.UNKNOWN, local=True),
            checkpoint=False,
        )
        self._maybe_finish(job)

    def _revive(self) -> None:
        """Respawn dead seats whose backoff has elapsed; re-attach runs.

        Only seats the scheduler actually lost are touched (and hence
        accounted), via :meth:`WorkerPool.respawn_workers` — never seats
        another path happened to start.  A crash-looping seat is throttled
        by its own exponential schedule while healthy seats respawn
        immediately, so a long-lived service recovers full strength the
        moment the faulty environment heals.  Revived seats drain the
        backlogs of seatless jobs through their ``ready`` acks.
        """
        now = time.monotonic()
        due = [
            worker_id
            for worker_id in self.pool.failed_workers()
            if self._seat_health(worker_id).not_before <= now
        ]
        if not due:
            return
        fresh = self.pool.respawn_workers(due)
        for worker_id in fresh:
            self._seat_health(worker_id).down = False
            for job in self.live_jobs:
                self.pool.attach_worker(job.run_id, worker_id)
            if self.service_emit is not None:
                self.service_emit(WorkerStarted(worker=worker_id))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> PoolStats:
        """Snapshot pool occupancy and per-seat crash/backoff state."""
        pool = self.pool
        now = time.monotonic()
        job_ids = {
            job.run_id: (job.job_id or f"run-{job.run_id}")
            for job in self.jobs.values()
        }
        seats = []
        for worker_id in range(pool.workers):
            held = self.assignments.get(worker_id)
            health = self.seat_health.get(worker_id)
            down = health is not None and health.down
            seats.append(
                SeatStats(
                    worker=worker_id,
                    alive=pool.worker_alive(worker_id),
                    busy=held is not None,
                    job=job_ids.get(held[0]) if held else None,
                    prop=held[1] if held else None,
                    crashes=health.crashes if health else 0,
                    consecutive_crashes=health.consecutive if health else 0,
                    backoff_s=health.delay if down else 0.0,
                    respawn_in_s=(
                        max(0.0, health.not_before - now) if down else 0.0
                    ),
                    properties_served=health.served if health else 0,
                )
            )
        alive = sum(1 for seat in seats if seat.alive)
        return PoolStats(
            workers=pool.workers,
            alive=alive,
            busy=len(self.assignments),
            idle=max(0, alive - len(self.assignments)),
            open_runs=len(pool.open_runs),
            seats=tuple(seats),
            counters=dict(pool.stats),
        )

    def exchange_traffic(self) -> dict:
        """Clause-exchange totals: finished jobs plus live shard reads.

        Live jobs' shard managers can die mid-read; those are skipped
        rather than failing the snapshot.
        """
        totals = dict(self._exchange_totals)
        live = []
        for job in self.live_jobs:
            if job.exchange is None:
                continue
            try:
                stats = job.exchange.stats()
            except Exception:  # pragma: no cover - managers died
                continue
            live.append(
                {
                    "job": job.job_id or f"run-{job.run_id}",
                    "clauses": stats.get("clauses", 0),
                    "fetch_batches": stats.get("fetch_batches", 0),
                    "shards": stats.get("shards", []),
                }
            )
            for key in totals:
                totals[key] += stats.get(key, 0)
        return {**totals, "live": live}

    def _degrade_all(self) -> None:
        """No seat left alive: every live job's remainder goes UNKNOWN."""
        for job in self.live_jobs:
            self.pool.cancel_run(job.run_id)
            job.cancelled = True
            job.backlog = []
            for name in sorted(job.pending):
                job.record_cancelled(name, None, checkpoint=False)
            self._maybe_finish(job)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the message lease; tear down any unfinished job.

        Unfinished jobs only exist here on an exception path — shut
        their shard managers down and close their runs so a failed
        drive never leaks manager processes or open-run state.
        """
        for job in list(self.jobs.values()):
            if not job.finished:
                for manager in job.managers:
                    manager.shutdown()
                job.managers = []
                if not self.pool.closed:
                    self.pool.cancel_run(job.run_id)
                    self.pool.close_run(job.run_id)
        self.pool.release_messages(self)


# ----------------------------------------------------------------------
def _cone_descending(ts: TransitionSystem, order: list[str]) -> list[str]:
    """Jobs sorted by descending estimated COI size (ties keep order).

    Uses the same proof-hardness proxy as the ``"cone"`` property order
    (:func:`~repro.multiprop.ordering.cone_latches`) — here inverted:
    longest-processing-time-first list scheduling bounds the makespan
    much tighter than FIFO when property sizes are skewed.
    """
    from ..multiprop.ordering import cone_latches

    position = {name: i for i, name in enumerate(order)}
    return sorted(order, key=lambda n: (-cone_latches(ts, n), position[n]))


def _schedule_only(
    ts: TransitionSystem,
    options: ParallelOptions,
    design_name: str,
    emit: Emit,
    order: list[str],
) -> MultiPropReport:
    """The legacy Section 11 simulation, kept as an explicit mode.

    Standalone local proofs are measured sequentially and the makespan
    of scheduling them on the requested worker count is *projected*
    with greedy list scheduling; ``report.stats`` carries the
    projection next to the real sequential wall-clock.  Budget and
    engine knobs (conflicts, ctg, lifting mode, overrides) are honored;
    ``clause_reuse``/``exchange``/``coi_reduction`` deliberately are
    not — Table X measures proofs "generated independently of each
    other", which is what the projection models.
    """
    start = time.monotonic()
    sim = ParallelSimResult()
    report = MultiPropReport(method="parallel-ja", design=design_name)
    engine_overrides = dict(options.engine_overrides)
    engine_overrides.setdefault("ctg", options.ctg)
    engine_overrides.setdefault(
        "respect_constraints_in_lifting",
        options.respect_constraints_in_lifting,
    )
    engine_overrides.setdefault("solver_backend", options.solver_backend)
    for name in order:
        emit(PropertyStarted(name=name))
        one = measure_local_proofs(
            ts,
            [name],
            per_property_time=options.per_property_time,
            max_frames=options.max_frames,
            per_property_conflicts=options.per_property_conflicts,
            engine_overrides=engine_overrides,
        )
        sim.prop_times[name] = one.prop_times[name]
        sim.prop_frames[name] = one.prop_frames[name]
        sim.statuses[name] = one.statuses[name]
        status = PropStatus(one.statuses[name])
        report.outcomes[name] = PropOutcome(
            name=name,
            status=status,
            local=True,
            frames=one.prop_frames[name],
            time_seconds=one.prop_times[name],
            expected_to_fail=ts.prop_by_name[name].expected_to_fail,
        )
        emit(
            PropertySolved(
                name=name,
                status=status,
                local=True,
                time_seconds=one.prop_times[name],
            )
        )
        emit(BudgetCheckpoint(scope="total", elapsed=time.monotonic() - start))
    workers = options.resolve_workers(len(order)) if order else 1
    report.total_time = time.monotonic() - start
    report.stats = {
        "mode": "schedule_only",
        "workers": workers,
        "exchange": 0,
        "sequential_time": sim.sequential_time(),
        "simulated_makespan": sim.makespan(workers),
        "simulated_speedup": sim.speedup(workers),
    }
    return report


def parallel_ja_verify(
    ts: TransitionSystem,
    options: ParallelOptions | None = None,
    design_name: str = "design",
    emit: Emit | None = None,
) -> MultiPropReport:
    """Verify every property of ``ts`` with the process-parallel engine.

    Verdicts are the same as sequential JA-verification produces (local
    proofs are independent; clause exchange only changes how fast they
    finish), which the integration suite checks property-by-property.
    """
    opts = options or ParallelOptions()
    emit = emit_or_null(emit)
    order = list(opts.order) if opts.order else [p.name for p in ts.properties]
    unknown = set(order) - {p.name for p in ts.properties}
    if unknown:
        raise KeyError(f"unknown properties in order: {sorted(unknown)}")
    if not order:
        report = MultiPropReport(method="parallel-ja", design=design_name)
        report.stats = {"mode": "process", "workers": 0, "exchange": 0}
        return report
    if opts.schedule_only:
        return _schedule_only(ts, opts, design_name, emit, order)
    return _run_pooled(ts, opts, design_name, emit, order)


def _run_pooled(
    ts: TransitionSystem,
    opts: ParallelOptions,
    design_name: str,
    emit: Emit,
    order: list[str],
) -> MultiPropReport:
    """One job driven to completion on a single-job seat scheduler.

    This is the old exclusive engine expressed as the degenerate case
    of the multiplexer: one scheduler, one admitted job, drive, report.
    Everything after pool creation runs under the teardown guard — a
    bad shard spec or a failed manager start must not leak the worker
    processes just spawned.
    """
    start = time.monotonic()
    pool = opts.pool
    ephemeral = pool is None
    if ephemeral:
        pool = WorkerPool(
            workers=opts.resolve_workers(len(order)),
            start_method=opts.start_method,
        )
    scheduler = None
    job = None
    try:
        scheduler = SeatScheduler(pool)
        job = scheduler.admit(
            ts,
            opts,
            design_name,
            emit,
            order,
            pool_label="ephemeral" if ephemeral else "persistent",
            start=start,
        )
        scheduler.drive()
    finally:
        if scheduler is not None:
            scheduler.close()
        if ephemeral:
            pool.shutdown()
    if job.error is not None:
        raise job.error
    return job.build_report(pool)
