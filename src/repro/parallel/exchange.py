"""Cluster-sharded live clause exchange (the 10k-property scaling fix).

The single manager-hosted :class:`~repro.parallel.sharing.ClauseExchange`
serializes every ``publish``/``fetch`` of every worker through one
server object — fine at tens of properties, a bottleneck at the paper's
10k scale.  Clause traffic is also *wasted* across unrelated
properties: a strengthening clause learned while proving one property
only helps properties whose cones overlap, which is exactly what
:func:`repro.multiprop.clustering.cluster_properties` computes.

This module shards the exchange by property cluster:

* :func:`build_shard_map` groups the run's properties with the
  structural clustering (Jaccard similarity of latch cones) and assigns
  whole clusters to shards, biggest-cluster-first onto the least
  loaded shard, so same-cluster properties always share a shard;
* :class:`ExchangeShard` is one append-only deduplicated clause log —
  the same cursor protocol as the legacy exchange, plus per-shard
  traffic stats that record *which properties* published and fetched
  (the routing-isolation tests rely on this).  Fetch replies are
  **batched**: the whole cursor gap ships as one packed int64 buffer
  (:func:`pack_clauses`) instead of one pickled tuple per clause, and
  ``stats()["fetch_batches"]`` counts the non-empty replies;
* each shard is hosted in its **own** manager process
  (:func:`start_sharded_exchange`), so shards serialize independently
  and publish/fetch throughput scales with the shard count;
* :class:`ShardedExchange` is the picklable client-side router workers
  hold: ``publish``/``fetch`` take the property name and route to its
  shard, so a clause is only ever delivered to subscribers of the
  originating property's cluster — cross-shard deliveries are
  impossible by construction, and :meth:`ShardedExchange.routing_violations`
  proves it from the recorded per-shard traffic.

``shards=1`` degenerates to the old single-exchange behaviour (one log,
one manager); ``shards="auto"`` takes one shard per cluster, capped at
:data:`AUTO_SHARD_CAP` so a thousand singleton clusters do not spawn a
thousand manager processes.
"""

from __future__ import annotations

from array import array
from multiprocessing.managers import BaseManager
from collections.abc import Iterable, Mapping, MutableMapping, Sequence

from ..ts.system import TransitionSystem

Clause = tuple[int, ...]

#: Upper bound on ``shards="auto"`` (one manager process per shard).
AUTO_SHARD_CAP = 8


def pack_clauses(clauses: Sequence[Clause]) -> bytes:
    """Flatten a clause list into one length-prefixed int64 buffer.

    A manager proxy pickles whatever ``fetch`` returns; a list of many
    small tuples costs one pickle op *per clause per literal*, which at
    the paper's 10k-property scale dominates the reply.  The packed
    form — ``[len, lit, lit, ..., len, lit, ...]`` as a flat
    ``array('q')`` — serializes as a single bytes blob regardless of
    clause count: one message per cursor gap instead of one tuple per
    clause.
    """
    flat = array("q")
    for clause in clauses:
        flat.append(len(clause))
        flat.extend(clause)
    return flat.tobytes()


def unpack_clauses(blob: bytes) -> list[Clause]:
    """Inverse of :func:`pack_clauses` (client side of a fetch reply)."""
    flat = array("q")
    flat.frombytes(blob)
    clauses: list[Clause] = []
    i = 0
    end = len(flat)
    while i < end:
        width = flat[i]
        i += 1
        clauses.append(tuple(flat[i : i + width]))
        i += width
    return clauses


class ShardMap:
    """Property name -> shard index, plus the member sets per shard."""

    def __init__(self, assignment: Mapping[str, int], num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        bad = {n: s for n, s in assignment.items() if not 0 <= s < num_shards}
        if bad:
            raise ValueError(f"shard index out of range: {bad}")
        self._assignment = dict(assignment)
        self.num_shards = num_shards

    def shard_of(self, name: str) -> int:
        return self._assignment[name]

    def members(self, shard: int) -> tuple[str, ...]:
        return tuple(
            sorted(n for n, s in self._assignment.items() if s == shard)
        )

    def __len__(self) -> int:
        return len(self._assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(self.members(s)) for s in range(self.num_shards)]
        return f"ShardMap(shards={self.num_shards}, sizes={sizes})"


def build_shard_map(
    ts: TransitionSystem,
    names: Sequence[str],
    shards: int | str = 1,
    similarity_threshold: float = 0.5,
) -> ShardMap:
    """Assign the run's properties to exchange shards, cluster-whole.

    ``shards`` is a positive int (capped by the property count) or
    ``"auto"`` — one shard per structural cluster, capped at
    :data:`AUTO_SHARD_CAP`.  Clusters are never split across shards:
    the clusters are placed biggest-first onto the least-loaded shard
    (LPT balancing, the same heuristic the job dispatch uses), so
    same-cluster properties always exchange clauses while shard loads
    stay even.
    """
    from ..multiprop.clustering import cluster_properties

    wanted = set(names)
    clusters = [
        [n for n in cluster if n in wanted]
        for cluster in cluster_properties(ts, similarity_threshold)
    ]
    clusters = [c for c in clusters if c]
    if not clusters:
        return ShardMap({}, 1)
    if shards == "auto":
        num = min(len(clusters), AUTO_SHARD_CAP)
    elif isinstance(shards, int) and not isinstance(shards, bool):
        if shards < 1:
            raise ValueError(f"exchange shards must be >= 1, got {shards}")
        num = min(shards, len(wanted))
    else:
        raise ValueError(
            f"exchange shards must be a positive int or 'auto', got {shards!r}"
        )
    return shard_clusters(clusters, num)


def shard_clusters(clusters: Sequence[Sequence[str]], num_shards: int) -> ShardMap:
    """Place whole clusters onto ``num_shards`` shards, LPT-balanced.

    Biggest cluster first onto the least-loaded shard (ties: lowest
    shard index) — deterministic, balanced, and cluster-whole, so
    same-cluster properties always share a shard.  Exposed separately
    from :func:`build_shard_map` so tests can drive arbitrary cluster
    partitions without a transition system.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    order = sorted(
        range(len(clusters)), key=lambda i: (-len(clusters[i]), i)
    )
    loads = [0] * num_shards
    assignment: dict[str, int] = {}
    for i in order:
        shard = loads.index(min(loads))
        loads[shard] += len(clusters[i])
        for name in clusters[i]:
            assignment[name] = shard
    return ShardMap(assignment, num_shards)


class ExchangeShard:
    """One append-only deduplicated clause log (runs in its manager).

    The cursor protocol matches the legacy single exchange: workers
    ``fetch`` with the log length they have already seen, the log only
    grows, so a fetch never misses a clause published before its
    cursor.  On top of the legacy log this shard records which
    *properties* published and fetched — the stress/fuzz suite uses
    those sets to prove that no clause ever crossed a shard boundary.
    """

    def __init__(self, index: int = 0, members: Sequence[str] = ()) -> None:
        self.index = index
        self.members = tuple(members)
        self._log: list[Clause] = []
        self._seen = set()
        self._publishes = 0
        self._fetches = 0
        self._fetch_batches = 0
        self._publishers: set = set()
        self._fetchers: set = set()

    def publish(self, name: str, clauses: Iterable[Iterable[int]]) -> int:
        """Append ``name``'s new clauses (duplicates dropped); returns #new."""
        added = 0
        for clause in clauses:
            normalized = tuple(sorted((int(l) for l in clause), key=abs))
            if not normalized or normalized in self._seen:
                continue
            self._seen.add(normalized)
            self._log.append(normalized)
            added += 1
        self._publishes += 1
        self._publishers.add(name)
        return added

    def fetch(self, name: str, cursor: int) -> tuple[list[Clause], int]:
        """Clauses appended at or after ``cursor``, plus the new cursor."""
        blob, new_cursor = self.fetch_batch(name, cursor)
        return unpack_clauses(blob), new_cursor

    def fetch_batch(self, name: str, cursor: int) -> tuple[bytes, int]:
        """The cursor gap as **one** packed reply, plus the new cursor.

        This is what :class:`ShardedExchange` clients actually call:
        the whole gap travels as a single :func:`pack_clauses` buffer —
        one serialized message per fetch, however many clauses the gap
        holds.  ``stats()["fetch_batches"]`` counts the non-empty
        replies, so the reply-batching rate is observable per shard.
        """
        if cursor < 0:
            raise ValueError(f"cursor must be non-negative, got {cursor}")
        self._fetches += 1
        self._fetchers.add(name)
        gap = self._log[cursor:]
        if gap:
            self._fetch_batches += 1
        return pack_clauses(gap), len(self._log)

    def size(self) -> int:
        return len(self._log)

    def stats(self) -> dict:
        return {
            "shard": self.index,
            "members": list(self.members),
            "clauses": len(self._log),
            "publishes": self._publishes,
            "fetches": self._fetches,
            "fetch_batches": self._fetch_batches,
            "publishers": sorted(self._publishers),
            "fetchers": sorted(self._fetchers),
        }


class ShardedExchange:
    """Client-side router over the shard servers (picklable).

    Holds the :class:`ShardMap` plus one handle per shard — manager
    proxies in the real engine, in-process :class:`ExchangeShard`
    objects in unit tests.  Workers receive one instance per run and
    route every ``publish``/``fetch`` by the property name, so clause
    visibility is confined to the originating property's cluster.
    """

    def __init__(self, shard_map: ShardMap, shards: Sequence[object]) -> None:
        if len(shards) != shard_map.num_shards:
            raise ValueError(
                f"expected {shard_map.num_shards} shard handles, got {len(shards)}"
            )
        self.shard_map = shard_map
        self._shards = list(shards)

    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    def shard_of(self, name: str) -> int:
        return self.shard_map.shard_of(name)

    def publish(self, name: str, clauses: Iterable[Iterable[int]]) -> int:
        return self._shards[self.shard_of(name)].publish(name, clauses)

    def fetch(self, name: str, cursor: int) -> tuple[list[Clause], int]:
        """One batched round-trip per cursor gap (see ``fetch_batch``)."""
        blob, new_cursor = self._shards[self.shard_of(name)].fetch_batch(
            name, cursor
        )
        return unpack_clauses(blob), new_cursor

    def fetch_fresh(
        self, name: str, cursors: MutableMapping[int, int]
    ) -> list[Clause]:
        """Everything ``name``'s shard published since the last call.

        ``cursors`` is the caller's per-shard cursor table (one per
        worker in the engine), updated in place — cursors on *other*
        shards are untouched, which is what keeps routing strict.
        """
        shard = self.shard_of(name)
        fresh, cursors[shard] = self.fetch(name, cursors.get(shard, 0))
        return fresh

    def stats(self) -> dict:
        """Aggregated per-shard stats plus run totals."""
        per_shard = [self._shards[s].stats() for s in range(self.num_shards)]
        return {
            "shards": per_shard,
            "clauses": sum(s["clauses"] for s in per_shard),
            "publishes": sum(s["publishes"] for s in per_shard),
            "fetches": sum(s["fetches"] for s in per_shard),
            "fetch_batches": sum(s["fetch_batches"] for s in per_shard),
        }

    def routing_violations(self) -> int:
        """Traffic observed by a shard from a non-member property.

        Zero by construction when every client routes through this
        class; the stress suite asserts exactly that.
        """
        violations = 0
        for stats in self.stats()["shards"]:
            members = set(stats["members"])
            violations += len(set(stats["publishers"]) - members)
            violations += len(set(stats["fetchers"]) - members)
        return violations


class ShardManager(BaseManager):
    """Manager hosting one :class:`ExchangeShard` per shard process."""


ShardManager.register("ExchangeShard", ExchangeShard)


class ShardHost:
    """A persistent set of shard-manager processes, reused across jobs.

    The engine's per-run exchange spawns (and tears down) one manager
    process per shard per run — fine for one-shot runs, a systematic
    tax on a :class:`~repro.service.VerificationService` that keeps
    many jobs in flight: every live job would hold its own manager
    processes.  A host keeps one manager process per *shard index* for
    the service's lifetime; shard ``i`` of every job is hosted in
    manager ``i`` as its own :class:`ExchangeShard` object, so jobs
    stay fully isolated (separate logs, separate stats) while the
    process count stays bounded by the widest job, not the job count.
    Freeing is by proxy refcount: when a job's last proxy dies, the
    manager drops its shard objects.
    """

    def __init__(self, ctx=None) -> None:
        self._ctx = ctx
        self._managers: list[ShardManager] = []
        self._closed = False

    @property
    def processes(self) -> int:
        """Manager processes currently alive."""
        return len(self._managers)

    def open_shards(self, shard_map: ShardMap) -> ShardedExchange:
        """One fresh :class:`ExchangeShard` per shard, on pooled managers."""
        if self._closed:
            raise RuntimeError("ShardHost is shut down")
        while len(self._managers) < shard_map.num_shards:
            manager = ShardManager(ctx=self._ctx)
            manager.start()
            self._managers.append(manager)
        proxies = [
            self._managers[shard].ExchangeShard(
                shard, shard_map.members(shard)
            )
            for shard in range(shard_map.num_shards)
        ]
        return ShardedExchange(shard_map, proxies)

    def shutdown(self) -> None:
        """Stop every pooled manager process (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for manager in self._managers:
            manager.shutdown()
        self._managers = []


def start_sharded_exchange(
    shard_map: ShardMap, ctx=None
) -> tuple[list[ShardManager], ShardedExchange]:
    """One manager process per shard; returns ``(managers, exchange)``.

    The caller owns the managers and must ``shutdown()`` each after
    collecting :meth:`ShardedExchange.stats`; the returned exchange is
    picklable and is handed to worker processes per run.
    """
    managers: list[ShardManager] = []
    proxies: list[object] = []
    try:
        for shard in range(shard_map.num_shards):
            manager = ShardManager(ctx=ctx)
            manager.start()
            managers.append(manager)
            proxies.append(
                manager.ExchangeShard(shard, shard_map.members(shard))
            )
    except BaseException:
        for manager in managers:  # don't leak the shards already up
            manager.shutdown()
        raise
    return managers, ShardedExchange(shard_map, proxies)
