"""Per-property engine racing on the seat scheduler (portfolio mode).

The portfolio strategy races an *engine slate* — by default the random
walk falsifier, BMC, k-induction and the full IC3/JA ladder — on every
property: one :class:`~repro.parallel.engine.PooledJob` per
(property, engine) pair, admitted as siblings under one
:class:`~repro.parallel.engine.SeatScheduler`.  The first *definitive*
verdict (anything but UNKNOWN; the falsifier and BMC never return
HOLDS, so nothing unsound can win) decides the property; the losing
attempts are cancelled through the existing per-run cancellation path
(:meth:`SeatScheduler.cancel_job` -> ``WorkerPool.cancel_run``), and a
loser whose verdict still arrives after the decision is rejected by an
attempt *epoch* check — the race outcome can never be overwritten.

Arbitration is event-driven, not loop-driven: every attempt job's
``on_finish`` hook enqueues a tagged message on the controller's
``_attempt_queue`` and pumps it.  The pump is reentrancy-guarded —
cancelling a loser inside a decision synchronously finishes that
loser, whose hook enqueues its own message; the outer pump drains it.
That is what lets the controller run unchanged under both drivers: the
standalone :func:`portfolio_verify` loop and the
:class:`~repro.service.VerificationService` dispatcher, which only
ever calls ``scheduler.step()``.

The report finalizes as soon as every property is decided — losers
still occupying seats drain in the background (their per-property
budgets are clamped by the job's total), so portfolio wall-clock
tracks the *fastest* engine per property, not the slowest.
``report.stats["portfolio"]`` records, per property, the winning
engine, the race wall-clock and each loser's cancel latency (``None``
while the cancel is still in flight at report time).
"""

from __future__ import annotations

import queue as queue_mod
import time
from dataclasses import dataclass, field, replace
from collections.abc import Sequence

from ..engines.randomwalk import derive_seed
from ..engines.result import PropStatus
from ..multiprop.report import MultiPropReport, PropOutcome
from ..progress import (
    AttemptCancelled,
    AttemptStarted,
    BudgetCheckpoint,
    Emit,
    PoolAttached,
    PortfolioDecided,
    ProgressEvent,
    PropertyCancelled,
    PropertySolved,
    PropertyStarted,
    ShardOpened,
    WorkerStarted,
    emit_or_null,
)
from ..ts.projection import assumption_names
from ..ts.system import TransitionSystem
from .engine import ParallelOptions, PooledJob, SeatScheduler
from .pool import WorkerPool

__all__ = [
    "ENGINE_NAMES",
    "PortfolioController",
    "admit_portfolio",
    "parse_engine_slate",
    "portfolio_verify",
]

#: Engines the portfolio can race, in default (cheap-first) race order.
#: Cheap-first admission matters on a narrow pool: with fewer seats
#: than slate entries, the falsifier and BMC get seats first and decide
#: shallow failures before IC3 ever leaves the queue.
ENGINE_NAMES: tuple[str, ...] = ("rw", "bmc", "kind", "ic3")


def parse_engine_slate(spec: str | Sequence[str] | None) -> tuple[str, ...]:
    """Validate an engine-slate spec (comma string or sequence).

    ``None`` or an empty string means the full default slate.  Raises
    ``ValueError`` on unknown names, duplicates, or an empty explicit
    slate — the same message the config/CLI layers surface verbatim.
    """
    if spec is None:
        return ENGINE_NAMES
    if isinstance(spec, str):
        names = [part.strip() for part in spec.split(",") if part.strip()]
        if not names and not spec.strip():
            return ENGINE_NAMES
    else:
        names = list(spec)
    if not names:
        raise ValueError("portfolio engine slate must name at least one engine")
    unknown = sorted(set(names) - set(ENGINE_NAMES))
    if unknown:
        raise ValueError(
            f"unknown portfolio engine(s) {unknown}; "
            f"known: {list(ENGINE_NAMES)}"
        )
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate portfolio engine(s) in {names}")
    return tuple(names)


@dataclass
class _PropertyRace:
    """Controller-side state of one property's engine race."""

    name: str
    slate: tuple[str, ...]
    started_at: float
    #: Bumped exactly once, at decision time; an attempt whose stamped
    #: epoch no longer matches delivers a *stale* verdict.
    epoch: int = 0
    stamped: dict[str, int] = field(default_factory=dict)
    attempts: dict[str, PooledJob] = field(default_factory=dict)
    settled: set = field(default_factory=set)
    outcomes: dict[str, PropOutcome] = field(default_factory=dict)
    cancel_latencies: dict[str, float | None] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)
    decided: bool = False
    decided_at: float = 0.0
    winner: str | None = None
    wall_s: float = 0.0
    outcome: PropOutcome | None = None


class PortfolioController:
    """First-verdict-wins arbitration over sibling engine attempts.

    Duck-typed like a :class:`PooledJob` where the service touches it
    (``finished``, ``error``, ``cancel_all``/``build_report``), but it
    owns no run itself — every run belongs to one attempt job, so all
    pool bookkeeping stays on the existing per-run paths.
    """

    def __init__(
        self,
        scheduler: SeatScheduler,
        ts: TransitionSystem,
        options: ParallelOptions,
        design_name: str,
        emit: Emit | None,
        order: list[str],
        *,
        priority: float = 1.0,
        pool_label: str = "persistent",
        start: float | None = None,
        job_id: str | None = None,
        on_finish=None,
    ) -> None:
        self.scheduler = scheduler
        self.ts = ts
        self.options = options
        self.design_name = design_name
        self.emit = emit_or_null(emit)
        self.order = list(order)
        self.engines = parse_engine_slate(options.portfolio_engines)
        self.seed = options.seed
        self.job_id = job_id
        self.on_finish = on_finish
        self.run_id = None  # duck-typing: not a run-owning job
        self.start = time.monotonic() if start is None else start
        self.error: BaseException | None = None
        self.cancel_requested = False
        self._finished = False
        self._groups: dict[str, _PropertyRace] = {}
        self._attempt_queue: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
        self._pumping = False
        # Each attempt is its own scheduler job; split the job's weight
        # over the slate so one racing property collectively competes
        # like one parallel-ja property would.
        attempt_priority = priority / len(self.engines)
        first = True
        for name in self.order:
            group = _PropertyRace(
                name=name, slate=self.engines, started_at=self.start
            )
            self._groups[name] = group
            self.emit(
                PropertyStarted(
                    name=name, assumed=tuple(assumption_names(ts, name))
                )
            )
            for engine in self.engines:
                attempt_options = replace(
                    options,
                    order=[name],
                    exchange=False,  # attempts are single-property runs
                    portfolio_engines=None,
                )
                attempt_job_id = (
                    f"{job_id}:{name}:{engine}"
                    if job_id is not None
                    else f"{name}:{engine}"
                )
                sub_seed = (
                    derive_seed(self.seed, design_name, name)
                    if engine == "rw"
                    else None
                )
                job = scheduler.admit(
                    ts,
                    attempt_options,
                    design_name,
                    self._attempt_emit(name, engine, passthrough_setup=first),
                    [name],
                    priority=attempt_priority,
                    pool_label=pool_label,
                    start=self.start,
                    job_id=attempt_job_id,
                    on_finish=self._attempt_hook(name, engine),
                    engine=engine,
                    seed=sub_seed,
                )
                first = False
                group.attempts[engine] = job
                group.stamped[engine] = group.epoch
                self.emit(AttemptStarted(name=name, engine=engine))

    # ------------------------------------------------------------------
    # Attempt-side callbacks (run inside scheduler dispatch)
    # ------------------------------------------------------------------
    def _attempt_emit(self, name: str, engine: str, passthrough_setup: bool):
        """Per-attempt event filter: one canonical stream per property.

        Attempt-local lifecycle events are dropped (the controller
        emits the canonical ``PropertyStarted``/``PropertySolved`` and
        the attempt-level ``AttemptStarted``/``AttemptCancelled``);
        engine progress (frames, checkpoints, clause traffic) passes
        through.  Pool/worker setup events pass through only for the
        first attempt, so the pool attaches once, not once per attempt.
        """

        def attempt_emit(event: ProgressEvent) -> None:
            if isinstance(event, (PropertyStarted, PropertySolved, PropertyCancelled)):
                return
            if isinstance(event, BudgetCheckpoint) and event.scope == "total":
                return
            if isinstance(event, (WorkerStarted, PoolAttached, ShardOpened)):
                if passthrough_setup:
                    self.emit(event)
                return
            if self._groups[name].decided:
                return  # straggling loser progress: the race is over
            self.emit(event)

        return attempt_emit

    def _attempt_hook(self, name: str, engine: str):
        """The attempt job's ``on_finish``: enqueue its terminal tag, pump."""

        def attempt_finished(job: PooledJob) -> None:
            if job.error is not None:
                self._attempt_queue.put(("error", name, engine, job))
            elif job.cancelled:
                self._attempt_queue.put(("cancelled", name, engine, job))
            else:
                self._attempt_queue.put(("result", name, engine, job))
            self._pump()

        return attempt_finished

    def _pump(self) -> None:
        """Drain the attempt queue; reentrancy-safe.

        A decision cancels losers *inside* the pump; a queued loser
        finishes synchronously and its hook enqueues while we are still
        draining — the nested call just returns and the outer loop
        picks the message up.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            while True:
                try:
                    message = self._attempt_queue.get_nowait()
                except queue_mod.Empty:
                    break
                self._dispatch_attempt(message)
        finally:
            self._pumping = False

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------
    def _dispatch_attempt(self, message) -> None:
        kind = message[0]
        name, engine, job = message[1], message[2], message[3]
        group = self._groups[name]
        group.settled.add(engine)
        self.scheduler.forget(job)
        if kind == "result":
            outcome = job.outcomes.get(name)
            if group.epoch != group.stamped[engine]:
                # Stale loser: the race was decided while this verdict
                # was in flight.  Reject it — record only the cancel
                # acknowledgement latency.
                self._ack_loser(group, engine)
            elif outcome is not None and outcome.status is not PropStatus.UNKNOWN:
                group.outcomes[engine] = outcome
                self._decide(group, engine, outcome)
            else:
                if outcome is not None:
                    group.outcomes[engine] = outcome
                self._maybe_exhausted(group)
        elif kind == "cancelled":
            if group.decided:
                self._ack_loser(group, engine)
            else:
                # Cancelled without a decision: watchdog deadline or an
                # explicit job cancel.  No latency — nothing was raced.
                self.emit(AttemptCancelled(name=name, engine=engine))
                self._maybe_exhausted(group)
        elif kind == "error":
            group.errors.append(f"{engine}: {job.error}")
            if group.decided:
                self._ack_loser(group, engine)
            else:
                self._maybe_exhausted(group)
        self._maybe_finish()

    def _ack_loser(self, group: _PropertyRace, engine: str) -> None:
        latency = time.monotonic() - group.decided_at
        group.cancel_latencies[engine] = latency
        self.emit(
            AttemptCancelled(name=group.name, engine=engine, latency_s=latency)
        )

    def _decide(
        self, group: _PropertyRace, engine: str, outcome: PropOutcome
    ) -> None:
        group.decided = True
        group.epoch += 1
        group.decided_at = time.monotonic()
        group.winner = engine
        group.wall_s = group.decided_at - group.started_at
        group.outcome = outcome
        losers = tuple(e for e in group.slate if e != engine)
        self.emit(
            PortfolioDecided(
                name=group.name,
                winner=engine,
                status=outcome.status,
                wall_s=group.wall_s,
                losers=losers,
            )
        )
        self.emit(
            PropertySolved(
                name=group.name,
                status=outcome.status,
                local=outcome.local,
                time_seconds=outcome.time_seconds,
                cex_depth=outcome.cex_depth,
                assumed=tuple(outcome.assumed),
            )
        )
        for loser in losers:
            job = group.attempts[loser]
            if loser not in group.settled:
                group.cancel_latencies.setdefault(loser, None)
            if not job.finished and not job.cancelled:
                self.scheduler.cancel_job(job)

    def _maybe_exhausted(self, group: _PropertyRace) -> None:
        """Every attempt settled without a definitive verdict: UNKNOWN."""
        if group.decided or group.settled != set(group.slate):
            return
        group.decided = True
        group.epoch += 1
        group.decided_at = time.monotonic()
        group.winner = None
        group.wall_s = group.decided_at - group.started_at
        frames = max(
            (o.frames for o in group.outcomes.values()), default=0
        )
        group.outcome = PropOutcome(
            name=group.name,
            status=PropStatus.UNKNOWN,
            local=True,
            frames=frames,
            time_seconds=group.wall_s,
            expected_to_fail=self.ts.prop_by_name[group.name].expected_to_fail,
        )
        self.emit(
            PortfolioDecided(
                name=group.name,
                winner=None,
                status=PropStatus.UNKNOWN,
                wall_s=group.wall_s,
                losers=group.slate,
            )
        )
        self.emit(
            PropertySolved(
                name=group.name, status=PropStatus.UNKNOWN, local=True
            )
        )

    def _maybe_finish(self) -> None:
        if self._finished:
            return
        if not all(group.decided for group in self._groups.values()):
            return
        self._finished = True
        failures = [
            f"{group.name}: {error}"
            for group in self._groups.values()
            if group.winner is None and not self.cancel_requested
            for error in group.errors
        ]
        if failures:
            # An attempt raised *and* nobody else decided its property:
            # surface it exactly like a parallel-ja worker failure.
            self.error = RuntimeError(
                "portfolio attempt failure(s): " + "; ".join(failures)
            )
        if self.on_finish is not None:
            self.on_finish(self)

    # ------------------------------------------------------------------
    # Job-like surface (service duck-typing)
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def cancelled(self) -> bool:
        return self.cancel_requested

    def cancel_all(self) -> None:
        """Cancel every live attempt (service job cancel, watchdogs aside).

        Undecided properties settle to UNKNOWN as their attempts
        acknowledge; the controller finishes when the last one does.
        """
        if self._finished:
            return
        self.cancel_requested = True
        for group in self._groups.values():
            for job in group.attempts.values():
                if not job.finished and not job.cancelled:
                    self.scheduler.cancel_job(job)
        self._pump()

    def build_report(self, pool: WorkerPool) -> MultiPropReport:
        """The race's :class:`MultiPropReport` (property order preserved)."""
        report = MultiPropReport(method="portfolio", design=self.design_name)
        races: dict[str, dict] = {}
        for name in self.order:
            group = self._groups[name]
            outcome = group.outcome
            if outcome is None:  # pragma: no cover - defensive
                outcome = PropOutcome(
                    name=name, status=PropStatus.UNKNOWN, local=True
                )
            report.outcomes[name] = outcome
            races[name] = {
                "winner": group.winner,
                "status": outcome.status.value,
                "wall_s": group.wall_s,
                "cancelled": dict(group.cancel_latencies),
                "errors": list(group.errors),
            }
        report.total_time = time.monotonic() - self.start
        report.stats = {
            "mode": "portfolio",
            "workers": pool.workers,
            "engines": list(self.engines),
            "seed": self.seed,
            "exchange": 0,
            "portfolio": races,
        }
        return report


def admit_portfolio(
    scheduler: SeatScheduler,
    ts: TransitionSystem,
    options: ParallelOptions,
    design_name: str,
    emit: Emit | None,
    order: list[str],
    *,
    priority: float = 1.0,
    pool_label: str = "persistent",
    start: float | None = None,
    job_id: str | None = None,
    on_finish=None,
) -> PortfolioController:
    """Admit one portfolio race onto a (possibly shared) seat scheduler."""
    return PortfolioController(
        scheduler,
        ts,
        options,
        design_name,
        emit,
        order,
        priority=priority,
        pool_label=pool_label,
        start=start,
        job_id=job_id,
        on_finish=on_finish,
    )


def portfolio_verify(
    ts: TransitionSystem,
    options: ParallelOptions | None = None,
    design_name: str = "design",
    emit: Emit | None = None,
) -> MultiPropReport:
    """Race the engine slate on every property; first verdict wins.

    Verdict parity with sequential JA-verification is structural: every
    engine in the slate decides under the same local (``T^P``)
    semantics, provers (IC3/k-induction) alone may return HOLDS, and
    falsifier counterexamples are replay-validated before they are
    reported — so whichever attempt wins, the verdict is one sequential
    ``ja`` would also reach.  The parity suite asserts it end to end.
    """
    opts = options or ParallelOptions()
    emit = emit_or_null(emit)
    if opts.schedule_only:
        raise ValueError("the portfolio strategy has no schedule_only mode")
    order = list(opts.order) if opts.order else [p.name for p in ts.properties]
    unknown = set(order) - {p.name for p in ts.properties}
    if unknown:
        raise KeyError(f"unknown properties in order: {sorted(unknown)}")
    if not order:
        report = MultiPropReport(method="portfolio", design=design_name)
        report.stats = {
            "mode": "portfolio",
            "workers": 0,
            "engines": list(parse_engine_slate(opts.portfolio_engines)),
            "seed": opts.seed,
            "exchange": 0,
            "portfolio": {},
        }
        return report
    start = time.monotonic()
    slate = parse_engine_slate(opts.portfolio_engines)
    pool = opts.pool
    ephemeral = pool is None
    if ephemeral:
        pool = WorkerPool(
            workers=opts.resolve_workers(len(order) * len(slate)),
            start_method=opts.start_method,
        )
    scheduler = None
    controller = None
    try:
        scheduler = SeatScheduler(pool)
        controller = admit_portfolio(
            scheduler,
            ts,
            opts,
            design_name,
            emit,
            order,
            pool_label="ephemeral" if ephemeral else "persistent",
            start=start,
        )
        while not controller.finished:
            if not scheduler.live_jobs:  # pragma: no cover - defensive
                raise RuntimeError(
                    "portfolio race stalled: no live attempts but "
                    "undecided properties remain"
                )
            scheduler.step()
    finally:
        # The report is decided; attempts still draining are torn down
        # with their runs (losers by design never outlive the race).
        if scheduler is not None:
            scheduler.close()
        if ephemeral:
            pool.shutdown()
    if controller.error is not None:
        raise controller.error
    return controller.build_report(pool)
