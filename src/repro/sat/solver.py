"""A CDCL SAT solver in pure Python.

The solver implements the standard modern architecture:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with recursive clause minimization,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* activity-driven learned-clause database reduction,
* incremental solving under assumptions with final-conflict (core)
  extraction, MiniSat style.

The public API speaks signed DIMACS-style integers (``+v``/``-v``,
``v >= 1``).  Internally literals are packed as ``2*v (+) / 2*v+1 (-)``
(see :mod:`repro.sat.types`).

The solver is deliberately deterministic: given the same sequence of
``add_clause``/``solve`` calls it always explores the same search tree,
which the test-suite and the experiment harness rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .types import FALSE, TRUE, UNASSIGNED, Status, from_dimacs, to_dimacs

_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100


def luby(y: float, x: int) -> float:
    """The Luby restart sequence: 1 1 2 1 1 2 4 ... scaled by ``y``."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x = x % size
    return y**seq


class Solver:
    """Incremental CDCL SAT solver.

    Example
    -------
    >>> s = Solver()
    >>> s.add_clause([1, 2])
    True
    >>> s.add_clause([-1])
    True
    >>> s.solve()
    <Status.SAT: 1>
    >>> s.value(2)
    True

    The class attributes below are the tuning knobs that backend
    variants (e.g. ``cdcl-compact``) override; they never change
    soundness, only search behaviour and memory footprint.
    """

    #: Conflicts per restart unit (scaled by the Luby sequence).
    RESTART_UNIT = 100
    #: Luby sequence base for restart scheduling.
    LUBY_BASE = 2.0
    #: Learned-clause DB reduction threshold: base + slope * restarts/10.
    LEARNT_CAP_BASE = 4000
    LEARNT_CAP_SLOPE = 500
    #: Activity decay factors (variable / clause).
    VAR_DECAY = 0.95
    CLA_DECAY = 0.999

    def __init__(self) -> None:
        self.num_vars = 0
        # Per-variable state (index = internal var).
        self._assign: list[int] = []  # TRUE / FALSE / UNASSIGNED
        self._level: list[int] = []
        self._reason: list[list | None] = []
        self._activity: list[float] = []
        self._polarity: list[bool] = []  # saved phase; True = last was negative
        self._seen: list[bool] = []
        # Watches indexed by internal literal -> list of clauses.
        self._watches: list[list[list]] = []
        # Clause store. A clause is a plain list of internal lits; learned
        # clauses carry their activity in a parallel dict keyed by id().
        self._clauses: list[list] = []
        self._learnts: list[list] = []
        # Live-clause id sets: deletion (activation retirement) detaches
        # a clause and discards its id; the stale reference stays in the
        # store list until the next lazy compaction, which also keeps
        # the object alive so its id cannot be recycled while any
        # bookkeeping still points at it.
        self._clause_ids: set = set()
        self._learnt_ids: set = set()
        # Activation-literal bookkeeping: per live activation variable,
        # the clauses guarded by it and the learnt clauses mentioning
        # it; retired activation variables go to the free list and are
        # recycled by new_activation(), bounding variable growth on
        # long incremental runs.
        self._act_groups: dict = {}
        self._act_learnts: dict = {}
        self._act_free: list[int] = []
        self._cla_activity: dict = {}
        self._cla_inc = 1.0
        self._var_inc = 1.0
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._order_heap: list[tuple] = []  # lazy (-activity, var) heap
        self._in_heap: list[bool] = []
        self._ok = True
        self._model: list[int] = []
        self._conflict_core: frozenset = frozenset()
        self._assumptions: list[int] = []
        # Counters & budgets.  ``counters`` is the live dict; the
        # :class:`~repro.sat.backend.SatBackend` protocol reads a
        # snapshot through :meth:`stats`.
        self.counters = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "removed": 0,
            "minimized_lits": 0,
            "clauses_added": 0,
            "solves": 0,
            "activations_retired": 0,
            "activations_recycled": 0,
        }
        self._conflict_budget: int | None = None
        self._propagation_budget: int | None = None
        self._minimize_touched: list[int] = []
        self._budget_conflict_mark = 0
        self._budget_prop_mark = 0

    # ------------------------------------------------------------------
    # Variable / clause creation
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Create a fresh variable; returns its 1-based DIMACS index."""
        self.num_vars += 1
        self._assign.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(True)
        self._seen.append(False)
        self._watches.append([])
        self._watches.append([])
        self._in_heap.append(False)
        return self.num_vars

    def _ensure_var(self, var: int) -> None:
        while self.num_vars < var:
            self.new_var()

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause of signed DIMACS literals.

        Returns ``False`` if the formula became trivially unsatisfiable
        (an empty clause was derived at decision level 0).
        """
        if not self._ok:
            return False
        if self._trail_lim:
            raise RuntimeError("add_clause is only allowed at decision level 0")
        self.counters["clauses_added"] += 1
        internal = []
        for lit in lits:
            self._ensure_var(abs(lit))
            internal.append(from_dimacs(lit))
        # Sort/dedup; detect tautologies and already-falsified literals.
        internal = sorted(set(internal))
        out = []
        prev = -1
        for lit in internal:
            if lit == prev ^ 1 and prev != -1:
                return True  # tautology: contains l and ~l
            val = self._lit_value(lit)
            if val == TRUE and self._level[lit >> 1] == 0:
                return True  # satisfied at root
            if val == FALSE and self._level[lit >> 1] == 0:
                prev = lit
                continue  # drop root-falsified literal
            out.append(lit)
            prev = lit
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        self._attach(out)
        self._clauses.append(out)
        self._clause_ids.add(id(out))
        if self._act_groups:
            for lit in out:
                group = self._act_groups.get((lit >> 1) + 1)
                if group is not None:
                    group.append(out)
        return True

    def _attach(self, clause: list) -> None:
        self._watches[clause[0] ^ 1].append(clause)
        self._watches[clause[1] ^ 1].append(clause)

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        val = self._assign[lit >> 1]
        if val == UNASSIGNED:
            return UNASSIGNED
        return val ^ (lit & 1)

    def _enqueue(self, lit: int, reason: list | None) -> bool:
        val = self._lit_value(lit)
        if val != UNASSIGNED:
            return val == TRUE
        var = lit >> 1
        self._assign[var] = TRUE ^ (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    # ------------------------------------------------------------------
    # Unit propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> list | None:
        """Propagate all enqueued facts; return a conflicting clause or None."""
        watches = self._watches
        assign = self._assign
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.counters["propagations"] += 1
            falsified = lit ^ 1
            watch_list = watches[lit]
            new_list = []
            i = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                # Make sure the falsified literal is at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                v0 = assign[first >> 1]
                if v0 != UNASSIGNED and (v0 ^ (first & 1)) == TRUE:
                    new_list.append(clause)
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    lk = clause[k]
                    vk = assign[lk >> 1]
                    if vk == UNASSIGNED or (vk ^ (lk & 1)) == TRUE:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[clause[1] ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                new_list.append(clause)
                # Clause is unit or conflicting on `first`.
                if v0 == UNASSIGNED:
                    var = first >> 1
                    assign[var] = TRUE ^ (first & 1)
                    self._level[var] = len(self._trail_lim)
                    self._reason[var] = clause
                    self._trail.append(first)
                else:
                    # Conflict: restore remaining watches and bail out.
                    new_list.extend(watch_list[i:])
                    watches[lit] = new_list
                    self._qhead = len(self._trail)
                    return clause
            watches[lit] = new_list
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _analyze(self, conflict: list) -> tuple:
        """First-UIP learning. Returns (learnt_clause, backtrack_level)."""
        learnt = [0]  # placeholder for the asserting literal
        seen = self._seen
        level = self._level
        counter = 0
        lit = -1
        index = len(self._trail) - 1
        cur_level = self._decision_level()
        reason_lits: Iterable[int] = conflict
        self._bump_clause(conflict)
        while True:
            for q in reason_lits:
                if q == lit:
                    continue  # skip the literal we resolved on
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if level[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Pick the next literal on the trail to resolve on.
            while not seen[self._trail[index] >> 1]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
            assert reason is not None
            self._bump_clause(reason)
            reason_lits = reason
        learnt[0] = lit ^ 1
        # Clause minimization: drop literals implied by the rest.
        abstract_levels = 0
        for q in learnt[1:]:
            abstract_levels |= 1 << (level[q >> 1] & 31)
        minimized = [learnt[0]]
        to_clear = [q >> 1 for q in learnt[1:]]
        for q in learnt[1:]:
            seen[q >> 1] = True
        for q in learnt[1:]:
            if self._reason[q >> 1] is None or not self._lit_redundant(q, abstract_levels):
                minimized.append(q)
            else:
                self.counters["minimized_lits"] += 1
        for var in to_clear:
            seen[var] = False
        for var in self._minimize_touched:
            seen[var] = False
        self._minimize_touched = []
        learnt = minimized
        # Compute backtrack level: second-highest level in the clause.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for k in range(2, len(learnt)):
                if level[learnt[k] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = k
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = level[learnt[1] >> 1]
        return learnt, bt_level

    def _lit_redundant(self, lit: int, abstract_levels: int) -> bool:
        """Check whether ``lit`` is implied by the other learnt literals."""
        stack = [lit]
        top = len(self._minimize_touched)
        while stack:
            p = stack.pop()
            reason = self._reason[p >> 1]
            assert reason is not None
            for q in reason:
                if q == p or (q >> 1) == (p >> 1):
                    continue
                var = q >> 1
                if self._seen[var] or self._level[var] == 0:
                    continue
                if self._reason[var] is None or not (
                    (1 << (self._level[var] & 31)) & abstract_levels
                ):
                    # Undo the marks made during this check.
                    for marked in self._minimize_touched[top:]:
                        self._seen[marked] = False
                    del self._minimize_touched[top:]
                    return False
                self._seen[var] = True
                self._minimize_touched.append(var)
                stack.append(q)
        return True

    # ------------------------------------------------------------------
    # Activities
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _RESCALE_LIMIT:
            for i in range(self.num_vars):
                self._activity[i] *= _RESCALE_FACTOR
            self._var_inc *= _RESCALE_FACTOR
            self._rebuild_heap()
            return
        if self._assign[var] == UNASSIGNED:
            # Lazy heap: push an updated entry; stale ones are skipped on pop.
            import heapq

            heapq.heappush(self._order_heap, (-self._activity[var], var))
            self._in_heap[var] = True

    def _bump_clause(self, clause: list) -> None:
        key = id(clause)
        if key in self._cla_activity:
            self._cla_activity[key] += self._cla_inc
            if self._cla_activity[key] > _RESCALE_LIMIT:
                for k in self._cla_activity:
                    self._cla_activity[k] *= _RESCALE_FACTOR
                self._cla_inc *= _RESCALE_FACTOR

    def _decay_activities(self) -> None:
        self._var_inc /= self.VAR_DECAY
        self._cla_inc /= self.CLA_DECAY

    # ------------------------------------------------------------------
    # Decision heuristic (lazy binary heap over activities)
    # ------------------------------------------------------------------
    def _rebuild_heap(self) -> None:
        import heapq

        self._order_heap = [
            (-self._activity[v], v)
            for v in range(self.num_vars)
            if self._assign[v] == UNASSIGNED
        ]
        for v in range(self.num_vars):
            self._in_heap[v] = self._assign[v] == UNASSIGNED
        heapq.heapify(self._order_heap)

    def _heap_push(self, var: int) -> None:
        import heapq

        heapq.heappush(self._order_heap, (-self._activity[var], var))
        self._in_heap[var] = True

    def _pick_branch_var(self) -> int:
        import heapq

        heap = self._order_heap
        activity = self._activity
        assign = self._assign
        while heap:
            neg_act, var = heapq.heappop(heap)
            if assign[var] != UNASSIGNED:
                continue
            if -neg_act != activity[var]:
                continue  # stale entry; a fresher one exists
            self._in_heap[var] = False
            return var
        # Heap exhausted: linear scan fallback (covers vars never pushed).
        best, best_act = -1, -1.0
        for v in range(self.num_vars):
            if assign[v] == UNASSIGNED and activity[v] > best_act:
                best, best_act = v, activity[v]
        return best

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for idx in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[idx]
            var = lit >> 1
            self._assign[var] = UNASSIGNED
            self._polarity[var] = bool(lit & 1)
            self._reason[var] = None
            self._heap_push(var)
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Learned-clause DB reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        acts = self._cla_activity
        locked = set()
        for var in range(self.num_vars):
            r = self._reason[var]
            if r is not None:
                locked.add(id(r))
        self._learnts.sort(key=lambda c: acts.get(id(c), 0.0))
        keep_from = len(self._learnts) // 2
        kept = []
        for i, clause in enumerate(self._learnts):
            if id(clause) not in self._learnt_ids:
                continue  # deleted by activation retirement: drop the ref
            if i >= keep_from or id(clause) in locked or len(clause) == 2:
                kept.append(clause)
            else:
                self._detach(clause)
                self._learnt_ids.discard(id(clause))
                acts.pop(id(clause), None)
                self.counters["removed"] += 1
        self._learnts = kept

    def _detach(self, clause: list) -> None:
        for w in (clause[0] ^ 1, clause[1] ^ 1):
            lst = self._watches[w]
            for i, c in enumerate(lst):
                if c is clause:
                    lst[i] = lst[-1]
                    lst.pop()
                    break

    # ------------------------------------------------------------------
    # Budgets
    # ------------------------------------------------------------------
    def set_budget(
        self, conflicts: int | None = None, propagations: int | None = None
    ) -> None:
        """Limit the next ``solve`` call; it returns UNKNOWN when exceeded."""
        self._conflict_budget = conflicts
        self._propagation_budget = propagations

    def _within_budget(self) -> bool:
        if (
            self._conflict_budget is not None
            and self.counters["conflicts"] >= self._budget_conflict_mark + self._conflict_budget
        ):
            return False
        if (
            self._propagation_budget is not None
            and self.counters["propagations"]
            >= self._budget_prop_mark + self._propagation_budget
        ):
            return False
        return True

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> Status:
        """Solve under the given signed assumption literals."""
        self._model = []
        self._conflict_core = frozenset()
        self.counters["solves"] += 1
        if not self._ok:
            return Status.UNSAT
        for lit in assumptions:
            self._ensure_var(abs(lit))
        self._assumptions = [from_dimacs(lit) for lit in assumptions]
        self._budget_conflict_mark = self.counters["conflicts"]
        self._budget_prop_mark = self.counters["propagations"]
        # (Re)seed the decision heap.
        for var in range(self.num_vars):
            if not self._in_heap[var] and self._assign[var] == UNASSIGNED:
                self._heap_push(var)

        restarts = 0
        while True:
            budget = int(luby(self.LUBY_BASE, restarts) * self.RESTART_UNIT)
            status = self._search(budget)
            restarts += 1
            if status is not None:
                self._cancel_until(0)
                return status
            self.counters["restarts"] += 1
            if not self._within_budget():
                self._cancel_until(0)
                return Status.UNKNOWN

    def _search(self, conflict_budget: int) -> Status | None:
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.counters["conflicts"] += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return Status.UNSAT
                if self._decision_level() <= len(self._assumptions):
                    # Conflict under assumptions: compute the failed core.
                    self._conflict_core = self._analyze_final(conflict)
                    return Status.UNSAT
                learnt, bt_level = self._analyze(conflict)
                self._cancel_until(max(bt_level, 0))
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    self._learnts.append(learnt)
                    self._learnt_ids.add(id(learnt))
                    self._cla_activity[id(learnt)] = self._cla_inc
                    self._attach(learnt)
                    self._enqueue(learnt[0], learnt)
                    if self._act_groups:
                        # Learnts mentioning an activation variable are
                        # consequences of its clause group; retiring the
                        # group must delete them too.
                        for lit in learnt:
                            var1 = (lit >> 1) + 1
                            if var1 in self._act_groups:
                                self._act_learnts.setdefault(var1, []).append(
                                    learnt
                                )
                self.counters["learned"] += 1
                self._decay_activities()
                if not self._within_budget():
                    return None
                if conflicts_here >= conflict_budget:
                    self._cancel_until(len(self._assumptions))
                    return None
                if (
                    len(self._learnts)
                    > self.LEARNT_CAP_BASE
                    + self.LEARNT_CAP_SLOPE * self.counters["restarts"] // 10
                ):
                    self._reduce_db()
            else:
                # Place assumptions as pseudo-decisions.
                if self._decision_level() < len(self._assumptions):
                    lit = self._assumptions[self._decision_level()]
                    val = self._lit_value(lit)
                    if val == TRUE:
                        self._trail_lim.append(len(self._trail))
                        continue
                    if val == FALSE:
                        self._conflict_core = self._analyze_final_lit(lit)
                        return Status.UNSAT
                    self.counters["decisions"] += 1
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(lit, None)
                    continue
                var = self._pick_branch_var()
                if var == -1:
                    # All variables assigned: SAT.
                    self._model = list(self._assign)
                    return Status.SAT
                self.counters["decisions"] += 1
                self._trail_lim.append(len(self._trail))
                lit = var * 2 + (1 if self._polarity[var] else 0)
                self._enqueue(lit, None)

    # ------------------------------------------------------------------
    # Final-conflict (assumption core) analysis
    # ------------------------------------------------------------------
    def _analyze_final_lit(self, failing: int) -> frozenset:
        """Core when an assumption literal is already false on the trail."""
        core = {failing ^ 1}
        seen = self._seen
        touched = []
        var0 = failing >> 1
        if self._level[var0] > 0:
            seen[var0] = True
            touched.append(var0)
        for idx in range(len(self._trail) - 1, -1, -1):
            lit = self._trail[idx]
            var = lit >> 1
            if not seen[var]:
                continue
            reason = self._reason[var]
            if reason is None:
                core.add(lit ^ 1)
            else:
                for q in reason:
                    if (q >> 1) != var and self._level[q >> 1] > 0 and not seen[q >> 1]:
                        seen[q >> 1] = True
                        touched.append(q >> 1)
            seen[var] = False
        for var in touched:
            seen[var] = False
        return frozenset(to_dimacs(l ^ 1) for l in core)

    def _analyze_final(self, conflict: list) -> frozenset:
        """Failed-assumption core from a conflict clause under assumptions."""
        seen = self._seen
        touched = []
        core_internal = set()
        for q in conflict:
            var = q >> 1
            if self._level[var] > 0:
                seen[var] = True
                touched.append(var)
        for idx in range(len(self._trail) - 1, -1, -1):
            lit = self._trail[idx]
            var = lit >> 1
            if not seen[var]:
                continue
            reason = self._reason[var]
            if reason is None:
                core_internal.add(lit)
            else:
                for q in reason:
                    qv = q >> 1
                    if qv != var and self._level[qv] > 0 and not seen[qv]:
                        seen[qv] = True
                        touched.append(qv)
            seen[var] = False
        for var in touched:
            seen[var] = False
        assumed = set(self._assumptions)
        return frozenset(
            to_dimacs(l) for l in core_internal if l in assumed
        )

    # ------------------------------------------------------------------
    # Activation literals (incremental clause groups)
    # ------------------------------------------------------------------
    def new_activation(self) -> int:
        """An activation literal for a retractable clause group.

        Add clauses as ``[-act] + clause`` and pass ``act`` as an
        assumption to enable the group; call :meth:`retire` to disable
        the group permanently.  Retired activation variables are
        *recycled*: the next ``new_activation`` reuses the variable
        (``stats()["activations_recycled"]``) instead of growing the
        variable count, which is what keeps long incremental runs —
        IC3 retires one query-local activation per consecution query —
        from growing the solver without bound.  A guarded clause must
        belong to exactly one group (one activation literal per
        clause), which is how every engine uses the API.
        """
        if self._act_free:
            act = self._act_free.pop()
            self.counters["activations_recycled"] += 1
        else:
            act = self.new_var()
        self._act_groups[act] = []
        return act

    def retire(self, act: int) -> None:
        """Permanently disable the clause group guarded by ``act``.

        For a tracked activation variable (from :meth:`new_activation`)
        this is a *hard* retirement: the group's clauses — and every
        learnt clause mentioning the variable, since those are
        consequences of the group — are deleted from the clause store
        and watch lists, and the variable returns to the free list for
        recycling.  The one exception is a variable pinned at root
        (a group clause collapsed to the unit ``[-act]``): its
        assignment already disables the group forever, but the variable
        cannot be reused, so it is simply abandoned.

        A plain variable never registered as an activation literal gets
        the legacy soft retirement (a root unit ``[-act]``), kept for
        direct callers.
        """
        if act < 1 or act > self.num_vars:
            raise ValueError(f"unknown activation literal {act}")
        group = self._act_groups.get(act)
        if group is None:
            self.add_clause([-act])
            self.counters["activations_retired"] += 1
            return
        if self._trail_lim:
            # Raise before mutating any bookkeeping so a caller that
            # backtracks to level 0 can retry the retirement cleanly.
            raise RuntimeError("retire is only allowed at decision level 0")
        del self._act_groups[act]
        self.counters["activations_retired"] += 1
        dependents = self._act_learnts.pop(act, [])
        if self._assign[act - 1] != UNASSIGNED:
            # Pinned at root: the group is already permanently decided;
            # deleting its clauses could dangle root reasons, and the
            # variable must never be reused.  Abandon it.
            return
        for clause in group:
            cid = id(clause)
            if cid in self._clause_ids:
                self._clause_ids.discard(cid)
                self._unlink(clause)
        for clause in dependents:
            cid = id(clause)
            if cid in self._learnt_ids:
                self._learnt_ids.discard(cid)
                self._unlink(clause)
                self._cla_activity.pop(cid, None)
        self._act_free.append(act)
        self._compact_stores()

    def _unlink(self, clause: list) -> None:
        """Detach a deleted clause and clear any reason pointing at it."""
        if len(clause) >= 2:
            self._detach(clause)
        for lit in clause[:2]:
            var = lit >> 1
            if self._reason[var] is clause:
                self._reason[var] = None

    def _compact_stores(self) -> None:
        """Drop stale references to deleted clauses (amortized O(1)).

        Deleted clauses stay in the store lists (keeping their ids
        alive for the membership checks above) until they outnumber the
        live ones; then one linear sweep reclaims the memory.
        """
        if len(self._clauses) > 64 and len(self._clauses) > 2 * len(self._clause_ids):
            self._clauses = [
                c for c in self._clauses if id(c) in self._clause_ids
            ]
        if len(self._learnts) > 64 and len(self._learnts) > 2 * len(self._learnt_ids):
            self._learnts = [
                c for c in self._learnts if id(c) in self._learnt_ids
            ]
        # Long-lived activation variables (IC3's per-frame literals are
        # never retired) would otherwise pin every learnt that ever
        # mentioned them, even after _reduce_db dropped it.
        tracked = sum(len(refs) for refs in self._act_learnts.values())
        if tracked > 64 and tracked > 2 * len(self._learnt_ids):
            for var, refs in list(self._act_learnts.items()):
                live = [c for c in refs if id(c) in self._learnt_ids]
                if live:
                    self._act_learnts[var] = live
                else:
                    del self._act_learnts[var]

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """A snapshot of the solver's work counters (SatBackend API)."""
        return dict(self.counters)

    def value(self, lit: int) -> bool | None:
        """Model value of a signed literal after a SAT answer."""
        if not self._model:
            return None
        var = abs(lit) - 1
        if var >= len(self._model):
            return None
        val = self._model[var]
        if val == UNASSIGNED:
            return None
        truth = val == TRUE
        return truth if lit > 0 else not truth

    def model(self) -> list[int]:
        """The model as a list of signed literals (one per variable)."""
        out = []
        for var, val in enumerate(self._model):
            if val == UNASSIGNED:
                continue
            out.append(var + 1 if val == TRUE else -(var + 1))
        return out

    def core(self) -> frozenset:
        """Failed assumptions (signed) after an UNSAT answer under assumptions."""
        return self._conflict_core

    @property
    def ok(self) -> bool:
        """False once the clause set is unsatisfiable at level 0."""
        return self._ok

    def num_clauses(self) -> int:
        return len(self._clause_ids)

    def num_learnts(self) -> int:
        return len(self._learnt_ids)
