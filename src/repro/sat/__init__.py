"""Pure-Python CDCL SAT solver (substrate for all model-checking engines).

Public API:

* :class:`Solver` — incremental CDCL solver over signed DIMACS literals.
* :class:`Status` — SAT / UNSAT / UNKNOWN.
* :func:`parse_dimacs` / :func:`write_dimacs` — DIMACS CNF I/O.
"""

from .dimacs import dimacs_str, parse_dimacs, write_dimacs
from .solver import Solver, luby
from .types import Status, from_dimacs, to_dimacs

__all__ = [
    "Solver",
    "Status",
    "luby",
    "parse_dimacs",
    "write_dimacs",
    "dimacs_str",
    "from_dimacs",
    "to_dimacs",
]
