"""Pure-Python CDCL SAT solvers (substrate for all model-checking engines).

Public API:

* :class:`SatBackend` — the incremental-solver protocol every engine
  speaks (clauses, assumption solves, activation-literal retirement);
* :func:`register_backend` / :func:`create_solver` /
  :func:`available_backends` — the pluggable backend registry;
* :class:`Solver` — the reference ``cdcl`` backend over signed DIMACS
  literals; :class:`CompactSolver` — the ``cdcl-compact`` variant.
* :class:`Status` — SAT / UNSAT / UNKNOWN.
* :func:`parse_dimacs` / :func:`write_dimacs` — DIMACS CNF I/O.
"""

from .backend import (
    BACKEND_ENV_VAR,
    CompactSolver,
    SatBackend,
    UnknownBackendError,
    available_backends,
    create_solver,
    default_backend,
    get_backend,
    register_backend,
    unregister_backend,
)
from .dimacs import dimacs_str, parse_dimacs, write_dimacs
from .solver import Solver, luby
from .types import Status, from_dimacs, to_dimacs

__all__ = [
    "Solver",
    "CompactSolver",
    "SatBackend",
    "Status",
    "BACKEND_ENV_VAR",
    "UnknownBackendError",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "create_solver",
    "default_backend",
    "available_backends",
    "luby",
    "parse_dimacs",
    "write_dimacs",
    "dimacs_str",
    "from_dimacs",
    "to_dimacs",
]
