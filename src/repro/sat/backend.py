"""The incremental SAT backend API: protocol, registry, builtin backends.

Every engine in :mod:`repro.engines` speaks to its solver exclusively
through the :class:`SatBackend` protocol — fresh variables, clause
insertion, assumption-based ``solve`` with failed-assumption cores, and
activation-literal retirement for retractable clause groups.  Engines
never instantiate :class:`~repro.sat.solver.Solver` directly; they call
:func:`create_solver` with a backend *name*, resolved through a registry
that mirrors the strategy registry of :mod:`repro.session.registry`:

    from repro.sat import register_backend

    @register_backend("my-solver")
    class MySolver:
        \"\"\"One-line description shown by --list-backends.\"\"\"
        ...

Two backends ship builtin:

* ``cdcl`` — the reference pure-Python CDCL solver;
* ``cdcl-compact`` — the same search core tuned for a smaller memory
  footprint (tighter learned-clause database, shorter restarts), the
  proof that a second backend plugs in without touching any engine.

The process-wide default backend is ``cdcl``; the ``REPRO_SAT_BACKEND``
environment variable overrides it (this is how the CI matrix runs the
whole fast suite on the alternate backend), and every config surface
(:class:`~repro.session.config.VerificationConfig.solver_backend`,
CLI ``--backend``, engine options) overrides the environment.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from typing import Protocol, runtime_checkable

from .solver import Solver
from .types import Status

#: Environment variable naming the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_SAT_BACKEND"


class UnknownBackendError(KeyError):
    """Lookup of a SAT backend name that is not registered."""

    def __init__(self, name: str, available: list) -> None:
        super().__init__(name)
        self.name = name
        self.available = available

    def __str__(self) -> str:
        return (
            f"unknown SAT backend {self.name!r}; "
            f"available: {', '.join(self.available) or '(none)'}"
        )


@runtime_checkable
class SatBackend(Protocol):
    """What every engine requires of a pluggable incremental SAT solver.

    The contract is MiniSat-shaped and *incremental*: one instance
    absorbs clauses over its whole lifetime, answers many ``solve``
    calls under varying assumption sets, and supports retractable
    clause groups through activation literals, so repeated
    nearly-identical queries (IC3 consecution, BMC depth extension)
    never pay re-encoding costs.
    """

    num_vars: int

    def new_var(self) -> int:
        """Create a fresh variable; returns its 1-based DIMACS index."""
        ...  # pragma: no cover - protocol

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Insert a clause of signed DIMACS literals (level 0 only)."""
        ...  # pragma: no cover - protocol

    def solve(self, assumptions: Sequence[int] = ()) -> Status:
        """Decide satisfiability under the given assumption literals."""
        ...  # pragma: no cover - protocol

    def value(self, lit: int) -> bool | None:
        """Model value of a signed literal after a SAT answer."""
        ...  # pragma: no cover - protocol

    def core(self) -> frozenset:
        """Failed assumptions after an UNSAT answer under assumptions."""
        ...  # pragma: no cover - protocol

    def new_activation(self) -> int:
        """A fresh activation literal guarding a retractable clause group."""
        ...  # pragma: no cover - protocol

    def retire(self, act: int) -> None:
        """Permanently disable the clause group guarded by ``act``."""
        ...  # pragma: no cover - protocol

    def stats(self) -> dict[str, int]:
        """A snapshot of work counters (``clauses_added``, ``conflicts``, ...)."""
        ...  # pragma: no cover - protocol


#: A backend factory: a zero-argument callable producing a fresh solver.
BackendFactory = Callable[[], SatBackend]

_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(
    name: str, *, replace: bool = False
) -> Callable[[type], type]:
    """Class decorator: register a :class:`SatBackend` factory under ``name``.

    Unlike strategies (stateless adapters, instantiated once), backends
    are *factories*: every engine query context gets its own fresh
    solver instance, so the class itself is registered and instantiated
    per :func:`create_solver` call.  Re-registration raises unless
    ``replace=True``.
    """

    def decorator(cls: type) -> type:
        if name in _REGISTRY and not replace:
            raise ValueError(f"SAT backend {name!r} is already registered")
        _REGISTRY[name] = cls
        return cls

    return decorator


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> BackendFactory:
    """Resolve a backend name; raises :class:`UnknownBackendError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, sorted(_REGISTRY)) from None


def available_backends() -> dict[str, str]:
    """Registered names mapped to one-line descriptions.

    The description is the first line of the factory's docstring —
    exactly what ``python -m repro --list-backends`` prints.
    """
    out: dict[str, str] = {}
    for name in sorted(_REGISTRY):
        doc = (_REGISTRY[name].__doc__ or "").strip()
        out[name] = doc.splitlines()[0] if doc else ""
    return out


def default_backend() -> str:
    """The process-wide default backend name.

    ``REPRO_SAT_BACKEND`` overrides the builtin ``"cdcl"`` default; an
    unregistered value raises immediately rather than at first solve.
    """
    name = os.environ.get(BACKEND_ENV_VAR, "").strip() or "cdcl"
    get_backend(name)  # fail fast on unknown names
    return name


def create_solver(backend: str | None = None) -> SatBackend:
    """Instantiate a fresh solver from a backend name.

    ``None`` resolves through :func:`default_backend` (environment,
    then ``"cdcl"``); this is the single constructor every engine uses.
    """
    return get_backend(backend if backend is not None else default_backend())()


# ----------------------------------------------------------------------
# Builtin backends
# ----------------------------------------------------------------------
register_backend("cdcl")(Solver)


@register_backend("cdcl-compact")
class CompactSolver(Solver):
    """Memory-lean CDCL variant: tight learned-clause DB, short restarts.

    The same two-watched-literal search core as ``cdcl``, tuned for the
    many-small-queries regime of incremental model checking: the
    learned-clause database is reduced an order of magnitude earlier
    (bounding resident clause memory on long IC3 runs) and restarts
    fire on a shorter Luby unit, which favours the shallow conflicts
    typical of consecution queries over deep monolithic searches.
    """

    RESTART_UNIT = 64
    LEARNT_CAP_BASE = 500
    LEARNT_CAP_SLOPE = 150
