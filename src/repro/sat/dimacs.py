"""Reading and writing DIMACS CNF files.

Used for debugging and for exporting the CNF instances that the engines
construct, so that runs can be cross-checked against external solvers
when one is available.
"""

from __future__ import annotations

from typing import TextIO


def parse_dimacs(text: str) -> tuple[int, list[list[int]]]:
    """Parse DIMACS CNF text into ``(num_vars, clauses)``.

    Accepts comment lines (``c ...``), a problem line (``p cnf V C``), and
    whitespace-separated clause literals terminated by ``0``.  The clause
    count on the problem line is not enforced (many real files get it
    wrong); the variable count is taken as a lower bound.
    """
    num_vars = 0
    clauses: list[list[int]] = []
    current: list[int] = []
    saw_problem_line = False
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            saw_problem_line = True
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                num_vars = max(num_vars, abs(lit))
                current.append(lit)
    if current:
        clauses.append(current)
    if not saw_problem_line and not clauses:
        raise ValueError("not a DIMACS CNF file (no problem line, no clauses)")
    return num_vars, clauses


def write_dimacs(stream: TextIO, num_vars: int, clauses: list[list[int]], comment: str = "") -> None:
    """Write clauses in DIMACS CNF format to a text stream."""
    if comment:
        for line in comment.splitlines():
            stream.write(f"c {line}\n")
    stream.write(f"p cnf {num_vars} {len(clauses)}\n")
    for clause in clauses:
        stream.write(" ".join(str(lit) for lit in clause))
        stream.write(" 0\n")


def dimacs_str(num_vars: int, clauses: list[list[int]], comment: str = "") -> str:
    """Render clauses as a DIMACS CNF string."""
    import io

    buf = io.StringIO()
    write_dimacs(buf, num_vars, clauses, comment)
    return buf.getvalue()
