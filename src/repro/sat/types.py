"""Core literal/variable types for the CDCL solver.

Literals use the MiniSat convention: a variable ``v`` (a non-negative
integer) yields the positive literal ``2*v`` and the negative literal
``2*v + 1``.  This packs sign and variable into one int, which keeps the
watched-literal machinery allocation-free in Python.

The user-facing API of :class:`repro.sat.solver.Solver` uses *signed*
DIMACS-style integers (``+v`` / ``-v`` with ``v >= 1``); the helpers here
convert between the two conventions.
"""

from __future__ import annotations

from enum import IntEnum

# Truth values.  We use small ints rather than an Enum in the hot paths;
# the Enum exists for readable results at the API boundary.
TRUE = 1
FALSE = 0
UNASSIGNED = 2


class Status(IntEnum):
    """Result of a solver invocation."""

    SAT = 1
    UNSAT = 0
    UNKNOWN = 2


def mklit(var: int, negative: bool = False) -> int:
    """Build an internal literal from a 0-based variable index."""
    return var * 2 + (1 if negative else 0)


def lit_var(lit: int) -> int:
    """The 0-based variable index of an internal literal."""
    return lit >> 1


def lit_neg(lit: int) -> int:
    """Negation of an internal literal."""
    return lit ^ 1


def lit_sign(lit: int) -> bool:
    """True if the internal literal is negative."""
    return bool(lit & 1)


def from_dimacs(lit: int) -> int:
    """Convert a signed DIMACS literal (1-based, non-zero) to internal form."""
    if lit == 0:
        raise ValueError("DIMACS literal must be non-zero")
    var = abs(lit) - 1
    return mklit(var, lit < 0)


def to_dimacs(lit: int) -> int:
    """Convert an internal literal to signed DIMACS form."""
    var = lit_var(lit) + 1
    return -var if lit_sign(lit) else var
