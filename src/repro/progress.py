"""Typed progress events streamed by engines and drivers.

Every verification layer (the IC3/BMC engines, the multi-property
drivers, the :class:`repro.session.Session` facade) reports progress by
calling an ``emit`` callback with one of the frozen dataclasses below.
The callback signature is ``Callable[[ProgressEvent], None]``; ``None``
everywhere means "stay silent", so engines pay nothing when nobody
listens.

The event vocabulary mirrors what the paper's tables measure:

* :class:`PropertyStarted` / :class:`PropertySolved` — exactly one
  ``PropertySolved`` per property verdict (local or global);
  ``PropertyStarted`` brackets each unit of engine work, which in
  joint verification is the *aggregate* property, so one started
  aggregate may yield several individual verdicts;
* :class:`FrameAdvanced` — an engine unfolded one more frame (IC3) or
  one more unrolling depth (BMC);
* :class:`ClauseImport` / :class:`ClauseExport` — clauseDB traffic, the
  Section 6 re-use optimization made observable;
* :class:`BudgetCheckpoint` — resource usage at a known-safe point,
  the hook for external schedulers to preempt or re-balance work;
* :class:`ClusterStarted` — the structural baseline opened a group;
* :class:`WorkerStarted` / :class:`PoolAttached` / :class:`ShardOpened`
  / :class:`PropertyCancelled` — the process-parallel engine spawned a
  worker, attached a run to its (possibly persistent) pool, opened a
  clause-exchange shard, or abandoned a queued property after early
  cancellation (the property still gets its UNKNOWN
  :class:`PropertySolved`, preserving the one-verdict-per-property
  invariant);
* :class:`RunStarted` / :class:`RunFinished` — session bracketing;
* :class:`AttemptStarted` / :class:`AttemptCancelled` /
  :class:`PortfolioDecided` — the portfolio strategy launched one
  engine attempt in a per-property race, cancelled a losing attempt
  after the race was decided, or recorded the race verdict (winning
  engine + wall-clock) for one property;
* :class:`JobQueued` / :class:`JobStarted` / :class:`JobFinished` /
  :class:`ServiceSaturated` — the job-oriented
  :class:`~repro.service.VerificationService` admitted, started or
  finished one submitted job, or refused admission because its bounded
  queue is full (back-pressure made observable);
* :class:`StatsSnapshot` — a periodic sample of the service's
  introspection surface (pool occupancy, seat backoff state, queue
  depth, latencies), emitted by ``VerificationService.emit_stats``;
* :class:`CacheHit` — a property short-circuited from the cross-run
  proof cache after its stored witness re-passed certification.

This module deliberately has no imports from the rest of the package so
that every layer can use it without import cycles; the classes are
re-exported by :mod:`repro.session`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import ClassVar

__all__ = [
    "ProgressEvent",
    "RunStarted",
    "RunFinished",
    "PropertyStarted",
    "PropertySolved",
    "FrameAdvanced",
    "ClauseImport",
    "ClauseExport",
    "BudgetCheckpoint",
    "ClusterStarted",
    "WorkerStarted",
    "PoolAttached",
    "ShardOpened",
    "PropertyCancelled",
    "PropertyRequeued",
    "AttemptStarted",
    "AttemptCancelled",
    "PortfolioDecided",
    "JobQueued",
    "JobStarted",
    "JobFinished",
    "ServiceSaturated",
    "StatsSnapshot",
    "CacheHit",
    "Emit",
    "null_emit",
    "emit_or_null",
    "format_event",
]


@dataclass(frozen=True)
class ProgressEvent:
    """Base class of every progress event."""

    kind: ClassVar[str] = "event"


@dataclass(frozen=True)
class RunStarted(ProgressEvent):
    """A verification run began (first event of every session)."""

    kind: ClassVar[str] = "run-started"
    strategy: str
    design: str
    properties: tuple[str, ...]


@dataclass(frozen=True)
class RunFinished(ProgressEvent):
    """A verification run completed (last event of every session)."""

    kind: ClassVar[str] = "run-finished"
    strategy: str
    design: str
    total_time: float
    num_true: int
    num_false: int
    num_unknown: int


@dataclass(frozen=True)
class PropertyStarted(ProgressEvent):
    """A driver started working on one property (or aggregate)."""

    kind: ClassVar[str] = "property-started"
    name: str
    assumed: tuple[str, ...] = ()


@dataclass(frozen=True)
class PropertySolved(ProgressEvent):
    """A final verdict was recorded for one property.

    ``status`` is the ``repro.engines.result.PropStatus`` value (typed
    loosely here to keep this module dependency-free).
    """

    kind: ClassVar[str] = "property-solved"
    name: str
    status: object
    local: bool
    time_seconds: float = 0.0
    cex_depth: int | None = None
    assumed: tuple[str, ...] = ()


@dataclass(frozen=True)
class FrameAdvanced(ProgressEvent):
    """An engine unfolded one more frame while checking ``name``."""

    kind: ClassVar[str] = "frame-advanced"
    name: str
    frame: int


@dataclass(frozen=True)
class ClauseImport(ProgressEvent):
    """An engine initialized its frames with clauseDB seed clauses."""

    kind: ClassVar[str] = "clause-import"
    name: str
    count: int


@dataclass(frozen=True)
class ClauseExport(ProgressEvent):
    """A driver exported strengthening clauses into the clauseDB."""

    kind: ClassVar[str] = "clause-export"
    name: str
    count: int


@dataclass(frozen=True)
class BudgetCheckpoint(ProgressEvent):
    """Resource usage at a preemption-safe point.

    ``scope`` is a property name for per-property budgets or ``"total"``
    for the whole run; ``conflicts`` is ``None`` when only wall-clock is
    tracked.
    """

    kind: ClassVar[str] = "budget-checkpoint"
    scope: str
    elapsed: float
    conflicts: int | None = None


@dataclass(frozen=True)
class ClusterStarted(ProgressEvent):
    """The clustered driver opened one property group."""

    kind: ClassVar[str] = "cluster-started"
    members: tuple[str, ...]


@dataclass(frozen=True)
class WorkerStarted(ProgressEvent):
    """The parallel engine launched one worker process."""

    kind: ClassVar[str] = "worker-started"
    worker: int


@dataclass(frozen=True)
class PoolAttached(ProgressEvent):
    """A parallel run attached to its worker pool.

    Emitted once per run, after any :class:`WorkerStarted` events for
    newly spawned (or crash-replaced) workers.  ``persistent`` is True
    when the pool is shared across runs (``VerificationConfig.pool``);
    ``runs`` counts the batches the pool completed before this one, so
    a warm server-style pool shows ``runs > 0``.
    """

    kind: ClassVar[str] = "pool-attached"
    workers: int
    persistent: bool
    runs: int = 0


@dataclass(frozen=True)
class ShardOpened(ProgressEvent):
    """The parallel engine opened one clause-exchange shard.

    One event per shard per run; ``members`` is how many of the run's
    properties route their clause traffic through this shard.
    """

    kind: ClassVar[str] = "shard-opened"
    shard: int
    members: int


@dataclass(frozen=True)
class PropertyCancelled(ProgressEvent):
    """A queued property was abandoned by early cancellation.

    Emitted when the run-level verdict is already decided (a failure
    was found under ``stop_on_failure``) or the total budget expired;
    always followed by an UNKNOWN :class:`PropertySolved` for ``name``.
    """

    kind: ClassVar[str] = "property-cancelled"
    name: str
    worker: int | None = None


@dataclass(frozen=True)
class PropertyRequeued(ProgressEvent):
    """A crashed worker's claimed job was re-dispatched to the pool.

    Each job is retried at most once; a second crash on the same
    property reports it UNKNOWN like any other degraded outcome.
    ``worker`` is the worker that crashed while holding the job
    (``None`` when the holder could not be attributed).
    """

    kind: ClassVar[str] = "property-requeued"
    name: str
    worker: int | None = None


@dataclass(frozen=True)
class AttemptStarted(ProgressEvent):
    """The portfolio launched one engine attempt on one property.

    A property race emits one ``AttemptStarted`` per engine in the
    slate; the canonical :class:`PropertyStarted` still brackets the
    race as a whole, so the one-started-one-solved invariant per
    property is preserved.
    """

    kind: ClassVar[str] = "attempt-started"
    name: str
    engine: str
    worker: int | None = None


@dataclass(frozen=True)
class AttemptCancelled(ProgressEvent):
    """A losing portfolio attempt was cancelled (or its verdict dropped).

    ``latency_s`` is the time from the race decision to the loser's
    acknowledgement — ``None`` while the cancel is still in flight.  A
    stale loser whose verdict arrived *after* the decision is reported
    with this event too (the verdict itself is rejected by the attempt
    epoch check).
    """

    kind: ClassVar[str] = "attempt-cancelled"
    name: str
    engine: str
    worker: int | None = None
    latency_s: float | None = None


@dataclass(frozen=True)
class PortfolioDecided(ProgressEvent):
    """A per-property engine race reached its verdict.

    ``winner`` names the engine whose verdict was kept (``None`` when
    every attempt returned UNKNOWN and the race was decided by
    exhaustion); ``status`` is the ``PropStatus`` value, typed loosely
    to keep this module dependency-free; ``wall_s`` is race wall-clock
    from the first attempt's admission to the decision.
    """

    kind: ClassVar[str] = "portfolio-decided"
    name: str
    winner: str | None
    status: object
    wall_s: float = 0.0
    losers: tuple[str, ...] = ()


@dataclass(frozen=True)
class JobQueued(ProgressEvent):
    """A submitted job was admitted to the service's pending queue."""

    kind: ClassVar[str] = "job-queued"
    job: str
    design: str
    strategy: str
    priority: float = 1.0


@dataclass(frozen=True)
class JobStarted(ProgressEvent):
    """A queued job began executing.

    ``mode`` is ``"pool"`` when the job's properties are multiplexed
    onto shared worker seats (process-parallel strategies) and
    ``"thread"`` when the whole strategy runs on a service thread
    (sequential strategies).
    """

    kind: ClassVar[str] = "job-started"
    job: str
    design: str
    strategy: str
    mode: str = "thread"


@dataclass(frozen=True)
class JobFinished(ProgressEvent):
    """A job reached a terminal state.

    ``status`` is the :class:`~repro.service.JobStatus` value name in
    lower case (``"done"``, ``"failed"``, ``"cancelled"``), typed
    loosely to keep this module dependency-free.
    """

    kind: ClassVar[str] = "job-finished"
    job: str
    status: str
    total_time: float = 0.0
    num_true: int = 0
    num_false: int = 0
    num_unknown: int = 0


@dataclass(frozen=True)
class ServiceSaturated(ProgressEvent):
    """A submit found the service's bounded admission queue full.

    Emitted once per refused/blocked submission attempt; ``pending`` is
    the queue depth at that moment and ``limit`` its bound.  Blocking
    submitters wait for space after this event; non-blocking ones
    receive :class:`~repro.service.QueueFull`.
    """

    kind: ClassVar[str] = "service-saturated"
    pending: int
    limit: int


@dataclass(frozen=True)
class StatsSnapshot(ProgressEvent):
    """A periodic service introspection sample.

    ``stats`` is the ``as_dict()`` form of
    :class:`~repro.service.ServiceStats` (typed loosely to keep this
    module dependency-free): pool occupancy, per-seat crash/backoff
    state, admission-queue depth, per-shard exchange traffic and
    per-job wait/run latency.  Emitted by
    :meth:`~repro.service.VerificationService.emit_stats` — e.g. on the
    ``repro serve --stats-interval`` polling loop.
    """

    kind: ClassVar[str] = "stats-snapshot"
    stats: dict


@dataclass(frozen=True)
class CacheHit(ProgressEvent):
    """A property's verdict was served from the cross-run proof cache.

    Emitted *after* the stored witness re-passed certification against
    the design actually being verified (``certify_invariant`` for
    HOLDS, ``certify_cex`` for FAILS) — a cache hit is never reported
    on trust alone.  ``status`` is the ``PropStatus`` value, typed
    loosely to keep this module dependency-free; ``exact_design`` is
    True when the stored verdict came from a byte-identical design and
    False for a cone-level hit on an edited design (the incremental
    re-verification path).
    """

    kind: ClassVar[str] = "cache-hit"
    name: str
    status: object
    exact_design: bool = True
    frames: int = 0


Emit = Callable[[ProgressEvent], None]


def null_emit(event: ProgressEvent) -> None:
    """The no-listener sink: drivers default to this when ``emit`` is None."""


def emit_or_null(emit: Emit | None) -> Emit:
    """Normalize an optional callback to a callable."""
    return emit if emit is not None else null_emit


def format_event(event: ProgressEvent) -> str:
    """One-line human rendering (used by ``--progress`` and examples)."""
    if isinstance(event, RunStarted):
        return (
            f"[{event.kind}] {event.strategy} on {event.design} "
            f"({len(event.properties)} properties)"
        )
    if isinstance(event, RunFinished):
        return (
            f"[{event.kind}] {event.num_false} false, {event.num_true} true, "
            f"{event.num_unknown} unknown in {event.total_time:.2f}s"
        )
    if isinstance(event, PropertyStarted):
        assumed = f" assuming {list(event.assumed)}" if event.assumed else ""
        return f"[{event.kind}] {event.name}{assumed}"
    if isinstance(event, PropertySolved):
        scope = "locally" if event.local else "globally"
        depth = f", cex depth {event.cex_depth}" if event.cex_depth else ""
        return (
            f"[{event.kind}] {event.name}: {event.status} {scope}"
            f"{depth} ({event.time_seconds:.3f}s)"
        )
    if isinstance(event, FrameAdvanced):
        return f"[{event.kind}] {event.name}: frame {event.frame}"
    if isinstance(event, (ClauseImport, ClauseExport)):
        return f"[{event.kind}] {event.name}: {event.count} clauses"
    if isinstance(event, BudgetCheckpoint):
        conflicts = (
            f", {event.conflicts} conflicts" if event.conflicts is not None else ""
        )
        return f"[{event.kind}] {event.scope}: {event.elapsed:.3f}s{conflicts}"
    if isinstance(event, ClusterStarted):
        return f"[{event.kind}] {{{', '.join(event.members)}}}"
    if isinstance(event, WorkerStarted):
        return f"[{event.kind}] worker {event.worker}"
    if isinstance(event, PoolAttached):
        mode = "persistent" if event.persistent else "per-run"
        return (
            f"[{event.kind}] {event.workers} workers ({mode}, "
            f"{event.runs} prior runs)"
        )
    if isinstance(event, ShardOpened):
        return f"[{event.kind}] shard {event.shard}: {event.members} properties"
    if isinstance(event, PropertyCancelled):
        by = f" (worker {event.worker})" if event.worker is not None else ""
        return f"[{event.kind}] {event.name}{by}"
    if isinstance(event, PropertyRequeued):
        by = f" (worker {event.worker} crashed)" if event.worker is not None else ""
        return f"[{event.kind}] {event.name}{by}"
    if isinstance(event, AttemptStarted):
        by = f" (worker {event.worker})" if event.worker is not None else ""
        return f"[{event.kind}] {event.name}: {event.engine}{by}"
    if isinstance(event, AttemptCancelled):
        latency = (
            f" after {event.latency_s:.3f}s"
            if event.latency_s is not None
            else ""
        )
        return f"[{event.kind}] {event.name}: {event.engine}{latency}"
    if isinstance(event, PortfolioDecided):
        winner = event.winner or "exhausted"
        losers = f" over {list(event.losers)}" if event.losers else ""
        return (
            f"[{event.kind}] {event.name}: {event.status} by {winner}"
            f"{losers} in {event.wall_s:.3f}s"
        )
    if isinstance(event, JobQueued):
        return (
            f"[{event.kind}] {event.job}: {event.strategy} on {event.design} "
            f"(priority {event.priority:g})"
        )
    if isinstance(event, JobStarted):
        return (
            f"[{event.kind}] {event.job}: {event.strategy} on {event.design} "
            f"({event.mode})"
        )
    if isinstance(event, JobFinished):
        return (
            f"[{event.kind}] {event.job}: {event.status} — "
            f"{event.num_false} false, {event.num_true} true, "
            f"{event.num_unknown} unknown in {event.total_time:.2f}s"
        )
    if isinstance(event, ServiceSaturated):
        return f"[{event.kind}] {event.pending}/{event.limit} jobs pending"
    if isinstance(event, CacheHit):
        scope = "exact design" if event.exact_design else "unchanged cone"
        return (
            f"[{event.kind}] {event.name}: {event.status} "
            f"({scope}, certified, frames={event.frames})"
        )
    if isinstance(event, StatsSnapshot):
        stats = event.stats
        pool = stats.get("pool") or {}
        jobs = stats.get("jobs") or {}
        occupancy = (
            f"{pool.get('busy', 0)}/{pool.get('alive', 0)} seats busy"
            if pool
            else "no pool"
        )
        return (
            f"[{event.kind}] {occupancy}, "
            f"{jobs.get('pending', 0)} pending / "
            f"{jobs.get('running', 0)} running / "
            f"{jobs.get('finished', 0)} finished jobs"
        )
    return f"[{event.kind}] {event!r}"
