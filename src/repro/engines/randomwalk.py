"""Simulation-guided random-walk falsifier.

A portfolio needs one engine that is *embarrassingly cheap* on shallow
bugs: random simulation finds a depth-3 counterexample in microseconds
while IC3 is still busy generalizing frame 1.  This module packages the
random-simulation idiom from :mod:`repro.multiprop.sweep` as a proper
:class:`~repro.engines.result.EngineResult`-returning engine so the
portfolio scheduler can race it against BMC / k-induction / IC3.

Semantics and guarantees:

* **Falsifier only.**  The walk can return ``FAILS`` (with a concrete
  trace) or ``UNKNOWN`` — never ``HOLDS``.  Random simulation cannot
  prove anything.
* **Local verdicts.**  Like the SAT engines, the walk checks the target
  under JA-style *local* semantics: the other properties (``assumed``)
  are treated as transition guards.  A walk that violates an assumed
  property strictly before the target is abandoned — it left the
  projected system, so nothing it finds afterwards is a local CEX.
* **Replay-confirmed CEXs.**  A candidate trace is only reported after
  :meth:`repro.ts.trace.Trace.validate` replays it FALSE on the
  :class:`~repro.circuit.simulate.Simulator`.  A trace that does not
  replay is a bug in this module; we refuse to emit it.
* **Deterministic.**  All randomness comes from one seeded
  ``random.Random``; equal seeds give bit-identical results.
  :func:`derive_seed` derives stable per-property sub-seeds so one
  run-level seed reproduces a whole multi-property run.

The restart schedule doubles the walk depth every ``walks_per_depth``
restarts (geometric deepening, SMPT-style), so shallow bugs are found
at shallow depth without giving up on deeper ones.
"""

from __future__ import annotations

import random
import time
from collections.abc import Sequence

from ..circuit.simulate import Simulator
from ..progress import BudgetCheckpoint, Emit, FrameAdvanced
from ..ts.system import TransitionSystem
from ..ts.trace import Trace
from .result import EngineResult, PropStatus, ResourceBudget

__all__ = ["derive_seed", "randomwalk_check"]


def derive_seed(seed: int | None, design_name: str, prop_name: str) -> int:
    """Derive a stable per-property sub-seed from a run-level seed.

    Hash-based so that adding or reordering properties never shifts the
    sub-seed of an unrelated property (a counter-based scheme would).
    """

    from ..cache.hashing import joined_digest

    base = 0 if seed is None else int(seed)
    digest = joined_digest(base, design_name, prop_name)
    return int.from_bytes(digest[:8], "big")


def _unknown(
    prop_name: str,
    assumed: Sequence[str],
    start: float,
    stats: dict[str, object],
) -> EngineResult:
    return EngineResult(
        status=PropStatus.UNKNOWN,
        prop_name=prop_name,
        assumed=list(assumed),
        time_seconds=time.monotonic() - start,
        stats=stats,
    )


def randomwalk_check(
    ts: TransitionSystem,
    prop_name: str,
    *,
    max_depth: int = 256,
    restarts: int = 512,
    walks_per_depth: int = 16,
    seed: int = 0,
    input_bias: float = 0.5,
    assumed: Sequence[str] = (),
    budget: ResourceBudget | None = None,
    emit: Emit | None = None,
) -> EngineResult:
    """Race random walks against ``prop_name``; FAILS or UNKNOWN.

    Each restart walks up to the current depth with fresh random
    uninitialized-latch values and biased random inputs.  Constraint
    violations and assumed-property failures abandon the walk (they
    leave the local projected system).  The first frame where the
    target evaluates FALSE yields a candidate trace, truncated at that
    frame and replay-validated before being reported.
    """

    if prop_name in assumed:
        raise ValueError(f"target property {prop_name!r} cannot be assumed")
    prop = ts.prop_by_name[prop_name]
    assumed_lits = [ts.prop_by_name[name].lit for name in assumed]
    rng = random.Random(seed)
    sim = Simulator(ts.aig)
    free_latches = [latch.lit for latch in ts.latches if latch.init is None]
    start = time.monotonic()
    budget = budget or ResourceBudget()
    depth = min(8, max_depth) if max_depth > 0 else 0
    walks = 0
    frames_simulated = 0
    stats: dict[str, object] = {"engine": "rw", "seed": seed}

    for restart in range(restarts):
        if budget.exhausted():
            break
        if restart and restart % walks_per_depth == 0 and depth < max_depth:
            depth = min(depth * 2, max_depth)
            if emit is not None:
                emit(FrameAdvanced(name=prop_name, frame=depth))
        walks += 1
        uninit = {lit: rng.random() < 0.5 for lit in free_latches}
        sim.reset(uninit)
        inputs_so_far: list[dict[int, bool]] = []
        for _ in range(depth + 1):
            if budget.exhausted():
                break
            frame_inputs = {
                inp: rng.random() < input_bias for inp in ts.aig.inputs
            }
            inputs_so_far.append(dict(frame_inputs))
            frames_simulated += 1
            if ts.aig.constraints and not all(
                sim.eval_lit(c, frame_inputs) for c in ts.aig.constraints
            ):
                break  # left the legal input space
            if not sim.eval_lit(prop.lit, frame_inputs):
                trace = Trace(
                    inputs=inputs_so_far,
                    uninit=dict(uninit),
                    property_name=prop_name,
                )
                stats.update(walks=walks, frames=frames_simulated)
                if not trace.validate(ts.aig, prop.lit):
                    # Candidate failed replay: refuse to report it.
                    stats["replay_rejected"] = True
                    break
                return EngineResult(
                    status=PropStatus.FAILS,
                    prop_name=prop_name,
                    cex=trace,
                    frames=len(trace.inputs),
                    assumed=list(assumed),
                    time_seconds=time.monotonic() - start,
                    stats=stats,
                )
            if assumed_lits and not all(
                sim.eval_lit(lit, frame_inputs) for lit in assumed_lits
            ):
                break  # assumed property failed first: not a local walk
            sim.step(frame_inputs)
        if emit is not None and walks % 64 == 0:
            emit(BudgetCheckpoint(scope=prop_name, elapsed=budget.elapsed()))

    stats.update(walks=walks, frames=frames_simulated)
    return _unknown(prop_name, assumed, start, stats)
