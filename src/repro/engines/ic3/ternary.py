"""Ternary simulation and IC3 state lifting (paper Sections 6-C and 7-A).

Lifting enlarges a concrete state ``q`` (extracted from a SAT model) to a
cube ``Cq`` of states that all behave the same for the purpose at hand:
every state of ``Cq``, under the stored input valuation, transitions into
the target successor cube (for predecessor lifting) or falsifies the
target property (for bad-state lifting).  The larger the cube, the more
states one proof obligation covers — "the larger Cq, the greater the
performance boost by lifting".

The paper's Ic3-db has two lifting modes for JA-verification:

* *respecting* property constraints — every state of ``Cq`` must also
  satisfy the assumed properties, which preserves exact ``T^P`` traces
  but can shrink ``Cq`` drastically;
* *ignoring* them — bigger cubes, but counterexamples may become
  "spurious" (contain transitions from assumption-violating states) and
  must be re-checked (Section 7-A).

Both modes are implemented via the ``require_true`` argument.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...circuit.aig import AIG, aig_var, is_negated

# Ternary values: True / False / None (= X, unknown).
TernaryValue = bool | None


class TernaryEvaluator:
    """Evaluates AIG literals over three-valued latch/input assignments."""

    def __init__(self, aig: AIG) -> None:
        self.aig = aig

    def evaluate(
        self,
        roots: Sequence[int],
        latch_values: dict[int, TernaryValue],
        input_values: dict[int, TernaryValue],
    ) -> list[TernaryValue]:
        """Ternary values of ``roots`` (AIG literals).

        Missing latches/inputs default to X.  AND over ternary: False
        dominates, then X, then True.
        """
        cache: dict[int, TernaryValue] = {0: False}
        aig = self.aig
        out: list[TernaryValue] = []
        for root in roots:
            stack = [aig_var(root)]
            while stack:
                idx = stack[-1]
                if idx in cache:
                    stack.pop()
                    continue
                kind = aig.kind(idx)
                if kind == "input":
                    cache[idx] = input_values.get(idx * 2, None)
                    stack.pop()
                elif kind == "latch":
                    cache[idx] = latch_values.get(idx * 2, None)
                    stack.pop()
                else:  # and
                    left, right = aig.and_fanins(idx)
                    lv, rv = aig_var(left), aig_var(right)
                    pending = [v for v in (lv, rv) if v not in cache]
                    if pending:
                        stack.extend(pending)
                        continue
                    lval = _apply_sign(cache[lv], is_negated(left))
                    rval = _apply_sign(cache[rv], is_negated(right))
                    if lval is False or rval is False:
                        cache[idx] = False
                    elif lval is None or rval is None:
                        cache[idx] = None
                    else:
                        cache[idx] = True
                    stack.pop()
            out.append(_apply_sign(cache[aig_var(root)], is_negated(root)))
        return out


def _apply_sign(value: TernaryValue, negated: bool) -> TernaryValue:
    if value is None:
        return None
    return (not value) if negated else value


def lift_state(
    aig: AIG,
    latch_order: Sequence[int],
    latch_values: Sequence[bool],
    input_values: dict[int, bool],
    require_true: Sequence[int],
    require_false: Sequence[int] = (),
) -> list[bool | None]:
    """Greedily X out latches while all requirements stay *definite*.

    ``latch_order`` lists latch literals positionally; ``latch_values``
    the concrete model values.  ``require_true``/``require_false`` are
    AIG literals that must keep evaluating to a definite True/False under
    the (fixed, concrete) ``input_values``.

    Returns per-position values with ``None`` for lifted-away latches.
    The result always contains the original state and is sound by
    construction: ternary simulation is conservative, so a definite
    output is definite for every completion of the X-ed latches.
    """
    evaluator = TernaryEvaluator(aig)
    targets = list(require_true) + list(require_false)
    n_true = len(list(require_true))

    def check(assignment: dict[int, TernaryValue]) -> bool:
        values = evaluator.evaluate(targets, assignment, input_values)
        for i, value in enumerate(values):
            expected = i < n_true
            if value is None or value is not expected:
                return False
        return True

    current: dict[int, TernaryValue] = {
        lit: bool(v) for lit, v in zip(latch_order, latch_values)
    }
    if not check(current):
        raise ValueError("lifting targets do not hold in the concrete state")
    # Greedy elimination, last latch first (later latches are usually
    # deeper in the design's pipelines and more often irrelevant).
    for lit in reversed(list(latch_order)):
        saved = current[lit]
        current[lit] = None
        if not check(current):
            current[lit] = saved
    return [current[lit] for lit in latch_order]
