"""IC3/PDR engine with local-proof constraints, two lifting modes, and
strengthening-clause import/export (the paper's Ic3-db analogue)."""

from .core import IC3, IC3Options, SeedCertificateError, ic3_check
from .ternary import TernaryEvaluator, lift_state

__all__ = [
    "IC3",
    "IC3Options",
    "SeedCertificateError",
    "ic3_check",
    "TernaryEvaluator",
    "lift_state",
]
