"""IC3 / PDR (Bradley, VMCAI 2011; Eén-Mishchenko-Brayton, FMCAD 2011).

This is the property-checking engine underneath every experiment in the
paper.  Besides the standard machinery (frames, proof-obligation queue,
inductive generalization with unsat-core shrinking, clause propagation),
it implements the three features the paper's Ic3-db relies on:

* **Local proofs** (Sections 4, 7-A): ``assumed`` properties are asserted
  as constraints on the *source* frame of every transition query, which
  realizes the projection ``T^P``.  The bad-state query is left
  unconstrained so that a state falsifying the target property is
  reachable even if assumed properties fail there simultaneously —
  this is what makes Proposition 5 (all-local-true implies all-global-
  true) hold in the implementation, including the corner case of
  properties that only fail together.

* **State lifting with two modes** (Sections 6-C, 7-A): predecessor
  cubes are enlarged by ternary simulation, either respecting the
  assumed-property constraints or ignoring them.  Ignoring gives larger
  cubes but may yield spurious counterexamples; callers detect these by
  replay (the driver re-runs with respecting mode, as Ic3-db does).

* **Strengthening-clause import/export** (Section 6): ``seed_clauses``
  initialize every frame, and a successful proof exports the final
  inductive clause set.  Because seeds proven under *different*
  assumption sets are not automatically inductive here, the final
  invariant is re-verified clause by clause (`validate_invariant`); on
  certificate failure the engine signals the caller to retry without
  seeds.  This keeps the paper's optimization while staying sound.

Solver management is fully incremental: the engine holds **one**
persistent consecution solver (the transition relation is encoded
exactly once per property) plus one persistent bad-state solver, both
obtained from the pluggable :mod:`repro.sat.backend` registry.  Frame
membership is expressed with per-level activation literals — a clause
blocked at level ``L`` is inserted once, guarded by ``act(L)``, and a
query relative to ``F_k`` simply assumes ``act(k) .. act(top)`` — so
advancing the frontier, pushing clauses forward and discharging
obligations cost O(1) solver setup per query instead of O(CNF).
``IC3Options.incremental=False`` restores the rebuild-per-query
baseline (kept for benchmarking the win, see
``benchmarks/bench_incremental.py``).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from collections.abc import Sequence

from ...progress import (
    BudgetCheckpoint,
    ClauseImport,
    Emit,
    FrameAdvanced,
    emit_or_null,
)
from ...sat import SatBackend, Status, create_solver
from ...ts.system import (
    Clause,
    Cube,
    StepEncoding,
    TransitionSystem,
    cube_subsumes,
    negate_cube,
    normalize_cube,
)
from ...ts.trace import Trace
from ..result import EngineResult, PropStatus, ResourceBudget


class SeedCertificateError(Exception):
    """The final invariant failed its certificate check.

    Only possible when seed clauses from a differently-constrained run
    were imported; the caller should re-run without seeds.
    """


@dataclass
class IC3Options:
    """Tuning knobs for one IC3 run."""

    assumed: Sequence[str] = ()
    respect_constraints_in_lifting: bool = False
    seed_clauses: Sequence[Clause] = ()
    max_frames: int = 500
    budget: ResourceBudget | None = None
    validate_cex: bool = True
    validate_invariant: bool = True
    generalize_passes: int = 2
    # CTG handling during generalization (Hassan-Bradley-Somenzi, FMCAD'13):
    # when dropping a literal fails because of a counterexample-to-
    # generalization, try to block that state first.  Off by default to
    # match the paper's Ic3-db baseline; the ablation bench measures it.
    ctg: bool = False
    max_ctgs: int = 3
    # SAT backend name resolved through repro.sat.backend; None uses the
    # process default (REPRO_SAT_BACKEND environment, then "cdcl").
    solver_backend: str | None = None
    # Persistent incremental solvers (the default).  False rebuilds a
    # fresh solver for every single query — the O(CNF)-setup baseline
    # kept only so benchmarks can quantify the incremental win.
    incremental: bool = True
    # Progress events (frame advances, seed imports, budget checkpoints)
    # are sent here; None keeps the engine silent.
    emit: Emit | None = None


@dataclass
class _Obligation:
    """A cube of states at some frame known to reach the bad condition."""

    cube: Cube
    inputs: dict[int, bool]
    witness: tuple[bool, ...]
    succ: "_Obligation | None"


class IC3:
    """One IC3 run for one property of a transition system."""

    def __init__(self, ts: TransitionSystem, prop_name: str, options: IC3Options | None = None) -> None:
        self.ts = ts
        self.options = options or IC3Options()
        self.prop = ts.prop_by_name[prop_name]
        if self.prop.name in self.options.assumed:
            raise ValueError("a property cannot be assumed while checking itself")
        self.assumed_props = [ts.prop_by_name[n] for n in self.options.assumed]
        # frames[k] = cubes blocked at exactly level k (k >= 1).
        self.frames: list[list[Cube]] = [[], []]
        # Persistent incremental solvers (lazily created, never rebuilt):
        # one step solver for every consecution query at every frame,
        # one combinational solver for every bad-state query.  Frame
        # membership is selected per query via activation literals.
        self._step: SatBackend | None = None
        self._step_enc: StepEncoding | None = None
        self._init_act: int | None = None
        self._frame_acts: list[int | None] = []
        self._bad: SatBackend | None = None
        self._bad_enc = None
        self._bad_acts: list[int | None] = []
        # Work accounting across every solver this run ever allocates
        # (live and scrapped), for the incremental-vs-rebuild benchmark.
        self._live_solvers: list[SatBackend] = []
        self._retired_counters = {"clauses_added": 0, "solves": 0}
        self._seeds: list[Clause] = [normalize_cube(c) for c in self.options.seed_clauses]
        for seed in self._seeds:
            if not ts.clause_holds_at_init(seed):
                raise ValueError(f"seed clause {seed} does not hold at the initial states")
        self.stats: dict[str, int] = {
            "sat_queries": 0,
            "obligations": 0,
            "cubes_blocked": 0,
            "cubes_pushed": 0,
            "lift_drops": 0,
            "generalize_drops": 0,
            "seeds_used": len(self._seeds),
            "solver_allocs": 0,
        }
        self._start_time = time.monotonic()
        self._counter = itertools.count()
        self._emit: Emit = emit_or_null(self.options.emit)
        if self._seeds:
            self._emit(ClauseImport(name=self.prop.name, count=len(self._seeds)))

    # ------------------------------------------------------------------
    # Solver management
    # ------------------------------------------------------------------
    def _solve(self, solver: SatBackend, assumptions: Sequence[int]) -> Status:
        before = solver.stats()["conflicts"]
        status = solver.solve(assumptions)
        self.stats["sat_queries"] += 1
        budget = self.options.budget
        if budget is not None:
            budget.charge_conflicts(solver.stats()["conflicts"] - before)
        return status

    def _new_solver(self) -> SatBackend:
        """A fresh solver from the configured backend (work-accounted)."""
        solver = create_solver(self.options.solver_backend)
        self.stats["solver_allocs"] += 1
        self._live_solvers.append(solver)
        return solver

    def _scrap_solver(self, solver: SatBackend) -> None:
        """Fold a discarded solver's work counters into the run totals."""
        snapshot = solver.stats()
        for key in self._retired_counters:
            self._retired_counters[key] += snapshot.get(key, 0)
        self._live_solvers.remove(solver)

    def clause_insertions(self) -> int:
        """Total ``add_clause`` operations issued across all solvers."""
        total = self._retired_counters["clauses_added"]
        for solver in self._live_solvers:
            total += solver.stats().get("clauses_added", 0)
        return total

    def _step_solver(self) -> tuple[SatBackend, StepEncoding]:
        """The persistent consecution solver (one per IC3 run).

        The transition relation, assumed-property constraints and seeds
        are encoded exactly once; initial-state clauses are guarded by
        ``_init_act`` (assumed only for ``F_0`` queries) and frame
        clauses by their level's activation literal.
        """
        if self._step is None:
            solver = self._new_solver()
            enc = self.ts.encode_step(solver)
            for p in self.assumed_props:
                solver.add_clause([enc.prop_curr[p.name]])
            for seed in self._seeds:
                solver.add_clause(enc.clause_lits_curr(seed))
            init_act = solver.new_activation()
            for i, latch in enumerate(self.ts.latches):
                if latch.init == 0:
                    solver.add_clause([-init_act, -enc.curr[i]])
                elif latch.init == 1:
                    solver.add_clause([-init_act, enc.curr[i]])
            self._step, self._step_enc, self._init_act = solver, enc, init_act
            for level in range(1, len(self.frames)):
                for cube in self.frames[level]:
                    self._insert_frame_clause(negate_cube(cube), level)
        return self._step, self._step_enc

    def _bad_solver(self) -> tuple[SatBackend, object]:
        """The persistent bad-state solver (one per IC3 run).

        Combinational frame; blocked clauses are guarded per level so a
        query at the current top simply assumes ``act(top..)`` — the
        solver survives every frame advance un-rebuilt.
        """
        if self._bad is None:
            solver = self._new_solver()
            enc = self.ts.encode_bad_frame(solver)
            for seed in self._seeds:
                solver.add_clause(enc.clause_lits_curr(seed))
            self._bad, self._bad_enc = solver, enc
            for level in range(1, len(self.frames)):
                for cube in self.frames[level]:
                    self._insert_bad_clause(negate_cube(cube), level)
        return self._bad, self._bad_enc

    @staticmethod
    def _level_act(
        solver: SatBackend, acts: list[int | None], level: int
    ) -> int:
        """The activation literal guarding a level's clauses (lazily made)."""
        while len(acts) <= level:
            acts.append(None)
        if acts[level] is None:
            acts[level] = solver.new_activation()
        return acts[level]

    def _insert_frame_clause(self, clause: Clause, level: int) -> None:
        act = self._level_act(self._step, self._frame_acts, level)
        self._step.add_clause([-act] + self._step_enc.clause_lits_curr(clause))

    def _insert_bad_clause(self, clause: Clause, level: int) -> None:
        act = self._level_act(self._bad, self._bad_acts, level)
        self._bad.add_clause([-act] + self._bad_enc.clause_lits_curr(clause))

    def _frame_assumptions(self, k: int) -> list[int]:
        """Activation literals selecting ``F_k`` inside the step solver.

        ``F_k`` is the conjunction of every clause blocked at level
        ``>= max(k, 1)``; ``F_0`` additionally asserts the initial
        states.  Levels that never received a clause have no activation
        literal and are skipped.
        """
        assumps: list[int] = []
        if k == 0:
            assumps.append(self._init_act)
        for level in range(max(k, 1), len(self.frames)):
            if level < len(self._frame_acts) and self._frame_acts[level] is not None:
                assumps.append(self._frame_acts[level])
        return assumps

    # -- rebuild-per-query baseline (benchmarking only) ----------------
    def _rebuild_step_solver(self, k: int) -> tuple[SatBackend, StepEncoding]:
        """Baseline: encode ``F_k ∧ T`` from scratch for one query."""
        solver = self._new_solver()
        enc = self.ts.encode_step(solver)
        for p in self.assumed_props:
            solver.add_clause([enc.prop_curr[p.name]])
        if k == 0:
            for i, latch in enumerate(self.ts.latches):
                if latch.init == 0:
                    solver.add_clause([-enc.curr[i]])
                elif latch.init == 1:
                    solver.add_clause([enc.curr[i]])
        for seed in self._seeds:
            solver.add_clause(enc.clause_lits_curr(seed))
        for level in range(max(k, 1), len(self.frames)):
            for cube in self.frames[level]:
                solver.add_clause(enc.clause_lits_curr(negate_cube(cube)))
        return solver, enc

    def _rebuild_bad_solver(self) -> tuple[SatBackend, object]:
        """Baseline: encode ``F_top`` from scratch for one bad query."""
        solver = self._new_solver()
        enc = self.ts.encode_bad_frame(solver)
        for seed in self._seeds:
            solver.add_clause(enc.clause_lits_curr(seed))
        for level in range(self.top, len(self.frames)):
            for cube in self.frames[level]:
                solver.add_clause(enc.clause_lits_curr(negate_cube(cube)))
        return solver, enc

    @property
    def top(self) -> int:
        return len(self.frames) - 1

    def _add_blocked_cube(self, cube: Cube, level: int) -> None:
        """Record that ``cube`` is unreachable within ``level`` steps."""
        # Subsumption: drop weaker cubes this one covers.  The subsumed
        # clauses already inserted in the persistent solvers are implied
        # by the new, stronger one, so leaving them behind is sound.
        for lvl in range(1, level + 1):
            self.frames[lvl] = [
                c for c in self.frames[lvl] if not cube_subsumes(cube, c)
            ]
        self.frames[level].append(cube)
        self.stats["cubes_blocked"] += 1
        if not self.options.incremental:
            return  # the baseline re-reads the frames lists every query
        clause = negate_cube(cube)
        if self._step is not None:
            self._insert_frame_clause(clause, level)
        if self._bad is not None:
            self._insert_bad_clause(clause, level)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _consecution(self, cube: Cube, k: int) -> tuple[bool, object]:
        """Is ``F_k ∧ C ∧ ¬cube ∧ T ∧ cube'`` UNSAT?

        Returns ``(True, core_cube_lits)`` on UNSAT (the subset of cube
        literals whose next-state versions appear in the final conflict),
        or ``(False, (pred_state, inputs))`` on SAT.
        """
        incremental = self.options.incremental
        if incremental:
            solver, enc = self._step_solver()
            frame_sel = self._frame_assumptions(k)
        else:
            solver, enc = self._rebuild_step_solver(k)
            frame_sel = []
        # The ¬cube clause is query-local: guarded by a one-shot
        # activation literal that is retired as soon as the query ends.
        act = solver.new_activation()
        not_cube = [-lit for lit in enc.cube_lits_curr(cube)]
        solver.add_clause([-act] + not_cube)
        next_lits = enc.cube_lits_next(cube)
        status = self._solve(solver, frame_sel + [act] + next_lits)

        def release() -> None:
            if incremental:
                solver.retire(act)
            else:
                self._scrap_solver(solver)

        if status == Status.UNSAT:
            core = solver.core()
            release()
            needed = [
                state_lit
                for state_lit, solver_lit in zip(cube, next_lits)
                if solver_lit in core
            ]
            return True, tuple(needed)
        if status == Status.UNKNOWN:
            release()
            raise _BudgetExhausted()
        pred_state = tuple(bool(solver.value(v)) for v in enc.curr)
        inputs = {
            inp: bool(solver.value(var)) for inp, var in enc.inputs.items()
        }
        release()
        return False, (pred_state, inputs)

    def _query_bad(self) -> tuple[tuple[bool, ...], dict[int, bool]] | None:
        """SAT(F_top ∧ ¬P): a state (+ input) falsifying the property."""
        if self.options.incremental:
            solver, enc = self._bad_solver()
            assumps = [
                self._bad_acts[level]
                for level in range(self.top, len(self._bad_acts))
                if self._bad_acts[level] is not None
            ]
        else:
            solver, enc = self._rebuild_bad_solver()
            assumps = []
        status = self._solve(solver, assumps + [-enc.prop_curr[self.prop.name]])
        hit = None
        if status == Status.SAT:
            state = tuple(bool(solver.value(v)) for v in enc.curr)
            inputs = {
                inp: bool(solver.value(var)) for inp, var in enc.inputs.items()
            }
            hit = (state, inputs)
        if not self.options.incremental:
            self._scrap_solver(solver)
        if status == Status.UNKNOWN:
            raise _BudgetExhausted()
        return hit

    # ------------------------------------------------------------------
    # Lifting
    # ------------------------------------------------------------------
    def _lift(
        self,
        state: tuple[bool, ...],
        inputs: dict[int, bool],
        require_true: list[int],
        require_false: list[int],
    ) -> Cube:
        from .ternary import lift_state

        require_true = list(require_true) + list(self.ts.aig.constraints)
        if self.options.respect_constraints_in_lifting:
            require_true += [p.lit for p in self.assumed_props]
        latch_order = [latch.lit for latch in self.ts.latches]
        lifted = lift_state(
            self.ts.aig, latch_order, state, inputs, require_true, require_false
        )
        return self._cube_from_lifted(lifted, state)

    def _cube_from_lifted(
        self, lifted: list[bool | None], state: tuple[bool, ...]
    ) -> Cube:
        lits = []
        for i, value in enumerate(lifted):
            if value is None:
                self.stats["lift_drops"] += 1
            else:
                lits.append((i + 1) if value else -(i + 1))
        if not lits:
            # Degenerate but possible (target depends on inputs only);
            # keep one concrete literal so cubes are never empty.
            lits.append(1 if state[0] else -1)
        return normalize_cube(lits)

    def _lift_predecessor(
        self, state: tuple[bool, ...], inputs: dict[int, bool], succ_cube: Cube
    ) -> Cube:
        require_true, require_false = [], []
        for lit in succ_cube:
            next_fn = self.ts.latches[abs(lit) - 1].next
            if lit > 0:
                require_true.append(next_fn)
            else:
                require_false.append(next_fn)
        return self._lift(state, inputs, require_true, require_false)

    def _lift_bad(self, state: tuple[bool, ...], inputs: dict[int, bool]) -> Cube:
        # The bad state must keep falsifying the property.  Assumed
        # properties are never required here: the final state of a local
        # counterexample is unconstrained (see module docstring).
        from .ternary import lift_state

        require_true = list(self.ts.aig.constraints)
        require_false = [self.prop.lit]
        latch_order = [latch.lit for latch in self.ts.latches]
        lifted = lift_state(
            self.ts.aig, latch_order, state, inputs, require_true, require_false
        )
        return self._cube_from_lifted(lifted, state)

    def _init_witness(self, cube: Cube) -> tuple[bool, ...]:
        """A concrete initial state inside ``cube`` (which intersects I)."""
        values = []
        cube_map = {abs(l): l > 0 for l in cube}
        for i, latch in enumerate(self.ts.latches):
            if latch.init is not None:
                values.append(bool(latch.init))
            else:
                values.append(cube_map.get(i + 1, False))
        return tuple(values)

    # ------------------------------------------------------------------
    # Generalization
    # ------------------------------------------------------------------
    def _repair_init(self, cube: Cube, original: Cube) -> Cube:
        """Ensure the cube excludes the initial states.

        If a core-shrunk cube intersects I, add back a literal of the
        original cube that conflicts with the init pattern (one always
        exists because the original cube excluded I).
        """
        if not self.ts.cube_intersects_init(cube):
            return cube
        for lit in original:
            pattern = self.ts.init_pattern[abs(lit) - 1]
            if pattern is not None and pattern != lit:
                repaired = normalize_cube(tuple(cube) + (lit,))
                if not self.ts.cube_intersects_init(repaired):
                    return repaired
        raise RuntimeError("cannot repair cube against initial states")

    def _generalize(self, cube: Cube, k: int) -> Cube:
        """Shrink a blocked cube while keeping consecution rel. F_k and
        disjointness from the initial states."""
        current = cube
        for _ in range(self.options.generalize_passes):
            progress = False
            for lit in list(current):
                if len(current) <= 1:
                    break
                candidate = tuple(l for l in current if l != lit)
                if self.ts.cube_intersects_init(candidate):
                    continue
                ok, info = self._consecution(candidate, k)
                if not ok and self.options.ctg:
                    ok, info = self._try_block_ctgs(candidate, k, info)
                if ok:
                    shrunk = self._repair_init(normalize_cube(info), candidate)
                    if shrunk and not self.ts.cube_intersects_init(shrunk):
                        self.stats["generalize_drops"] += len(current) - len(shrunk)
                        current = shrunk
                    else:
                        current = candidate
                    progress = True
            if not progress:
                break
        return current

    def _try_block_ctgs(self, candidate: Cube, k: int, info) -> tuple[bool, object]:
        """CTG-aware generalization: block states that keep a literal alive.

        When dropping a literal fails, the SAT witness is a predecessor
        state (a counterexample to generalization).  If that state is
        itself inductive relative to F_k, block it at k+1 and retry; this
        often lets the drop go through, yielding much smaller clauses.
        Bounded by ``max_ctgs`` attempts (no recursion), per HBS'13.
        """
        for _ in range(self.options.max_ctgs):
            pred_state, pred_inputs = info
            ctg_cube = self._lift_predecessor(pred_state, pred_inputs, candidate)
            if self.ts.cube_intersects_init(ctg_cube):
                return False, info
            ok, core = self._consecution(ctg_cube, k)
            if not ok:
                return False, info
            blocked = self._repair_init(normalize_cube(core), ctg_cube)
            self._add_blocked_cube(blocked, min(k + 1, self.top))
            self.stats["ctg_blocked"] = self.stats.get("ctg_blocked", 0) + 1
            ok, info = self._consecution(candidate, k)
            if ok:
                return True, info
        return False, info

    # ------------------------------------------------------------------
    # Blocking
    # ------------------------------------------------------------------
    def _is_blocked(self, cube: Cube, level: int) -> bool:
        for lvl in range(level, len(self.frames)):
            for blocked in self.frames[lvl]:
                if cube_subsumes(blocked, cube):
                    return True
        return False

    def _block(self, bad_ob: _Obligation) -> _Obligation | None:
        """Discharge one bad obligation at the top frame.

        Returns None when blocked, or the frame-0 obligation heading a
        counterexample chain.
        """
        queue: list[tuple[int, int, _Obligation]] = []
        heapq.heappush(queue, (self.top, next(self._counter), bad_ob))
        budget = self.options.budget
        while queue:
            if budget is not None and budget.exhausted():
                raise _BudgetExhausted()
            level, _, ob = heapq.heappop(queue)
            self.stats["obligations"] += 1
            if level == 0:
                return ob
            if self._is_blocked(ob.cube, level):
                continue
            ok, info = self._consecution(ob.cube, level - 1)
            if ok:
                shrunk = self._repair_init(normalize_cube(info), ob.cube)
                generalized = self._generalize(shrunk, level - 1)
                # Push the clause as far ahead as it stays inductive.
                place = level
                while place < self.top:
                    holds, _ = self._consecution(generalized, place)
                    if not holds:
                        break
                    place += 1
                self._add_blocked_cube(generalized, place)
                if place < self.top:
                    heapq.heappush(queue, (place + 1, next(self._counter), ob))
            else:
                pred_state, pred_inputs = info
                pred_cube = self._lift_predecessor(pred_state, pred_inputs, ob.cube)
                pred_ob = _Obligation(
                    cube=pred_cube, inputs=pred_inputs, witness=pred_state, succ=ob
                )
                if level - 1 > 0 and self.ts.cube_intersects_init(pred_cube):
                    # The lifted cube reaches back into I: every state of
                    # the cube (under the stored input) steps into the
                    # successor cube, so an initial state in it heads a
                    # genuine counterexample — no need to recurse further.
                    pred_ob.witness = self._init_witness(pred_cube)
                    return pred_ob
                heapq.heappush(queue, (level - 1, next(self._counter), pred_ob))
                heapq.heappush(queue, (level, next(self._counter), ob))
        return None

    # ------------------------------------------------------------------
    # Propagation / convergence
    # ------------------------------------------------------------------
    def _propagate(self) -> int | None:
        """Push blocked cubes forward; returns the convergence level if
        two adjacent frames become equal."""
        for k in range(1, self.top):
            for cube in list(self.frames[k]):
                if cube not in self.frames[k]:
                    continue  # removed by subsumption meanwhile
                ok, info = self._consecution(cube, k)
                if ok:
                    shrunk = self._repair_init(normalize_cube(info), cube)
                    self.frames[k] = [c for c in self.frames[k] if c != cube]
                    self._add_blocked_cube(shrunk, k + 1)
                    self.stats["cubes_pushed"] += 1
            if not self.frames[k]:
                return k
        return None

    # ------------------------------------------------------------------
    # Counterexample / invariant construction
    # ------------------------------------------------------------------
    def _build_trace(self, head: _Obligation) -> Trace:
        inputs: list[dict[int, bool]] = []
        node: _Obligation | None = head
        while node is not None:
            inputs.append(dict(node.inputs))
            node = node.succ
        uninit = {}
        for i, latch in enumerate(self.ts.latches):
            if latch.init is None:
                uninit[latch.lit] = head.witness[i]
        trace = Trace(inputs=inputs, uninit=uninit, property_name=self.prop.name)
        # Lifting with relaxed constraints can make the target property
        # fail earlier than the last frame on the concrete replay; the
        # prefix up to the first failure is still a genuine CEX.
        fail_at = trace.failure_frame(self.ts.aig, self.prop.lit)
        if fail_at is None:
            raise RuntimeError(
                f"IC3 counterexample for {self.prop.name} does not refute it"
            )
        if fail_at < len(inputs) - 1:
            trace = trace.truncated(fail_at + 1)
        return trace

    def _invariant_clauses(self, conv_level: int) -> list[Clause]:
        clauses: list[Clause] = list(self._seeds)
        for level in range(conv_level + 1, len(self.frames)):
            for cube in self.frames[level]:
                clauses.append(negate_cube(cube))
        return clauses

    def _check_certificate(self, clauses: list[Clause]) -> None:
        """Verify the invariant: I ⊆ F, F ∧ C ∧ T ⊆ F', F ⊆ P.

        Raises :class:`SeedCertificateError` on failure (only reachable
        through unsound seeds; see module docstring).
        """
        for clause in clauses:
            if not self.ts.clause_holds_at_init(clause):
                raise SeedCertificateError(f"clause {clause} fails at init")
        solver = self._new_solver()
        enc = self.ts.encode_step(solver)
        for p in self.assumed_props:
            solver.add_clause([enc.prop_curr[p.name]])
        for clause in clauses:
            solver.add_clause(enc.clause_lits_curr(clause))
        for clause in clauses:
            cube = negate_cube(clause)
            status = self._solve(solver, enc.cube_lits_next(cube))
            if status == Status.SAT:
                raise SeedCertificateError(
                    f"invariant clause {clause} is not inductive"
                )
            if status == Status.UNKNOWN:
                raise _BudgetExhausted()
        # F ⊆ P: the final bad query of the main loop already established
        # F_top ∧ ¬P UNSAT, and `clauses` includes all F_top clauses, but
        # seeds may strengthen further; re-check cheaply for safety.
        bad_solver = self._new_solver()
        bad_enc = self.ts.encode_bad_frame(bad_solver)
        for clause in clauses:
            bad_solver.add_clause(bad_enc.clause_lits_curr(clause))
        status = self._solve(bad_solver, [-bad_enc.prop_curr[self.prop.name]])
        if status == Status.SAT:
            raise SeedCertificateError("invariant does not imply the property")
        if status == Status.UNKNOWN:
            raise _BudgetExhausted()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self) -> EngineResult:
        try:
            return self._solve_main()
        except _BudgetExhausted:
            return self._result(PropStatus.UNKNOWN, frames=self.top)

    def _solve_main(self) -> EngineResult:
        # Depth-1 check: does the property fail at an initial state?
        init_solver = self._new_solver()
        init_enc = self.ts.encode_init_frame(init_solver)
        status = self._solve(init_solver, [-init_enc.prop_curr[self.prop.name]])
        if status == Status.UNKNOWN:
            raise _BudgetExhausted()
        if status == Status.SAT:
            inputs = {
                inp: bool(init_solver.value(var))
                for inp, var in init_enc.inputs.items()
            }
            uninit = {}
            for i, latch in enumerate(self.ts.latches):
                if latch.init is None:
                    uninit[latch.lit] = bool(init_solver.value(init_enc.curr[i]))
            trace = Trace(inputs=[inputs], uninit=uninit, property_name=self.prop.name)
            return self._finish_cex(trace)

        if not self.ts.latches:
            # Purely combinational design: the single (empty) state is
            # both initial and invariant, and the init check just passed.
            return self._result(PropStatus.HOLDS, frames=1, invariant=[])

        while True:
            budget = self.options.budget
            if budget is not None and budget.exhausted():
                raise _BudgetExhausted()
            hit = self._query_bad()
            if hit is not None:
                state, inputs = hit
                cube = self._lift_bad(state, inputs)
                ob = _Obligation(cube=cube, inputs=inputs, witness=state, succ=None)
                if self.ts.cube_intersects_init(cube):
                    ob.witness = self._init_witness(cube)
                    return self._finish_cex(self._build_trace(ob))
                head = self._block(ob)
                if head is not None:
                    return self._finish_cex(self._build_trace(head))
                continue
            # Frame is clean; unfold one more level.
            if self.top >= self.options.max_frames:
                return self._result(PropStatus.UNKNOWN, frames=self.top)
            self.frames.append([])
            self._emit(FrameAdvanced(name=self.prop.name, frame=self.top))
            if budget is not None:
                self._emit(
                    BudgetCheckpoint(
                        scope=self.prop.name,
                        elapsed=budget.elapsed(),
                        conflicts=budget.conflicts_used,
                    )
                )
            conv = self._propagate()
            if conv is not None:
                clauses = self._invariant_clauses(conv)
                if self.options.validate_invariant:
                    self._check_certificate(clauses)
                return self._result(
                    PropStatus.HOLDS, frames=self.top, invariant=clauses
                )

    def _finish_cex(self, trace: Trace) -> EngineResult:
        if self.options.validate_cex and not trace.validate(self.ts.aig, self.prop.lit):
            raise RuntimeError(
                f"IC3 produced an invalid counterexample for {self.prop.name}"
            )
        return self._result(PropStatus.FAILS, frames=len(trace), cex=trace)

    def _result(
        self,
        status: PropStatus,
        frames: int,
        cex: Trace | None = None,
        invariant: list[Clause] | None = None,
    ) -> EngineResult:
        self.stats["clause_insertions"] = self.clause_insertions()
        return EngineResult(
            status=status,
            prop_name=self.prop.name,
            cex=cex,
            invariant=invariant,
            frames=frames,
            assumed=[p.name for p in self.assumed_props],
            time_seconds=time.monotonic() - self._start_time,
            stats=dict(self.stats),
        )


class _BudgetExhausted(Exception):
    """Internal: a budget ran out mid-run."""


def ic3_check(
    ts: TransitionSystem,
    prop_name: str,
    options: IC3Options | None = None,
) -> EngineResult:
    """Convenience wrapper: run IC3 on one property."""
    return IC3(ts, prop_name, options).solve()
