"""Result types shared by all verification engines."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..ts.system import Clause
from ..ts.trace import Trace


class PropStatus(enum.Enum):
    """Verdict for one property under one verification regime."""

    HOLDS = "holds"
    FAILS = "fails"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class EngineResult:
    """Outcome of running one engine on one property.

    Attributes
    ----------
    status:
        HOLDS / FAILS / UNKNOWN (budget exhausted).
    prop_name:
        The property that was checked.
    cex:
        Validated counterexample trace when ``status == FAILS``.
    invariant:
        When ``status == HOLDS`` and the engine produces proofs (IC3),
        the strengthening clauses (over state literals) such that
        ``P ∧ ⋀ invariant`` is inductive for the (possibly constrained)
        transition relation used.  Exactly the clauses the paper's
        clauseDB collects.
    frames:
        Frames unfolded: CEX depth for FAILS, convergence level for
        HOLDS, last explored bound for UNKNOWN.
    assumed:
        Names of the properties that were assumed (empty for global proofs).
    stats:
        Engine counters (SAT queries, conflicts, lift successes, ...).
    """

    status: PropStatus
    prop_name: str
    cex: Trace | None = None
    invariant: list[Clause] | None = None
    frames: int = 0
    assumed: list[str] = field(default_factory=list)
    time_seconds: float = 0.0
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def holds(self) -> bool:
        return self.status is PropStatus.HOLDS

    @property
    def fails(self) -> bool:
        return self.status is PropStatus.FAILS

    @property
    def unknown(self) -> bool:
        return self.status is PropStatus.UNKNOWN

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EngineResult({self.prop_name}: {self.status.value}, "
            f"frames={self.frames}, t={self.time_seconds:.3f}s)"
        )


class ResourceBudget:
    """A combined wall-clock / SAT-conflict budget shared by engine phases.

    The paper's experiments use per-property time limits; pure wall-clock
    limits make tests flaky, so budgets can also be expressed in SAT
    conflicts (deterministic).  Whichever limit is hit first wins.
    """

    def __init__(
        self,
        time_limit: float | None = None,
        conflict_limit: int | None = None,
    ) -> None:
        import time

        self.time_limit = time_limit
        self.conflict_limit = conflict_limit
        self._start = time.monotonic()
        self.conflicts_used = 0

    def charge_conflicts(self, amount: int) -> None:
        self.conflicts_used += amount

    def exhausted(self) -> bool:
        import time

        if self.time_limit is not None and time.monotonic() - self._start > self.time_limit:
            return True
        if self.conflict_limit is not None and self.conflicts_used > self.conflict_limit:
            return True
        return False

    def elapsed(self) -> float:
        import time

        return time.monotonic() - self._start
