"""Standalone certification of verification results.

Every answer an engine can give has an independently checkable
certificate:

* FAILS  → a :class:`~repro.ts.trace.Trace`, replayed on the concrete
  simulator (optionally also checking local-CEX side conditions);
* HOLDS  → an inductive invariant, checked with fresh SAT queries
  against the (possibly constrained) transition relation.

The engines already self-check; this module exposes the checks as a
public API so users can re-certify stored results, cross-check foreign
tools' invariants, or audit a clauseDB.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..sat import Status, create_solver
from ..ts.system import Clause, TransitionSystem, negate_cube
from ..ts.trace import Trace


@dataclass
class CertificateReport:
    """Outcome of a certification check."""

    valid: bool
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.valid


def certify_invariant(
    ts: TransitionSystem,
    prop_name: str,
    clauses: Sequence[Clause],
    assumed: Sequence[str] = (),
    solver_backend: str | None = None,
) -> CertificateReport:
    """Check that ``clauses`` certify ``prop_name`` (under ``assumed``).

    Verifies the three inductive-invariant conditions for ``F = ⋀ clauses``:

    1. ``I ⊆ F`` — every clause holds in all initial states;
    2. ``F ∧ C ∧ T ⊆ F'`` — F is closed under the (constrained)
       transition relation, where C asserts the assumed properties on
       the source frame;
    3. ``F ⊆ P`` — no F-state falsifies the property under any input.

    A valid certificate proves the property holds *locally* w.r.t. the
    assumption set (globally when ``assumed`` is empty).
    """
    prop = ts.prop_by_name.get(prop_name)
    if prop is None:
        return CertificateReport(False, f"unknown property {prop_name!r}")
    normalized: list[Clause] = []
    for clause in clauses:
        clause = tuple(clause)
        if not ts.clause_holds_at_init(clause):
            return CertificateReport(
                False, f"clause {clause} does not hold at the initial states"
            )
        normalized.append(clause)

    solver = create_solver(solver_backend)
    enc = ts.encode_step(solver)
    for name in assumed:
        if name not in ts.prop_by_name:
            return CertificateReport(False, f"unknown assumed property {name!r}")
        solver.add_clause([enc.prop_curr[name]])
    for clause in normalized:
        solver.add_clause(enc.clause_lits_curr(clause))
    # One aggregate consecution query: F ∧ C ∧ T ∧ (∨ ¬c') is UNSAT
    # exactly when every clause is inductive relative to the set.  A
    # selector variable per clause encodes its next-state violation, an
    # activation literal keeps the disjunction out of later queries, and
    # the per-clause checks run only on failure — to name the offender.
    selectors = []
    for clause in normalized:
        selector = solver.new_var()
        for lit in enc.cube_lits_next(negate_cube(clause)):
            solver.add_clause([-selector, lit])
        selectors.append(selector)
    activate = solver.new_var()
    solver.add_clause([-activate, *selectors])
    if solver.solve([activate]) != Status.UNSAT:
        for clause in normalized:
            cube = negate_cube(clause)
            if solver.solve(enc.cube_lits_next(cube)) != Status.UNSAT:
                return CertificateReport(
                    False, f"clause {clause} is not inductive relative to the set"
                )
        return CertificateReport(  # unreachable unless the solver lies
            False, "invariant is not inductive relative to the set"
        )

    bad_solver = create_solver(solver_backend)
    bad_enc = ts.encode_bad_frame(bad_solver)
    for clause in normalized:
        bad_solver.add_clause(bad_enc.clause_lits_curr(clause))
    if bad_solver.solve([-bad_enc.prop_curr[prop_name]]) != Status.UNSAT:
        return CertificateReport(
            False, "invariant does not imply the property"
        )
    return CertificateReport(True, f"{len(normalized)} clauses certify {prop_name}")


def certify_cex(
    ts: TransitionSystem,
    prop_name: str,
    trace: Trace,
    assumed: Sequence[str] = (),
) -> CertificateReport:
    """Check a counterexample trace, including local-CEX side conditions.

    The trace must drive the property to FALSE exactly at its final
    frame; when ``assumed`` is given, no assumed property may fail
    *strictly before* that frame (otherwise the trace is spurious as a
    ``T^P`` counterexample, even though it may refute the property
    globally).
    """
    prop = ts.prop_by_name.get(prop_name)
    if prop is None:
        return CertificateReport(False, f"unknown property {prop_name!r}")
    if not trace.inputs:
        return CertificateReport(False, "empty trace")
    fail_at = trace.failure_frame(ts.aig, prop.lit)
    if fail_at is None:
        return CertificateReport(False, "trace never falsifies the property")
    if fail_at != len(trace) - 1:
        return CertificateReport(
            False,
            f"property first fails at frame {fail_at}, not the final frame "
            f"{len(trace) - 1}",
        )
    if assumed:
        lits = {}
        for name in assumed:
            if name not in ts.prop_by_name:
                return CertificateReport(False, f"unknown assumed property {name!r}")
            lits[name] = ts.prop_by_name[name].lit
        frame, failed = trace.first_failures(ts.aig, lits)
        if frame is not None and frame < len(trace) - 1:
            return CertificateReport(
                False,
                f"assumed properties {failed} fail at frame {frame}, before "
                "the target: spurious as a local counterexample",
            )
    return CertificateReport(True, f"depth-{len(trace)} counterexample for {prop_name}")
