"""K-induction (Sheeran-Singh-Stålmarck style) as a cross-check engine.

Not part of the paper's toolbox, but a useful independent proof engine
for the test-suite: any verdict disagreement between k-induction, BMC
and IC3 indicates a bug in one of them.

The implementation uses the standard two queries per bound ``k``:

* base:  a counterexample of depth ``<= k`` exists (delegated to the
  incremental BMC unroller), and
* step:  ``P`` holding for ``k`` consecutive frames forces ``P`` in the
  next one, with simple-path (distinct-states) side constraints so that
  the method is complete for finite-state systems.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..circuit.aig import aig_not
from ..encode.unroll import Unroller
from ..sat import SatBackend, Status, create_solver
from ..ts.system import TransitionSystem
from ..ts.trace import Trace
from .result import EngineResult, PropStatus, ResourceBudget


def kinduction_check(
    ts: TransitionSystem,
    prop_name: str,
    max_k: int = 32,
    assumed: Sequence[str] = (),
    budget: ResourceBudget | None = None,
    unique_states: bool = True,
    solver_backend: str | None = None,
) -> EngineResult:
    """Prove or refute ``prop_name`` by k-induction up to bound ``max_k``.

    ``assumed`` properties are asserted on every non-final frame in both
    the base and the step case, mirroring local verification.  Both the
    base and the step case each live in one persistent incremental
    solver (``solver_backend`` names the registry entry): every bound
    extends the same two unrollings, bad cones selected by assumption.
    """
    start = time.monotonic()
    prop = ts.prop_by_name[prop_name]
    assumed_props = [ts.prop_by_name[n] for n in assumed]

    # --- base case: incremental BMC ---------------------------------
    base_solver = create_solver(solver_backend)
    base = Unroller(ts.aig, base_solver)

    # --- step case: unrolling without initial-state constraints -----
    step_solver = create_solver(solver_backend)
    step = Unroller(ts.aig, step_solver)
    # Frame 0 of `step` is unconstrained: suppress init clauses by
    # building a fresh system view... the Unroller always asserts init
    # values at frame 0, so instead we give the step unroller an AIG
    # alias whose latches are uninitialized.
    step = _FreeUnroller(ts, step_solver)

    stats = {"sat_queries": 0}

    def charge(solver: SatBackend, before: int) -> None:
        if budget is not None:
            budget.charge_conflicts(solver.stats()["conflicts"] - before)

    for k in range(max_k + 1):
        if budget is not None and budget.exhausted():
            return _unknown(prop_name, k, assumed, start, stats)
        # Base: CEX at depth exactly k?
        frame = base.frame(k)
        for c in ts.aig.constraints:
            base_solver.add_clause([frame.lit(c)])
        before = base_solver.stats()["conflicts"]
        status = base_solver.solve([frame.lit(aig_not(prop.lit))])
        stats["sat_queries"] += 1
        charge(base_solver, before)
        if status == Status.SAT:
            cex = Trace(
                inputs=base.extract_inputs(base_solver.value, k),
                uninit=base.extract_uninit(base_solver.value),
                property_name=prop_name,
            )
            if not cex.validate(ts.aig, prop.lit):
                raise RuntimeError("k-induction produced an invalid counterexample")
            return EngineResult(
                status=PropStatus.FAILS,
                prop_name=prop_name,
                cex=cex,
                frames=k + 1,
                assumed=list(assumed),
                time_seconds=time.monotonic() - start,
                stats=stats,
            )
        for p in assumed_props:
            base_solver.add_clause([frame.lit(p.lit)])

        # Step: P at frames 0..k implies P at frame k+1?
        sframe = step.frame(k)
        for c in ts.aig.constraints:
            step_solver.add_clause([sframe.lit(c)])
        step_solver.add_clause([sframe.lit(prop.lit)])
        for p in assumed_props:
            step_solver.add_clause([sframe.lit(p.lit)])
        if unique_states:
            step.add_uniqueness(k)
        nframe = step.frame(k + 1)
        for c in ts.aig.constraints:
            step_solver.add_clause([nframe.lit(c)])
        before = step_solver.stats()["conflicts"]
        status = step_solver.solve([nframe.lit(aig_not(prop.lit))])
        stats["sat_queries"] += 1
        charge(step_solver, before)
        if status == Status.UNSAT:
            return EngineResult(
                status=PropStatus.HOLDS,
                prop_name=prop_name,
                frames=k + 1,
                assumed=list(assumed),
                time_seconds=time.monotonic() - start,
                stats=stats,
            )
    return _unknown(prop_name, max_k, assumed, start, stats)


class _FreeUnroller(Unroller):
    """Unroller whose frame 0 leaves all latches unconstrained, plus
    simple-path (pairwise-distinct state) constraints for completeness."""

    def __init__(self, ts: TransitionSystem, sink) -> None:
        aig = ts.aig
        self._ts = ts
        super().__init__(aig, sink)
        self._saved_inits = [latch.init for latch in aig.latches]
        self._uniqueness_done = set()

    def _extend(self) -> None:
        t = len(self._frames)
        if t == 0:
            # Temporarily strip init values so the base class adds no
            # reset clauses for frame 0.
            aig = self.aig
            originals = list(aig.latches)
            for i, latch in enumerate(originals):
                aig.latches[i] = type(latch)(
                    lit=latch.lit, next=latch.next, init=None, name=latch.name
                )
            try:
                super()._extend()
            finally:
                for i, latch in enumerate(originals):
                    aig.latches[i] = latch
        else:
            super()._extend()

    def add_uniqueness(self, upto: int) -> None:
        """Assert pairwise distinctness of frames 0..upto."""
        for i in range(upto + 1):
            for j in range(i + 1, upto + 1):
                if (i, j) in self._uniqueness_done:
                    continue
                self._uniqueness_done.add((i, j))
                diff_lits = []
                for latch in self.aig.latches:
                    vi = self.latch_var(latch.lit, i)
                    vj = self.latch_var(latch.lit, j)
                    d = self.sink.new_var()
                    # d -> (vi XOR vj)
                    self.sink.add_clause([-d, vi, vj])
                    self.sink.add_clause([-d, -vi, -vj])
                    diff_lits.append(d)
                if diff_lits:
                    self.sink.add_clause(diff_lits)


def _unknown(prop_name, frames, assumed, start, stats) -> EngineResult:
    return EngineResult(
        status=PropStatus.UNKNOWN,
        prop_name=prop_name,
        frames=frames,
        assumed=list(assumed),
        time_seconds=time.monotonic() - start,
        stats=stats,
    )
