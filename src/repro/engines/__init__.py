"""Model-checking engines: BMC, k-induction, IC3/PDR, random walk."""

from .bmc import bmc_check, bmc_sweep
from .certify import CertificateReport, certify_cex, certify_invariant
from .ic3 import IC3, IC3Options, SeedCertificateError, ic3_check
from .kinduction import kinduction_check
from .randomwalk import derive_seed, randomwalk_check
from .result import EngineResult, PropStatus, ResourceBudget

__all__ = [
    "bmc_check",
    "bmc_sweep",
    "derive_seed",
    "randomwalk_check",
    "kinduction_check",
    "ic3_check",
    "IC3",
    "IC3Options",
    "SeedCertificateError",
    "EngineResult",
    "PropStatus",
    "ResourceBudget",
    "certify_invariant",
    "certify_cex",
    "CertificateReport",
]
