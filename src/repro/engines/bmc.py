"""Bounded model checking (Biere et al., DAC 1999).

Incrementally unrolls the design inside one solver and asks, for
``k = 0, 1, 2, ...``, whether the target property can be falsified at
frame ``k``.  Supports the paper's *local* mode: the assumed properties
are asserted on every frame strictly before the failure frame, which is
the bounded analogue of searching in ``(I, T^P)``.

BMC is complete for falsification only; :func:`bmc_check` returns UNKNOWN
once the bound or budget is exhausted without finding a counterexample.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..circuit.aig import aig_not
from ..encode.unroll import Unroller
from ..progress import BudgetCheckpoint, Emit, FrameAdvanced, emit_or_null
from ..sat import Status, create_solver
from ..ts.system import TransitionSystem
from ..ts.trace import Trace
from .result import EngineResult, PropStatus, ResourceBudget


def bmc_check(
    ts: TransitionSystem,
    prop_name: str,
    max_depth: int = 64,
    assumed: Sequence[str] = (),
    budget: ResourceBudget | None = None,
    validate: bool = True,
    emit: Emit | None = None,
    solver_backend: str | None = None,
) -> EngineResult:
    """Search for a counterexample of depth ``<= max_depth`` frames.

    ``assumed`` names properties asserted at all frames before the
    failure frame (local verification); with ``assumed=()`` this is
    plain global BMC.  The whole search lives in **one** incremental
    solver (from the ``solver_backend`` registry entry): each depth
    extends the same unrolling and selects its bad cone purely by
    assumption, so deepening never re-encodes earlier frames.  ``emit``,
    when given, receives a :class:`~repro.progress.FrameAdvanced` event
    per unrolling depth (plus budget checkpoints when a budget is set).

    Depth convention matches :class:`Trace`: a depth-1 CEX fails in the
    initial state.
    """
    send: Emit = emit_or_null(emit)
    start = time.monotonic()
    prop = ts.prop_by_name[prop_name]
    assumed_props = [ts.prop_by_name[n] for n in assumed]
    if any(p.name == prop_name for p in assumed_props):
        raise ValueError("a property cannot be assumed while checking itself")

    solver = create_solver(solver_backend)
    unroller = Unroller(ts.aig, solver)
    stats = {"sat_queries": 0, "max_depth_reached": 0}

    for t in range(max_depth):
        if budget is not None and budget.exhausted():
            stats["clause_insertions"] = solver.stats()["clauses_added"]
            return _unknown(prop_name, t, assumed, start, stats)
        frame = unroller.frame(t)
        for c in ts.aig.constraints:
            solver.add_clause([frame.lit(c)])
        bad_lit = frame.lit(aig_not(prop.lit))
        before = solver.stats()["conflicts"]
        status = solver.solve([bad_lit])
        stats["sat_queries"] += 1
        stats["max_depth_reached"] = t + 1
        send(FrameAdvanced(name=prop_name, frame=t + 1))
        if budget is not None:
            budget.charge_conflicts(solver.stats()["conflicts"] - before)
            send(
                BudgetCheckpoint(
                    scope=prop_name,
                    elapsed=budget.elapsed(),
                    conflicts=budget.conflicts_used,
                )
            )
        if status == Status.SAT:
            cex = Trace(
                inputs=unroller.extract_inputs(solver.value, t),
                uninit=unroller.extract_uninit(solver.value),
                property_name=prop_name,
            )
            if validate and not cex.validate(ts.aig, prop.lit):
                raise RuntimeError(
                    f"BMC produced an invalid counterexample for {prop_name} "
                    f"at depth {t + 1}"
                )
            stats["clause_insertions"] = solver.stats()["clauses_added"]
            return EngineResult(
                status=PropStatus.FAILS,
                prop_name=prop_name,
                cex=cex,
                frames=t + 1,
                assumed=list(assumed),
                time_seconds=time.monotonic() - start,
                stats=stats,
            )
        # No CEX at this depth: pin the assumptions for frame t before
        # moving deeper (frames before a failure must satisfy them).
        for p in assumed_props:
            solver.add_clause([frame.lit(p.lit)])
    stats["clause_insertions"] = solver.stats()["clauses_added"]
    return _unknown(prop_name, max_depth, assumed, start, stats)


def _unknown(prop_name, frames, assumed, start, stats) -> EngineResult:
    return EngineResult(
        status=PropStatus.UNKNOWN,
        prop_name=prop_name,
        frames=frames,
        assumed=list(assumed),
        time_seconds=time.monotonic() - start,
        stats=stats,
    )


def bmc_sweep(
    ts: TransitionSystem,
    max_depth: int = 32,
    names: Sequence[str] | None = None,
    budget: ResourceBudget | None = None,
    solver_backend: str | None = None,
) -> dict:
    """Multi-property BMC: find every property failing within ``max_depth``.

    One shared unrolling, one incremental solver; at each frame every
    still-unrefuted property gets one assumption query (the way ABC's
    ``bmc`` processes multi-output designs).  This is the cheapest
    complete way to enumerate *shallow* failures and their minimal
    depths; deep failures and proofs still need IC3.

    Returns ``{name: EngineResult}`` with FAILS (validated CEX, minimal
    depth) or UNKNOWN per property.
    """
    start = time.monotonic()
    props = [
        ts.prop_by_name[n] for n in (names if names is not None else
                                     [p.name for p in ts.properties])
    ]
    solver = create_solver(solver_backend)
    unroller = Unroller(ts.aig, solver)
    pending = {p.name: p for p in props}
    results: dict = {}
    stats = {"sat_queries": 0}

    for t in range(max_depth):
        if not pending or (budget is not None and budget.exhausted()):
            break
        frame = unroller.frame(t)
        for c in ts.aig.constraints:
            solver.add_clause([frame.lit(c)])
        for name in list(pending):
            prop = pending[name]
            before = solver.stats()["conflicts"]
            status = solver.solve([frame.lit(aig_not(prop.lit))])
            stats["sat_queries"] += 1
            if budget is not None:
                budget.charge_conflicts(solver.stats()["conflicts"] - before)
            if status != Status.SAT:
                continue
            cex = Trace(
                inputs=unroller.extract_inputs(solver.value, t),
                uninit=unroller.extract_uninit(solver.value),
                property_name=name,
            )
            if not cex.validate(ts.aig, prop.lit):
                raise RuntimeError(
                    f"BMC sweep produced an invalid counterexample for {name}"
                )
            results[name] = EngineResult(
                status=PropStatus.FAILS,
                prop_name=name,
                cex=cex,
                frames=t + 1,
                time_seconds=time.monotonic() - start,
                stats=dict(stats),
            )
            del pending[name]

    for name in pending:
        results[name] = EngineResult(
            status=PropStatus.UNKNOWN,
            prop_name=name,
            frames=max_depth,
            time_seconds=time.monotonic() - start,
            stats=dict(stats),
        )
    return results
