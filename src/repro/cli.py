"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``info``      print design statistics and the property list
``gen``       generate a named benchmark design as an AIGER file
``sweep``     random-simulation property sweep (no SAT)
``check``     multi-property verification (ja / joint / separate / clustered)

The ``check`` command is the Ja-ver / Jnt-ver equivalent: it reads a
(multi-property) AIGER file, runs the chosen driver, prints the verdict
table and the debugging-set narrative, and optionally dumps machine-
readable JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .circuit.aiger import load_aag, save_aag
from .circuit.aiger_binary import load_aig, save_aig
from .multiprop import (
    JAOptions,
    JointOptions,
    SeparateOptions,
    debugging_report,
    ja_verify,
    joint_verify,
    separate_verify,
)
from .multiprop.clustering import ClusterOptions, clustered_verify
from .multiprop.ordering import by_cone_size, design_order, shuffled
from .multiprop.report import MultiPropReport, render_table
from .multiprop.sweep import sweep as run_sweep
from .ts.system import TransitionSystem


def _load_design(path: str):
    if path.endswith(".aig"):
        return load_aig(path)
    return load_aag(path)


def _save_design(aig, path: str) -> None:
    if path.endswith(".aig"):
        save_aig(aig, path)
    else:
        save_aag(aig, path)


# ----------------------------------------------------------------------
def cmd_info(args: argparse.Namespace) -> int:
    aig = _load_design(args.design)
    stats = aig.stats()
    print(f"{args.design}:")
    for key, value in stats.items():
        print(f"  {key}: {value}")
    rows = []
    for prop in aig.properties:
        _, latches = aig.cone_of_influence([prop.lit])
        rows.append(
            [prop.name, "ETF" if prop.expected_to_fail else "ETH", len(latches)]
        )
    print(render_table("properties", ["name", "kind", "#cone latches"], rows))
    return 0


def cmd_gen(args: argparse.Namespace) -> int:
    from .gen import (
        ALL_TRUE_SPECS,
        FAILING_SPECS,
        LARGE_DESIGN_NAMES,
        buggy_counter,
        huge_design,
        large_design,
    )

    name = args.name
    if name.startswith("counter"):
        bits = int(name[len("counter"):] or 8)
        aig = buggy_counter(bits)
    elif name in FAILING_SPECS:
        aig = FAILING_SPECS[name].build()
    elif name in ALL_TRUE_SPECS:
        aig = ALL_TRUE_SPECS[name].build()
    elif name in LARGE_DESIGN_NAMES:
        aig = large_design(name)
    elif name == "huge":
        aig = huge_design()
    else:
        known = (
            ["counter<bits>", "huge"]
            + sorted(FAILING_SPECS)
            + sorted(ALL_TRUE_SPECS)
            + list(LARGE_DESIGN_NAMES)
        )
        print(f"unknown design {name!r}; known: {', '.join(known)}", file=sys.stderr)
        return 2
    _save_design(aig, args.output)
    print(f"wrote {args.output}: {aig!r}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    ts = TransitionSystem(_load_design(args.design))
    result = run_sweep(ts, runs=args.runs, depth=args.depth, seed=args.seed)
    rows = [
        [name, len(trace)] for name, trace in sorted(result.failed.items())
    ]
    print(
        render_table(
            f"simulation sweep ({result.runs} runs x {args.depth} frames)",
            ["failed property", "witness depth"],
            rows,
        )
    )
    print(f"survivors (need model checking): {len(result.survivors)}")
    return 0


_ORDERS = {"design": design_order, "cone": by_cone_size}


def cmd_check(args: argparse.Namespace) -> int:
    ts = TransitionSystem(_load_design(args.design))
    order: Optional[List[str]] = None
    if args.order:
        if args.order.startswith("shuffled:"):
            order = shuffled(ts, int(args.order.split(":", 1)[1]))
        elif args.order in _ORDERS:
            order = _ORDERS[args.order](ts)
        else:
            print(f"unknown order {args.order!r}", file=sys.stderr)
            return 2

    if args.method == "ja":
        report = ja_verify(
            ts,
            JAOptions(
                clause_reuse=not args.no_reuse,
                respect_constraints_in_lifting=args.respect_lifting,
                per_property_time=args.per_property_time,
                total_time=args.time_limit,
                order=order,
                coi_reduction=args.coi,
                ctg=args.ctg,
            ),
            design_name=args.design,
        )
    elif args.method == "joint":
        report = joint_verify(
            ts, JointOptions(total_time=args.time_limit), design_name=args.design
        )
    elif args.method == "separate":
        report = separate_verify(
            ts,
            SeparateOptions(
                clause_reuse=not args.no_reuse,
                per_property_time=args.per_property_time,
                total_time=args.time_limit,
                order=order,
            ),
            design_name=args.design,
        )
    else:  # clustered
        report = clustered_verify(
            ts,
            ClusterOptions(
                total_time=args.time_limit,
                per_property_time=args.per_property_time,
                inner=args.cluster_inner,
            ),
            design_name=args.design,
        )

    _print_report(report)
    if args.json:
        with open(args.json, "w") as f:
            json.dump(_report_to_json(report), f, indent=2)
        print(f"wrote {args.json}")
    # Exit status: 0 all hold, 1 failures found, 3 unsolved remain.
    if report.false_props():
        return 1
    if report.unsolved():
        return 3
    return 0


def _print_report(report: MultiPropReport) -> None:
    rows = []
    for outcome in report.outcomes.values():
        rows.append(
            [
                outcome.name,
                outcome.status.value,
                "local" if outcome.local else "global",
                outcome.cex_depth if outcome.cex_depth is not None else "",
                f"{outcome.time_seconds:.3f}",
            ]
        )
    print(
        render_table(
            report.summary(),
            ["property", "verdict", "scope", "cex depth", "time (s)"],
            rows,
        )
    )
    if report.method.startswith(("ja", "sweep")):
        print()
        print(debugging_report(report).narrative())


def _report_to_json(report: MultiPropReport) -> dict:
    return {
        "method": report.method,
        "design": report.design,
        "total_time": report.total_time,
        "debugging_set": report.debugging_set(),
        "etf_confirmed": report.etf_confirmed(),
        "stats": report.stats,
        "outcomes": {
            name: {
                "status": o.status.value,
                "local": o.local,
                "frames": o.frames,
                "cex_depth": o.cex_depth,
                "time_seconds": o.time_seconds,
                "assumed": o.assumed,
            }
            for name, o in report.outcomes.items()
        },
    }


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-property model checking with JA-verification (DATE'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="design statistics")
    p_info.add_argument("design", help="AIGER file (.aag or .aig)")
    p_info.set_defaults(func=cmd_info)

    p_gen = sub.add_parser("gen", help="generate a benchmark design")
    p_gen.add_argument("name", help="counter<bits>, huge, f104..f380, t124..t275, r400..r403")
    p_gen.add_argument("-o", "--output", required=True, help="output .aag/.aig path")
    p_gen.set_defaults(func=cmd_gen)

    p_sweep = sub.add_parser("sweep", help="random-simulation property sweep")
    p_sweep.add_argument("design")
    p_sweep.add_argument("--runs", type=int, default=32)
    p_sweep.add_argument("--depth", type=int, default=32)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.set_defaults(func=cmd_sweep)

    p_check = sub.add_parser("check", help="verify all properties")
    p_check.add_argument("design")
    p_check.add_argument(
        "--method",
        choices=("ja", "joint", "separate", "clustered"),
        default="ja",
    )
    p_check.add_argument("--time-limit", type=float, default=None, help="total seconds")
    p_check.add_argument(
        "--per-property-time", type=float, default=None, help="seconds per property"
    )
    p_check.add_argument("--no-reuse", action="store_true", help="disable clauseDB re-use")
    p_check.add_argument(
        "--respect-lifting",
        action="store_true",
        help="lifting respects property constraints (default: ignore + re-run)",
    )
    p_check.add_argument("--coi", action="store_true", help="cone-of-influence front end")
    p_check.add_argument("--ctg", action="store_true", help="CTG-aware generalization")
    p_check.add_argument(
        "--order", default=None, help="property order: design | cone | shuffled:<seed>"
    )
    p_check.add_argument(
        "--cluster-inner", choices=("joint", "ja"), default="joint",
        help="method inside each cluster (clustered only)",
    )
    p_check.add_argument("--json", default=None, help="write JSON report here")
    p_check.set_defaults(func=cmd_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
