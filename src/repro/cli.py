"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``info``      print design statistics and the property list
``gen``       generate a named benchmark design as an AIGER file
``sweep``     random-simulation property sweep (no SAT)
``check``     multi-property verification through the session API
``serve``     verify a job manifest, or run the HTTP server (``--listen``)
``submit``    submit a design or manifest to a remote ``serve --listen``
``watch``     re-attach to a remote job's live event stream
``stats``     print a remote server's live ServiceStats surface
``lint``      the project's own static-analysis pass (repro.analysis)

The ``check`` command reads a (multi-property) AIGER file, resolves the
requested strategy through the :mod:`repro.session` registry — so
strategies registered by plugins are immediately usable — drives it via
:class:`~repro.session.Session`, prints the verdict table and the
debugging-set narrative, and optionally dumps machine-readable JSON.
``--progress`` streams the typed progress events as they happen;
``--workers``/``--exchange-shards`` size the parallel-ja pool and its
cluster-sharded clause exchange (``auto``: one shard per cluster);
``--list-strategies`` enumerates the strategy registry and
``--list-backends`` the SAT backend registry (``check --backend NAME``
selects one; the ``REPRO_SAT_BACKEND`` environment variable sets the
process default).

The ``serve`` command is the batch/server mode: it reads a JSON
manifest of jobs — each naming a design file plus any
:class:`~repro.session.VerificationConfig` fields (``strategy``,
``priority``, ``order``, budgets, ...) — submits them all to one
:class:`~repro.service.VerificationService` over one shared worker
pool, and prints each job's verdict table as it completes.  Manifest
shape::

    {"workers": 4, "max_concurrent_jobs": 4,
     "jobs": [
       {"design": "ctrl.aag", "strategy": "parallel-ja", "priority": 2},
       {"design": "dma.aag", "strategy": "ja", "order": ["P3", "P1"]}
     ]}

(a bare JSON list of job objects is also accepted).  ``--stats-interval
S`` polls the service's live stats surface every S seconds and prints a
one-line occupancy/queue digest per tick (the same
:class:`~repro.progress.StatsSnapshot` events reach ``--progress``
subscribers); ``--max-seats`` on ``check`` caps how many pool seats the
job may hold.  Both serve modes shut down gracefully on SIGINT/SIGTERM:
batch mode cancels in-flight jobs, drains the pool and reports what
finished; ``--listen`` stops admission (503), drains, then exits 0.

``serve --listen HOST:PORT`` runs the :mod:`repro.net` HTTP server over
the same service instead of reading a manifest; remote clients then
drive it with ``submit --host`` (a design file or the same manifest
shape — local ``.aag`` designs are inlined over the wire), ``watch``
(resumable event streams) and ``stats --host``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import __version__
from .circuit.aiger import save_aag
from .circuit.aiger_binary import save_aig
from .multiprop import debugging_report
from .multiprop.report import MultiPropReport, render_table
from .multiprop.sweep import sweep as run_sweep
from .progress import format_event
from .sat import available_backends
from .session import (
    ConfigError,
    Session,
    UnknownStrategyError,
    VerificationConfig,
    available_strategies,
    load_design,
)
from .ts.system import TransitionSystem


def _save_design(aig, path: str) -> None:
    if path.endswith(".aig"):
        save_aig(aig, path)
    else:
        save_aag(aig, path)


# ----------------------------------------------------------------------
def cmd_info(args: argparse.Namespace) -> int:
    aig = load_design(args.design)
    stats = aig.stats()
    print(f"{args.design}:")
    for key, value in stats.items():
        print(f"  {key}: {value}")
    rows = []
    for prop in aig.properties:
        _, latches = aig.cone_of_influence([prop.lit])
        rows.append(
            [prop.name, "ETF" if prop.expected_to_fail else "ETH", len(latches)]
        )
    print(render_table("properties", ["name", "kind", "#cone latches"], rows))
    return 0


def cmd_gen(args: argparse.Namespace) -> int:
    from .gen import (
        ALL_TRUE_SPECS,
        FAILING_SPECS,
        LARGE_DESIGN_NAMES,
        buggy_counter,
        huge_design,
        large_design,
    )

    name = args.name
    if name.startswith("counter"):
        bits = int(name[len("counter"):] or 8)
        aig = buggy_counter(bits)
    elif name in FAILING_SPECS:
        aig = FAILING_SPECS[name].build()
    elif name in ALL_TRUE_SPECS:
        aig = ALL_TRUE_SPECS[name].build()
    elif name in LARGE_DESIGN_NAMES:
        aig = large_design(name)
    elif name == "huge":
        aig = huge_design()
    else:
        known = (
            ["counter<bits>", "huge"]
            + sorted(FAILING_SPECS)
            + sorted(ALL_TRUE_SPECS)
            + list(LARGE_DESIGN_NAMES)
        )
        print(f"unknown design {name!r}; known: {', '.join(known)}", file=sys.stderr)
        return 2
    _save_design(aig, args.output)
    print(f"wrote {args.output}: {aig!r}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    ts = TransitionSystem(load_design(args.design))
    result = run_sweep(ts, runs=args.runs, depth=args.depth, seed=args.seed)
    rows = [
        [name, len(trace)] for name, trace in sorted(result.failed.items())
    ]
    print(
        render_table(
            f"simulation sweep ({result.runs} runs x {args.depth} frames)",
            ["failed property", "witness depth"],
            rows,
        )
    )
    print(f"survivors (need model checking): {len(result.survivors)}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    config = VerificationConfig(
        strategy=args.strategy,
        total_time=args.time_limit,
        per_property_time=args.per_property_time,
        per_property_conflicts=args.per_property_conflicts,
        total_conflicts=args.total_conflicts,
        order=args.order,
        clause_reuse=not args.no_reuse,
        clause_db_path=args.clause_db,
        respect_constraints_in_lifting=args.respect_lifting,
        coi_reduction=args.coi,
        ctg=args.ctg,
        max_frames=args.max_frames,
        include_etf=not args.exclude_etf,
        cluster_inner=args.cluster_inner,
        similarity_threshold=args.similarity_threshold,
        workers=args.workers,
        exchange=not args.no_exchange,
        exchange_shards=args.exchange_shards,
        schedule_only=args.schedule_only,
        stop_on_failure=args.stop_on_failure,
        max_seats=args.max_seats,
        seed=args.seed,
        portfolio_engines=args.portfolio_engines,
        solver_backend=args.backend,
        engine=dict(args.engine or []),
        cache_dir=args.cache_dir,
        cache_mode=args.cache_mode,
        # The "design" sentinel lets Session derive the name from the
        # design path unless --design-name overrides it explicitly.
        design_name=args.design_name or "design",
    )
    try:
        session = Session(args.design, config)
    except (ConfigError, UnknownStrategyError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.progress:
        session.subscribe(lambda event: print(format_event(event)))
    report = session.run()

    _print_report(report)
    if args.json:
        with open(args.json, "w") as f:
            json.dump(_report_to_json(report), f, indent=2)
        print(f"wrote {args.json}")
    # Exit status: 0 all hold, 1 failures found, 3 unsolved remain.
    if report.false_props():
        return 1
    if report.unsolved():
        return 3
    return 0


def _print_report(report: MultiPropReport) -> None:
    rows = []
    for outcome in report.outcomes.values():
        rows.append(
            [
                outcome.name,
                outcome.status.value,
                "local" if outcome.local else "global",
                outcome.cex_depth if outcome.cex_depth is not None else "",
                f"{outcome.time_seconds:.3f}",
            ]
        )
    print(
        render_table(
            report.summary(),
            ["property", "verdict", "scope", "cex depth", "time (s)"],
            rows,
        )
    )
    if report.method == "portfolio":
        races = report.stats.get("portfolio", {})
        winners = ", ".join(
            f"{name}: {race.get('winner') or 'exhausted'}"
            for name, race in races.items()
        )
        if winners:
            print(f"\nwinning engines — {winners}")
    if report.method.startswith(("ja", "sweep", "parallel", "portfolio")):
        print()
        print(debugging_report(report).narrative())


def _report_to_json(report: MultiPropReport) -> dict:
    return {
        "method": report.method,
        "design": report.design,
        "total_time": report.total_time,
        "debugging_set": report.debugging_set(),
        "etf_confirmed": report.etf_confirmed(),
        "stats": report.stats,
        "outcomes": {
            name: {
                "status": o.status.value,
                "local": o.local,
                "frames": o.frames,
                "cex_depth": o.cex_depth,
                "time_seconds": o.time_seconds,
                "assumed": o.assumed,
                "engine": o.engine,
            }
            for name, o in report.outcomes.items()
        },
    }


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint`` — run the project's own static analysis.

    Exit status: 0 clean (new warnings do not fail the run), 1 new
    error-severity findings, 2 on a malformed baseline or bad paths.
    """
    from .analysis import (
        BaselineError,
        analyze_paths,
        render_json,
        render_text,
        save_baseline,
    )

    try:
        result = analyze_paths(
            args.paths,
            jobs=args.jobs,
            baseline_path=args.baseline,
        )
    except (BaselineError, FileNotFoundError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.write_baseline:
        save_baseline(args.baseline, result.findings)
        print(
            f"wrote {args.baseline} with {len(result.findings)} entr"
            f"{'y' if len(result.findings) == 1 else 'ies'}; "
            f"replace every TODO justification before committing"
        )
        return 0
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def _start_stats_poller(service, interval: float | None, progress: bool):
    """A poller thread broadcasting StatsSnapshot events every N seconds.

    Without ``--progress`` a filtered printer renders just the
    snapshots (pool occupancy, seat backoff, queue depth, latencies).
    Returns ``(stop_event, thread)`` — both None when disabled.
    """
    if interval is None:
        return None, None
    import threading

    from .progress import StatsSnapshot

    if not progress:
        service.subscribe(
            lambda event: (
                print(format_event(event))
                if isinstance(event, StatsSnapshot)
                else None
            )
        )
    stop = threading.Event()

    def _poll_stats() -> None:
        while not stop.wait(interval):
            service.emit_stats()

    thread = threading.Thread(
        target=_poll_stats, name="repro-serve-stats", daemon=True
    )
    thread.start()
    return stop, thread


def _serve_listen(args: argparse.Namespace) -> int:
    """``serve --listen HOST:PORT``: the repro.net HTTP server mode."""
    from .net.client import _parse_address
    from .net.server import VerificationServer
    from .service import VerificationService

    try:
        host, port = _parse_address(args.listen)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    service = VerificationService(
        workers=args.workers,
        max_concurrent_jobs=args.max_concurrent_jobs or 4,
        max_pending=args.max_pending,
        cache_dir=args.cache_dir,
        cache_mode=args.cache_mode,
    )
    if args.progress:
        service.subscribe(lambda event: print(format_event(event)))
    stop_stats, stats_thread = _start_stats_poller(
        service, args.stats_interval, args.progress
    )
    server = VerificationServer(
        service, host, port, drain_grace=args.drain_grace
    )
    try:
        # on_ready prints the *bound* address (port 0 picks a free one)
        # so wrapper scripts and CI can discover where to connect.
        server.run(
            on_ready=lambda h, p: print(f"listening on {h}:{p}", flush=True)
        )
    finally:
        if stop_stats is not None:
            stop_stats.set()
            stats_thread.join(timeout=5.0)
    print("drained; all jobs settled", flush=True)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .service import VerificationService

    if args.stats_interval is not None and args.stats_interval <= 0:
        print(
            f"--stats-interval must be > 0, got {args.stats_interval!r}",
            file=sys.stderr,
        )
        return 2
    if args.listen is not None:
        if args.manifest is not None:
            print(
                "--listen serves remote clients; submit the manifest with "
                "'repro submit --host' instead",
                file=sys.stderr,
            )
            return 2
        return _serve_listen(args)
    if args.manifest is None:
        print("serve needs a manifest (or --listen HOST:PORT)", file=sys.stderr)
        return 2
    with open(args.manifest) as f:
        manifest = json.load(f)
    if isinstance(manifest, list):
        defaults, jobs = {}, manifest
    else:
        defaults = {k: v for k, v in manifest.items() if k != "jobs"}
        jobs = manifest.get("jobs", [])
    if not jobs:
        print("manifest names no jobs", file=sys.stderr)
        return 2

    workers = args.workers or defaults.get("workers")
    max_jobs = (
        args.max_concurrent_jobs
        or defaults.get("max_concurrent_jobs")
        or min(4, len(jobs))
    )
    service = VerificationService(
        workers=workers,
        max_concurrent_jobs=max_jobs,
        cache_dir=args.cache_dir,
        cache_mode=args.cache_mode,
    )
    if args.progress:
        service.subscribe(lambda event: print(format_event(event)))
    stop_stats, stats_thread = _start_stats_poller(
        service, args.stats_interval, args.progress
    )

    # SIGTERM drains like Ctrl-C: cancel in-flight jobs, join the pool,
    # report what finished — never a traceback through the dispatcher.
    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    try:
        previous_term = signal.signal(signal.SIGTERM, _interrupt)
    except ValueError:  # not the main thread (e.g. tests)
        previous_term = None

    handles = []
    failures = unsolved = broken = 0
    interrupted = False
    results: dict = {}
    collected: set[str] = set()

    def _collect(handle) -> None:
        """Print and tally one terminal job (idempotent)."""
        nonlocal failures, unsolved, broken
        if handle.job_id in collected:
            return
        collected.add(handle.job_id)
        try:
            report = handle.result(timeout=0)
        except TimeoutError:
            print(
                f"{handle.job_id} ({handle.design_name}): did not settle "
                f"before shutdown",
                file=sys.stderr,
            )
            broken += 1
            return
        except Exception as exc:  # noqa: BLE001 - reported per job
            print(f"{handle.job_id} ({handle.design_name}): {exc}",
                  file=sys.stderr)
            broken += 1
            return
        print(f"\n== {handle.job_id}: {handle.design_name} "
              f"[{handle.status.value}] ==")
        _print_report(report)
        results[handle.job_id] = _report_to_json(report)
        failures += bool(report.false_props())
        unsolved += bool(report.unsolved())

    try:
        try:
            for index, spec in enumerate(jobs):
                spec = dict(spec)
                try:
                    design = spec.pop("design")
                except KeyError:
                    print(f"job #{index} names no design", file=sys.stderr)
                    return 2
                priority = spec.pop("priority", None)
                spec.setdefault(
                    "strategy", defaults.get("strategy", "parallel-ja")
                )
                try:
                    config = VerificationConfig().with_overrides(**spec)
                    handles.append(
                        service.submit(design, config, priority=priority)
                    )
                except (
                    ConfigError,
                    UnknownStrategyError,
                    OSError,
                    ValueError,
                ) as exc:
                    print(f"job #{index} ({design}): {exc}", file=sys.stderr)
                    return 2

            for handle in handles:
                try:
                    handle.result()
                except KeyboardInterrupt:
                    raise
                except Exception:  # noqa: BLE001,S110 - reported by _collect
                    pass
                _collect(handle)
        except KeyboardInterrupt:
            interrupted = True
            print(
                "\ninterrupted: cancelling in-flight jobs and draining",
                file=sys.stderr,
            )
            for handle in handles:
                if not handle.status.terminal:
                    handle.cancel()
            # In-flight properties run to completion (cancellation is
            # cooperative), so give each job a real settling window.
            for handle in handles:
                handle.wait(timeout=60.0)
                _collect(handle)
    finally:
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)
        if stop_stats is not None:
            stop_stats.set()
            stats_thread.join(timeout=5.0)
        service.close()

    if args.json:
        with open(args.json, "w") as f:
            json.dump(results, f, indent=2)
        print(f"wrote {args.json}")
    # Exit status mirrors check, aggregated over all jobs; a drained
    # interrupt exits like a SIGINT'd process so wrappers see it.
    if interrupted:
        return 130
    if broken:
        return 2
    if failures:
        return 1
    if unsolved:
        return 3
    return 0


# ----------------------------------------------------------------------
# Remote client commands (repro.net)
# ----------------------------------------------------------------------
def _load_remote_specs(target: str, args: argparse.Namespace) -> list[dict]:
    """Job specs for ``submit``: a manifest file or one design file.

    Local ``.aag`` designs are inlined as ``design_text`` so the job is
    self-contained on the wire (the server need not share a
    filesystem); anything else is passed through as a server-side
    ``design`` path.
    """

    def _inline(spec: dict) -> dict:
        design = spec.get("design")
        if (
            isinstance(design, str)
            and design.endswith(".aag")
            and os.path.exists(design)
        ):
            with open(design) as f:
                spec = dict(spec, design_text=f.read())
            del spec["design"]
            spec.setdefault("design_name", _design_name(design))
        return spec

    if target.endswith(".json"):
        with open(target) as f:
            manifest = json.load(f)
        if isinstance(manifest, list):
            defaults, jobs = {}, manifest
        else:
            defaults = {
                k: v
                for k, v in manifest.items()
                # Service sizing is the server's business, not the job's.
                if k not in ("jobs", "workers", "max_concurrent_jobs")
            }
            jobs = manifest.get("jobs", [])
        if not jobs:
            raise ValueError(f"manifest {target!r} names no jobs")
        specs = []
        for spec in jobs:
            spec = dict(defaults, **spec)
            spec.setdefault("strategy", args.strategy or "parallel-ja")
            if args.cache_dir is not None:
                # Server-side path: the proof store lives on the server.
                spec.setdefault("cache_dir", args.cache_dir)
                spec.setdefault("cache_mode", args.cache_mode)
            specs.append(_inline(spec))
        return specs
    spec: dict = {"design": target}
    if args.strategy:
        spec["strategy"] = args.strategy
    if args.priority is not None:
        spec["priority"] = args.priority
    if args.cache_dir is not None:
        spec["cache_dir"] = args.cache_dir
        spec["cache_mode"] = args.cache_mode
    return [_inline(spec)]


def _design_name(path: str) -> str:
    base = os.path.basename(path)
    return base.rsplit(".", 1)[0] or base


def cmd_submit(args: argparse.Namespace) -> int:
    from .net.client import RemoteError, ServiceClient, submit_manifest

    client = ServiceClient(args.host)
    try:
        specs = _load_remote_specs(args.target, args)
    except (OSError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        jobs = submit_manifest(client, specs)
    except RemoteError as exc:
        print(exc, file=sys.stderr)
        return 2
    for job in jobs:
        print(
            f"submitted {job.job_id}: {job.info.get('design')} "
            f"[{job.info.get('strategy')}]"
        )
    if args.no_wait:
        return 0

    failures = unsolved = broken = 0
    results: dict = {}
    for job in jobs:
        if args.progress:
            try:
                for event in job.events():
                    print(format_event(event))
            except RemoteError as exc:
                print(f"{job.job_id}: event stream failed: {exc}",
                      file=sys.stderr)
        try:
            report = job.result(timeout=args.timeout)
        except (RemoteError, TimeoutError) as exc:
            print(f"{job.job_id}: {exc}", file=sys.stderr)
            broken += 1
            continue
        status = job.status().get("status", "done")
        print(f"\n== {job.job_id}: {report.design} [{status}] ==")
        _print_report(report)
        results[job.job_id] = _report_to_json(report)
        failures += bool(report.false_props())
        unsolved += bool(report.unsolved())
    if args.json:
        with open(args.json, "w") as f:
            json.dump(results, f, indent=2)
        print(f"wrote {args.json}")
    if broken:
        return 2
    if failures:
        return 1
    if unsolved:
        return 3
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache stats|gc|clear`` — inspect or prune a proof store."""
    from .cache import ProofStore

    store = ProofStore(args.cache_dir)
    if args.action == "stats":
        stats = store.stats()
        # On-disk inspection: the per-run hit/miss counters are only
        # meaningful inside a verification process, so drop them here.
        static = {
            k: v
            for k, v in stats.items()
            if k in ("root", "entries", "entry_bytes", "warm_logs", "warm_bytes")
        }
        print(json.dumps(static, indent=2, sort_keys=True))
        return 0
    if args.action == "gc":
        if args.max_entries is None and args.max_bytes is None:
            print("gc needs --max-entries and/or --max-bytes", file=sys.stderr)
            return 2
        removed = store.gc(
            max_entries=args.max_entries, max_bytes=args.max_bytes
        )
        print(f"evicted {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    removed = store.clear()
    print(f"cleared {removed} file{'' if removed == 1 else 's'}")
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    from .net.client import RemoteError, ServiceClient

    client = ServiceClient(args.host)
    job = client.job(args.job)
    job.cursor = args.after
    try:
        for event in job.events():
            print(format_event(event), flush=True)
    except RemoteError as exc:
        print(exc, file=sys.stderr)
        return 2
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .net.client import RemoteError, ServiceClient

    client = ServiceClient(args.host)
    try:
        stats = client.stats()
    except RemoteError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


# ----------------------------------------------------------------------
def _engine_override(value: str):
    """``--engine KEY=VALUE`` pairs; values parse as JSON, else strings.

    Key validity is checked by ``VerificationConfig.validate()`` against
    ``ENGINE_OVERRIDE_KEYS``, so the CLI stays in sync with the config
    for free.
    """
    key, sep, raw = value.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected KEY=VALUE, got {value!r}"
        )
    try:
        parsed: object = json.loads(raw)
    except ValueError:
        parsed = raw
    return key, parsed


def _shard_count(value: str):
    """``--exchange-shards`` values: a positive integer or ``auto``."""
    if value == "auto":
        return value
    try:
        count = int(value)
    except ValueError:
        count = 0
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        )
    return count


class _ListStrategiesAction(argparse.Action):
    """``--list-strategies``: print the registry and exit."""

    def __call__(self, parser, namespace, values, option_string=None):
        for name, description in available_strategies().items():
            print(f"{name:<12} {description}")
        parser.exit(0)


class _ListBackendsAction(argparse.Action):
    """``--list-backends``: print the SAT backend registry and exit."""

    def __call__(self, parser, namespace, values, option_string=None):
        for name, description in available_backends().items():
            print(f"{name:<14} {description}")
        parser.exit(0)


class _ListCheckersAction(argparse.Action):
    """``lint --list-checkers``: print the checker registry and exit."""

    def __call__(self, parser, namespace, values, option_string=None):
        from .analysis import available_checkers

        for name, description in available_checkers().items():
            print(f"{name:<22} {description}")
        parser.exit(0)


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    """The shared ``--cache-dir`` / ``--cache-mode`` pair."""
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cross-run proof cache directory; certified verdicts, "
        "invariants and warm clause logs persist here (default: no cache)",
    )
    parser.add_argument(
        "--cache-mode", choices=("off", "read", "readwrite"),
        default="readwrite",
        help="how to use --cache-dir: read existing proofs only, read and "
        "write back fresh ones (default), or off",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-property model checking with JA-verification (DATE'18 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--list-strategies",
        action=_ListStrategiesAction,
        nargs=0,
        help="list registered verification strategies and exit",
    )
    parser.add_argument(
        "--list-backends",
        action=_ListBackendsAction,
        nargs=0,
        help="list registered SAT backends and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="design statistics")
    p_info.add_argument("design", help="AIGER file (.aag or .aig)")
    p_info.set_defaults(func=cmd_info)

    p_gen = sub.add_parser("gen", help="generate a benchmark design")
    p_gen.add_argument("name", help="counter<bits>, huge, f104..f380, t124..t275, r400..r403")
    p_gen.add_argument("-o", "--output", required=True, help="output .aag/.aig path")
    p_gen.set_defaults(func=cmd_gen)

    p_sweep = sub.add_parser("sweep", help="random-simulation property sweep")
    p_sweep.add_argument("design")
    p_sweep.add_argument("--runs", type=int, default=32)
    p_sweep.add_argument("--depth", type=int, default=32)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.set_defaults(func=cmd_sweep)

    p_check = sub.add_parser("check", help="verify all properties")
    p_check.add_argument("design")
    p_check.add_argument(
        "--strategy",
        "--method",  # deprecated alias, kept for old scripts
        dest="strategy",
        default="ja",
        metavar="NAME",
        help="verification strategy (see --list-strategies; default: ja)",
    )
    p_check.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="SAT backend (see --list-backends; default: REPRO_SAT_BACKEND or cdcl)",
    )
    p_check.add_argument("--time-limit", type=float, default=None, help="total seconds")
    p_check.add_argument(
        "--per-property-time", type=float, default=None, help="seconds per property"
    )
    p_check.add_argument(
        "--per-property-conflicts", type=int, default=None, metavar="N",
        help="SAT conflict budget per property (default: unlimited)",
    )
    p_check.add_argument(
        "--total-conflicts", type=int, default=None, metavar="N",
        help="SAT conflict budget for the whole run (default: unlimited)",
    )
    p_check.add_argument(
        "--max-frames", type=int, default=500, metavar="N",
        help="IC3 frame ceiling per property (default: 500)",
    )
    p_check.add_argument("--no-reuse", action="store_true", help="disable clauseDB re-use")
    p_check.add_argument(
        "--clause-db", default=None, metavar="PATH", dest="clause_db",
        help="persist the shared clause database at PATH across runs",
    )
    p_check.add_argument(
        "--respect-lifting",
        action="store_true",
        help="lifting respects property constraints (default: ignore + re-run)",
    )
    p_check.add_argument("--coi", action="store_true", help="cone-of-influence front end")
    p_check.add_argument("--ctg", action="store_true", help="CTG-aware generalization")
    p_check.add_argument(
        "--order", default=None, help="property order: design | cone | shuffled:<seed>"
    )
    p_check.add_argument(
        "--cluster-inner", choices=("joint", "ja"), default="joint",
        help="method inside each cluster (clustered only)",
    )
    p_check.add_argument(
        "--exclude-etf", action="store_true",
        help="joint/clustered: leave expected-to-fail properties out",
    )
    p_check.add_argument(
        "--similarity-threshold", type=float, default=0.5, metavar="T",
        help="clustered: COI-similarity cut in [0, 1] (default: 0.5)",
    )
    p_check.add_argument(
        "--engine", type=_engine_override, action="append", default=None,
        metavar="KEY=VALUE",
        help="low-level IC3Options override (repeatable; see "
        "ENGINE_OVERRIDE_KEYS in repro.session.config)",
    )
    p_check.add_argument(
        "--design-name", default=None, metavar="NAME",
        help="name used for the design in reports (default: derived "
        "from the design path)",
    )
    p_check.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for parallel-ja (default: one per CPU)",
    )
    p_check.add_argument(
        "--no-exchange", action="store_true",
        help="disable live clause exchange between parallel workers",
    )
    p_check.add_argument(
        "--exchange-shards", type=_shard_count, default=1, metavar="N|auto",
        help="clause-exchange shards for parallel-ja: a count, or 'auto' "
        "for one shard per property cluster (default: 1)",
    )
    p_check.add_argument(
        "--schedule-only", action="store_true",
        help="parallel-ja: simulate scheduling instead of spawning processes",
    )
    p_check.add_argument(
        "--stop-on-failure", action="store_true",
        help="parallel-ja: cancel queued properties after the first failure",
    )
    p_check.add_argument(
        "--max-seats", type=int, default=None, metavar="N",
        help="cap on pool seats this job may hold at once when submitted "
        "to a service (default: no cap, fair share governs)",
    )
    p_check.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="run-level seed for stochastic engines (portfolio random "
        "walk); per-property sub-seeds derive from it deterministically",
    )
    p_check.add_argument(
        "--portfolio-engines", default=None, metavar="E1,E2,...",
        help="engine slate the portfolio strategy races per property, a "
        "comma-separated subset of rw,bmc,kind,ic3 (default: all four)",
    )
    p_check.add_argument(
        "--progress",
        action="store_true",
        help="print progress events (frames, verdicts, clauseDB traffic) live",
    )
    p_check.add_argument("--json", default=None, help="write JSON report here")
    _add_cache_args(p_check)
    p_check.set_defaults(func=cmd_check)

    p_lint = sub.add_parser(
        "lint", help="run the project's own static-analysis checkers"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    p_lint.add_argument(
        "--baseline", default="analysis_baseline.toml", metavar="PATH",
        help="justified false-positive baseline (default: "
        "analysis_baseline.toml; a missing file is an empty baseline)",
    )
    p_lint.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel analysis processes (default: one per CPU)",
    )
    p_lint.add_argument(
        "--write-baseline", action="store_true",
        help="adopt the current findings into --baseline with TODO "
        "justifications (which must be replaced before the file loads)",
    )
    p_lint.add_argument(
        "--list-checkers",
        action=_ListCheckersAction,
        nargs=0,
        help="list registered checkers and exit",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_serve = sub.add_parser(
        "serve",
        help="verify a manifest of jobs, or run the HTTP server (--listen)",
    )
    p_serve.add_argument(
        "manifest", nargs="?", default=None,
        help="JSON job manifest ({'jobs': [{'design': ..., ...}]} or a "
        "list); omitted with --listen",
    )
    p_serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve remote clients over HTTP instead of running a "
        "manifest (port 0 picks a free port; the bound address is "
        "printed as 'listening on HOST:PORT')",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker seats in the shared pool (default: manifest, then CPUs)",
    )
    p_serve.add_argument(
        "--max-concurrent-jobs", type=int, default=None, metavar="M",
        help="jobs in flight at once (default: manifest, then min(4, #jobs); "
        "4 with --listen)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="--listen: admission-queue bound; a full queue answers "
        "HTTP 429 (default: 64)",
    )
    p_serve.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="--listen: how long a SIGINT/SIGTERM drain lets running "
        "jobs finish before cancelling them (default: 10)",
    )
    p_serve.add_argument(
        "--progress", action="store_true",
        help="print every job's progress events live",
    )
    p_serve.add_argument(
        "--stats-interval", type=float, default=None, metavar="SECONDS",
        help="broadcast a stats-snapshot event (seat occupancy, backoff, "
        "queue depth, latencies) every SECONDS; printed even without "
        "--progress",
    )
    p_serve.add_argument(
        "--json", default=None, help="write the per-job JSON reports here"
    )
    _add_cache_args(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit jobs to a remote 'serve --listen' server"
    )
    p_submit.add_argument(
        "target",
        help="a design file or a .json job manifest (local .aag designs "
        "are inlined over the wire)",
    )
    p_submit.add_argument(
        "--host", required=True, metavar="HOST:PORT",
        help="the remote server's address",
    )
    p_submit.add_argument(
        "--strategy", default=None, metavar="NAME",
        help="strategy for jobs that do not name one (default: parallel-ja "
        "for manifests, the server default for single designs)",
    )
    p_submit.add_argument(
        "--priority", type=float, default=None,
        help="single-design submits: the job's fair-share weight",
    )
    p_submit.add_argument(
        "--progress", action="store_true",
        help="stream each job's events (resumable) while waiting",
    )
    p_submit.add_argument(
        "--no-wait", action="store_true",
        help="print the job ids and exit without waiting for results",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job result wait (default: wait forever)",
    )
    p_submit.add_argument(
        "--json", default=None, help="write the per-job JSON reports here"
    )
    _add_cache_args(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_watch = sub.add_parser(
        "watch", help="re-attach to a remote job's live event stream"
    )
    p_watch.add_argument("job", help="the job id a submit printed")
    p_watch.add_argument(
        "--host", required=True, metavar="HOST:PORT",
        help="the remote server's address",
    )
    p_watch.add_argument(
        "--after", type=int, default=0, metavar="N",
        help="resume after event id N (default: 0 = replay from the start)",
    )
    p_watch.set_defaults(func=cmd_watch)

    p_stats = sub.add_parser(
        "stats", help="print a remote server's live stats surface as JSON"
    )
    p_stats.add_argument(
        "--host", required=True, metavar="HOST:PORT",
        help="the remote server's address",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_cache = sub.add_parser(
        "cache", help="inspect or prune a cross-run proof cache"
    )
    p_cache.add_argument(
        "action", choices=("stats", "gc", "clear"),
        help="stats: JSON size summary; gc: LRU-evict past the bounds; "
        "clear: remove every entry and warm log",
    )
    p_cache.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="the proof store directory",
    )
    p_cache.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="gc: keep at most N verdict entries",
    )
    p_cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="gc: keep the entries directory under N bytes",
    )
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe closed (e.g. ``check --progress | head``);
        # silence the shutdown and exit like a SIGPIPE'd process would.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
