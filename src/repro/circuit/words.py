"""Word-level operations over vectors of AIG literals.

A *word* is a list of AIG literals, least-significant bit first.  These
helpers build ripple-carry arithmetic and comparators out of AND gates,
which is how the Verilog counter of the paper's Example 1 and the
synthetic benchmark families are expressed.
"""

from __future__ import annotations

from collections.abc import Sequence

from .aig import AIG, FALSE_LIT, TRUE_LIT, aig_not


def const_word(value: int, width: int) -> list[int]:
    """A constant as a word of TRUE/FALSE literals (LSB first)."""
    if value < 0:
        raise ValueError("const_word takes non-negative values")
    if width <= 0:
        raise ValueError("width must be positive")
    if value >= 1 << width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [TRUE_LIT if (value >> i) & 1 else FALSE_LIT for i in range(width)]


def word_value(bits: Sequence[bool]) -> int:
    """Integer value of a vector of booleans (LSB first)."""
    out = 0
    for i, bit in enumerate(bits):
        if bit:
            out |= 1 << i
    return out


def _check_same_width(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")


def add(aig: AIG, a: Sequence[int], b: Sequence[int], carry_in: int = FALSE_LIT) -> list[int]:
    """Ripple-carry addition (modular, result has the same width)."""
    _check_same_width(a, b)
    out = []
    carry = carry_in
    for abit, bbit in zip(a, b):
        s = aig.xor(aig.xor(abit, bbit), carry)
        carry = aig.or_(aig.and_(abit, bbit), aig.and_(carry, aig.xor(abit, bbit)))
        out.append(s)
    return out


def inc(aig: AIG, a: Sequence[int]) -> list[int]:
    """Increment by one (modular)."""
    out = []
    carry = TRUE_LIT
    for abit in a:
        out.append(aig.xor(abit, carry))
        carry = aig.and_(abit, carry)
    return out


def eq(aig: AIG, a: Sequence[int], b: Sequence[int]) -> int:
    """Equality comparator; returns a single literal."""
    _check_same_width(a, b)
    return aig.and_many(aig.xnor(x, y) for x, y in zip(a, b))


def eq_const(aig: AIG, a: Sequence[int], value: int) -> int:
    return eq(aig, a, const_word(value, len(a)))


def ult(aig: AIG, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned less-than; returns a single literal."""
    _check_same_width(a, b)
    lt = FALSE_LIT
    for abit, bbit in zip(a, b):  # LSB -> MSB; later bits dominate
        bit_lt = aig.and_(aig_not(abit), bbit)
        bit_eq = aig.xnor(abit, bbit)
        lt = aig.or_(bit_lt, aig.and_(bit_eq, lt))
    return lt


def ule(aig: AIG, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned less-or-equal."""
    return aig_not(ult(aig, b, a))


def ule_const(aig: AIG, a: Sequence[int], value: int) -> int:
    return ule(aig, a, const_word(value, len(a)))


def mux_word(aig: AIG, sel: int, then_word: Sequence[int], else_word: Sequence[int]) -> list[int]:
    """Per-bit multiplexer: ``sel ? then_word : else_word``."""
    _check_same_width(then_word, else_word)
    return [aig.mux(sel, t, e) for t, e in zip(then_word, else_word)]


def word_latches(aig: AIG, name: str, width: int, init: int = 0) -> list[int]:
    """Create a register of ``width`` latches named ``name[i]``."""
    return [
        aig.add_latch(f"{name}[{i}]", init=(init >> i) & 1)
        for i in range(width)
    ]


def set_next_word(aig: AIG, latches: Sequence[int], next_word: Sequence[int]) -> None:
    """Connect next-state functions for a whole register."""
    _check_same_width(latches, next_word)
    for latch, nxt in zip(latches, next_word):
        aig.set_next(latch, nxt)
