"""AIGER 1.9 binary format (.aig) reader and writer.

The HWMCC benchmark distributions ship binary AIGER: inputs and latch
current-state literals are implicit, and AND gates are delta-compressed
LEB128 pairs.  This module round-trips our AIGs through that format so
generated families can be exchanged with external tools (ABC, aigtoaig,
nuXmv) at realistic sizes.

Layout (AIGER 1.9):

* header ``aig M I L O A [B [C]]``;
* ``L`` latch lines: ``<next> [<reset>]`` in ASCII;
* ``O``/``B``/``C`` lines: one literal per line in ASCII;
* ``A`` gates in binary: for the i-th gate, ``lhs = 2*(I+L+i+1)`` is
  implicit and the file stores ``lhs - rhs0`` and ``rhs0 - rhs1``
  (with ``rhs0 >= rhs1``) as LEB128 varints;
* optional symbol table and comment section, as in the ASCII format.
"""

from __future__ import annotations


from .aig import AIG, aig_not


def _encode_varint(value: int) -> bytes:
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _decode_varint(data: bytes, pos: int) -> tuple[int, int]:
    value, shift = 0, 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated binary AIGER gate section")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def write_aig_binary(aig: AIG) -> bytes:
    """Serialize to binary AIGER; properties become bad-state literals."""
    # Compact variable order: inputs, latches, then ANDs topologically.
    remap = {0: 0}
    next_var = 1
    for lit in aig.inputs:
        remap[lit >> 1] = next_var
        next_var += 1
    for latch in aig.latches:
        remap[latch.lit >> 1] = next_var
        next_var += 1
    and_indices = sorted(idx for idx in range(aig.num_nodes) if aig.kind(idx) == "and")
    for idx in and_indices:
        remap[idx] = next_var
        next_var += 1

    def lit_of(lit: int) -> int:
        return remap[lit >> 1] * 2 + (lit & 1)

    max_var = next_var - 1
    n_in, n_latch, n_and = len(aig.inputs), len(aig.latches), len(and_indices)
    header = f"aig {max_var} {n_in} {n_latch} 0 {n_and} {len(aig.properties)}"
    if aig.constraints:
        header += f" {len(aig.constraints)}"
    chunks: list[bytes] = [header.encode("ascii"), b"\n"]
    for latch in aig.latches:
        line = str(lit_of(latch.next))
        if latch.init is None:
            line += f" {lit_of(latch.lit)}"
        elif latch.init == 1:
            line += " 1"
        chunks.append(line.encode("ascii") + b"\n")
    for prop in aig.properties:
        chunks.append(str(lit_of(aig_not(prop.lit))).encode("ascii") + b"\n")
    for constraint in aig.constraints:
        chunks.append(str(lit_of(constraint)).encode("ascii") + b"\n")
    for idx in and_indices:
        left, right = aig.and_fanins(idx)
        lhs = remap[idx] * 2
        rhs0, rhs1 = lit_of(left), lit_of(right)
        if rhs0 < rhs1:
            rhs0, rhs1 = rhs1, rhs0
        if not lhs > rhs0 >= rhs1:
            raise ValueError("AIG is not topologically ordered")
        chunks.append(_encode_varint(lhs - rhs0))
        chunks.append(_encode_varint(rhs0 - rhs1))
    # Symbol table (latches, inputs, bad names) and comment.
    for i, name in enumerate(aig.input_names):
        chunks.append(f"i{i} {name}\n".encode("ascii"))
    for i, latch in enumerate(aig.latches):
        chunks.append(f"l{i} {latch.name}\n".encode("ascii"))
    for i, prop in enumerate(aig.properties):
        flag = " etf" if prop.expected_to_fail else ""
        chunks.append(f"b{i} {prop.name}{flag}\n".encode("ascii"))
    chunks.append(b"c\nrepro binary AIGER writer\n")
    return b"".join(chunks)


def parse_aig_binary(data: bytes) -> AIG:
    """Parse binary AIGER into an AIG."""
    newline = data.find(b"\n")
    if newline < 0:
        raise ValueError("missing AIGER header")
    header = data[:newline].split()
    if not header or header[0] != b"aig":
        raise ValueError("not a binary AIGER file")
    nums = [int(x) for x in header[1:]]
    while len(nums) < 5:
        nums.append(0)
    _max_var, n_in, n_latch, n_out, n_and = nums[:5]
    n_bad = nums[5] if len(nums) > 5 else 0
    n_constr = nums[6] if len(nums) > 6 else 0

    aig = AIG()
    lit_map = {0: 0}
    for i in range(n_in):
        lit_map[i + 1] = aig.add_input()

    pos = newline + 1
    latch_rows: list[tuple[int, int, int | None]] = []
    for i in range(n_latch):
        end = data.find(b"\n", pos)
        parts = data[pos:end].split()
        pos = end + 1
        var = n_in + i + 1
        nxt = int(parts[0])
        init: int | None = 0
        if len(parts) > 1:
            reset = int(parts[1])
            if reset == var * 2:
                init = None
            elif reset in (0, 1):
                init = reset
            else:
                raise ValueError(f"unsupported latch reset literal {reset}")
        lit_map[var] = aig.add_latch(init=init)
        latch_rows.append((var, nxt, init))

    def read_ascii_lits(count: int) -> list[int]:
        nonlocal pos
        out = []
        for _ in range(count):
            end = data.find(b"\n", pos)
            out.append(int(data[pos:end].split()[0]))
            pos = end + 1
        return out

    out_rows = read_ascii_lits(n_out)
    bad_rows = read_ascii_lits(n_bad)
    constr_rows = read_ascii_lits(n_constr)

    def resolve(lit: int) -> int:
        var = lit >> 1
        if var not in lit_map:
            raise ValueError(f"use of undefined AIGER variable {var}")
        return lit_map[var] ^ (lit & 1)

    for i in range(n_and):
        lhs = 2 * (n_in + n_latch + i + 1)
        delta0, pos = _decode_varint(data, pos)
        delta1, pos = _decode_varint(data, pos)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if rhs0 < 0 or rhs1 < 0:
            raise ValueError("malformed delta encoding")
        lit_map[lhs >> 1] = aig.and_(resolve(rhs0), resolve(rhs1))

    for var, nxt, _ in latch_rows:
        aig.set_next(lit_map[var], resolve(nxt))

    # Symbol table.
    names, etf_flags = {}, {}
    rest = data[pos:].decode("ascii", errors="replace").splitlines()
    for line in rest:
        if line == "c":
            break
        if line[:1] == "b" and " " in line:
            idx_str, _, name = line.partition(" ")
            try:
                idx = int(idx_str[1:])
            except ValueError:
                continue
            etf = name.endswith(" etf")
            names[idx] = name[:-4] if etf else name
            etf_flags[idx] = etf
        elif line[:1] == "i" and " " in line:
            idx_str, _, name = line.partition(" ")
            try:
                idx = int(idx_str[1:])
            except ValueError:
                continue
            if idx < len(aig.input_names):
                aig.input_names[idx] = name

    bads = bad_rows if bad_rows else out_rows
    for i, bad in enumerate(bads):
        aig.add_property(
            names.get(i, f"b{i}"),
            aig_not(resolve(bad)),
            expected_to_fail=etf_flags.get(i, False),
        )
    for constraint in constr_rows:
        aig.add_constraint(resolve(constraint))
    return aig


def load_aig(path: str) -> AIG:
    """Load a binary AIGER file."""
    with open(path, "rb") as f:
        return parse_aig_binary(f.read())


def save_aig(aig: AIG, path: str) -> None:
    """Save to a binary AIGER file."""
    with open(path, "wb") as f:
        f.write(write_aig_binary(aig))
