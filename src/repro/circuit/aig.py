"""And-Inverter Graph (AIG) circuit model.

The AIG is the design representation used throughout the library, mirroring
the AIGER format used by the HWMCC benchmarks the paper evaluates on.

Conventions (identical to AIGER):

* Node indices are non-negative integers; node 0 is the constant FALSE.
* A *literal* is ``2*index`` (plain) or ``2*index + 1`` (inverted).
* ``TRUE_LIT = 1`` and ``FALSE_LIT = 0``.
* Latches have a *next-state* literal and a reset value (0, 1, or ``None``
  for uninitialized).
* Safety properties are named literals that must evaluate TRUE in every
  reachable state (the paper's ``P(S)`` convention); the corresponding
  AIGER "bad" literal is the negation.

AND nodes are structurally hashed, and trivial simplifications
(constant propagation, idempotence, complementation) are applied on
construction, so equivalent sub-circuits share nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

FALSE_LIT = 0
TRUE_LIT = 1


def aig_not(lit: int) -> int:
    """Negate an AIG literal."""
    return lit ^ 1

def aig_var(lit: int) -> int:
    """Node index of an AIG literal."""
    return lit >> 1


def is_negated(lit: int) -> bool:
    """True if the literal is inverted."""
    return bool(lit & 1)


@dataclass(frozen=True)
class Latch:
    """A state-holding element: current-state literal, next-state fn, reset."""

    lit: int
    next: int
    init: int | None  # 0, 1, or None (uninitialized)
    name: str = ""


@dataclass(frozen=True)
class Property:
    """A named safety property: ``lit`` must be TRUE in all reachable states."""

    name: str
    lit: int
    expected_to_fail: bool = False


@dataclass
class _AndNode:
    left: int
    right: int


class AIG:
    """A mutable And-Inverter Graph with structural hashing.

    Typical construction::

        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, aig.and_(a, b))
        aig.add_property("never_q", aig_not(q))
    """

    def __init__(self) -> None:
        # Node 0 is constant FALSE; kind table parallels node indices.
        self._kinds: list[str] = ["const"]
        self.inputs: list[int] = []  # input literals (even)
        self.input_names: list[str] = []
        self.latches: list[Latch] = []
        self.properties: list[Property] = []
        self.constraints: list[int] = []  # invariant constraints (AIGER 1.9)
        self._ands: dict[int, _AndNode] = {}  # node index -> fanins
        self._strash: dict[tuple[int, int], int] = {}
        self._latch_pos: dict[int, int] = {}  # node index -> position in latches

    # ------------------------------------------------------------------
    # Node creation
    # ------------------------------------------------------------------
    def _new_node(self, kind: str) -> int:
        self._kinds.append(kind)
        return len(self._kinds) - 1

    def add_input(self, name: str = "") -> int:
        """Add a primary input; returns its (even) literal."""
        idx = self._new_node("input")
        lit = idx * 2
        self.inputs.append(lit)
        self.input_names.append(name or f"i{len(self.inputs) - 1}")
        return lit

    def add_latch(self, name: str = "", init: int | None = 0) -> int:
        """Add a latch with reset value ``init``; returns its literal.

        The next-state function starts as the latch itself (a hold
        register) and is set later via :meth:`set_next`.
        """
        if init not in (0, 1, None):
            raise ValueError(f"latch init must be 0, 1 or None, got {init!r}")
        idx = self._new_node("latch")
        lit = idx * 2
        self._latch_pos[idx] = len(self.latches)
        self.latches.append(Latch(lit=lit, next=lit, init=init, name=name or f"l{len(self.latches)}"))
        return lit

    def set_next(self, latch_lit: int, next_lit: int) -> None:
        """Set the next-state function of a latch created by add_latch."""
        idx = aig_var(latch_lit)
        if is_negated(latch_lit):
            raise ValueError("latch literal must be non-inverted")
        pos = self._latch_pos.get(idx)
        if pos is None:
            raise ValueError(f"literal {latch_lit} is not a latch")
        old = self.latches[pos]
        self.latches[pos] = Latch(lit=old.lit, next=next_lit, init=old.init, name=old.name)

    def and_(self, a: int, b: int) -> int:
        """AND of two literals, with simplification and structural hashing."""
        self._check_lit(a)
        self._check_lit(b)
        # Constant / trivial simplifications.
        if a == FALSE_LIT or b == FALSE_LIT or a == aig_not(b):
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if b == TRUE_LIT or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = self._strash.get(key)
        if cached is not None:
            return cached
        idx = self._new_node("and")
        self._ands[idx] = _AndNode(a, b)
        lit = idx * 2
        self._strash[key] = lit
        return lit

    # Derived gates -----------------------------------------------------
    def or_(self, a: int, b: int) -> int:
        return aig_not(self.and_(aig_not(a), aig_not(b)))

    def xor(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, aig_not(b)), self.and_(aig_not(a), b))

    def xnor(self, a: int, b: int) -> int:
        return aig_not(self.xor(a, b))

    def mux(self, sel: int, then_lit: int, else_lit: int) -> int:
        """``sel ? then_lit : else_lit``."""
        return self.or_(self.and_(sel, then_lit), self.and_(aig_not(sel), else_lit))

    def implies(self, a: int, b: int) -> int:
        return self.or_(aig_not(a), b)

    def and_many(self, lits: Iterable[int]) -> int:
        out = TRUE_LIT
        for lit in lits:
            out = self.and_(out, lit)
        return out

    def or_many(self, lits: Iterable[int]) -> int:
        out = FALSE_LIT
        for lit in lits:
            out = self.or_(out, lit)
        return out

    # ------------------------------------------------------------------
    # Properties & constraints
    # ------------------------------------------------------------------
    def add_property(self, name: str, lit: int, expected_to_fail: bool = False) -> Property:
        """Declare a safety property: ``lit`` must hold in every reachable state."""
        self._check_lit(lit)
        prop = Property(name=name, lit=lit, expected_to_fail=expected_to_fail)
        self.properties.append(prop)
        return prop

    def add_constraint(self, lit: int) -> None:
        """Add an invariant constraint (assumed true in every considered state)."""
        self._check_lit(lit)
        self.constraints.append(lit)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._kinds)

    def kind(self, idx: int) -> str:
        return self._kinds[idx]

    def and_fanins(self, idx: int) -> tuple[int, int]:
        node = self._ands[idx]
        return node.left, node.right

    def is_latch(self, lit: int) -> bool:
        return self._kinds[aig_var(lit)] == "latch"

    def latch_by_lit(self, lit: int) -> Latch:
        return self.latches[self._latch_pos[aig_var(lit)]]

    def _check_lit(self, lit: int) -> None:
        if lit < 0 or aig_var(lit) >= len(self._kinds):
            raise ValueError(f"literal {lit} out of range")

    def cone_of_influence(self, roots: Iterable[int]) -> tuple[set, set]:
        """Transitive fanin of ``roots`` through ANDs *and* latch next-fns.

        Returns ``(node_indices, latch_literals)``: every node reachable
        backwards from the roots, and the latches among them.  Used by the
        property-similarity/ordering heuristics and by the generators to
        check that synthesized designs have the intended cone structure.
        """
        seen: set = set()
        latches: set = set()
        stack = [aig_var(r) for r in roots]
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            kind = self._kinds[idx]
            if kind == "and":
                node = self._ands[idx]
                stack.append(aig_var(node.left))
                stack.append(aig_var(node.right))
            elif kind == "latch":
                latches.add(idx * 2)
                stack.append(aig_var(self.latches[self._latch_pos[idx]].next))
        return seen, latches

    def stats(self) -> dict[str, int]:
        return {
            "inputs": len(self.inputs),
            "latches": len(self.latches),
            "ands": len(self._ands),
            "properties": len(self.properties),
            "constraints": len(self.constraints),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        s = self.stats()
        return (
            f"AIG(inputs={s['inputs']}, latches={s['latches']}, "
            f"ands={s['ands']}, properties={s['properties']})"
        )
