"""Cone-of-influence (COI) reduction.

For a single property, only the latches and inputs in the transitive
fanin of the property literal (through next-state functions) can affect
its truth.  Extracting that sub-design before running an engine is the
classic front-end optimization for separate verification: the paper's
related work ([8], [10]) groups properties by exactly this structure,
and a COI front end removes the per-property whole-design encoding cost
that makes joint verification win on ballast-heavy designs (Table II's
6s403 row — see EXPERIMENTS.md for the ablation).

The reduction is *exact*: the reduced system has the same traces as the
original when projected onto the kept latches and inputs, so verdicts
and counterexamples transfer 1:1 (counterexamples are translated back by
name-preserving input literals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from .aig import AIG, Property, aig_not, aig_var, is_negated


@dataclass
class CoiReduction:
    """A reduced design plus the literal maps to translate results back."""

    aig: AIG
    input_map: dict[int, int]  # original input lit -> reduced input lit
    latch_map: dict[int, int]  # original latch lit -> reduced latch lit
    kept_properties: list[str] = field(default_factory=list)

    def translate_inputs_back(self, frames: Sequence[dict[int, bool]]) -> list[dict[int, bool]]:
        """Map a reduced-design input trace to original-design literals.

        Inputs outside the cone are unconstrained; they default to False
        (any value yields the same property behaviour).
        """
        reverse = {v: k for k, v in self.input_map.items()}
        return [
            {reverse[lit]: value for lit, value in frame.items() if lit in reverse}
            for frame in frames
        ]


def reduce_to_cone(aig: AIG, prop_names: Iterable[str]) -> CoiReduction:
    """Extract the sub-design feeding the named properties.

    Keeps exactly the latches in the transitive fanin (through next-state
    functions) of the properties' literals, the inputs those cones read,
    and the AIG constraints (which apply to every state).  Latch names,
    input names and reset values are preserved so clauseDBs built on the
    reduced design remain meaningful.
    """
    wanted = set(prop_names)
    props = [p for p in aig.properties if p.name in wanted]
    missing = wanted - {p.name for p in props}
    if missing:
        raise KeyError(f"unknown properties: {sorted(missing)}")

    roots = [p.lit for p in props] + list(aig.constraints)
    node_set, latch_lits = aig.cone_of_influence(roots)

    reduced = AIG()
    # Deterministic construction order: follow the original ordering.
    input_map: dict[int, int] = {}
    for i, inp in enumerate(aig.inputs):
        if aig_var(inp) in node_set:
            input_map[inp] = reduced.add_input(aig.input_names[i])
    latch_map: dict[int, int] = {}
    kept_latches = []
    for latch in aig.latches:
        if latch.lit in latch_lits:
            latch_map[latch.lit] = reduced.add_latch(latch.name, init=latch.init)
            kept_latches.append(latch)

    # Rebuild the combinational logic bottom-up with memoization.
    memo: dict[int, int] = {0: 0}

    def rebuild(lit: int) -> int:
        idx = aig_var(lit)
        if idx not in memo:
            kind = aig.kind(idx)
            if kind == "input":
                memo[idx] = input_map[idx * 2]
            elif kind == "latch":
                memo[idx] = latch_map[idx * 2]
            else:
                _rebuild_cone(idx)
        out = memo[idx]
        return aig_not(out) if is_negated(lit) else out

    def _rebuild_cone(root: int) -> None:
        stack = [root]
        while stack:
            idx = stack[-1]
            if idx in memo:
                stack.pop()
                continue
            kind = aig.kind(idx)
            if kind == "input":
                memo[idx] = input_map[idx * 2]
                stack.pop()
            elif kind == "latch":
                memo[idx] = latch_map[idx * 2]
                stack.pop()
            else:
                left, right = aig.and_fanins(idx)
                pending = [v for v in (aig_var(left), aig_var(right)) if v not in memo]
                if pending:
                    stack.extend(pending)
                    continue
                new_left = memo[aig_var(left)] ^ (1 if is_negated(left) else 0)
                new_right = memo[aig_var(right)] ^ (1 if is_negated(right) else 0)
                memo[idx] = reduced.and_(new_left, new_right)
                stack.pop()

    for latch in kept_latches:
        reduced.set_next(latch_map[latch.lit], rebuild(latch.next))
    for prop in props:
        reduced.add_property(prop.name, rebuild(prop.lit), prop.expected_to_fail)
    for constraint in aig.constraints:
        reduced.add_constraint(rebuild(constraint))

    return CoiReduction(
        aig=reduced,
        input_map=input_map,
        latch_map=latch_map,
        kept_properties=[p.name for p in props],
    )


def coi_signature(aig: AIG, prop: Property) -> frozenset:
    """The latch-literal cone of a property (a similarity key for grouping)."""
    _, latches = aig.cone_of_influence([prop.lit])
    return frozenset(latches)


def support_signature(aig: AIG, lit: int) -> frozenset:
    """Latch *and* input literals in the cone of ``lit``.

    Unlike :func:`coi_signature`, primary inputs count: two properties
    can interact purely through a shared input (the paper's Example 1:
    ``P0: req == 1`` constrains the input that drives ``P1``'s counter),
    so input overlap must keep an assumption alive in COI-reduced
    JA-verification.
    """
    nodes, latches = aig.cone_of_influence([lit])
    inputs = {inp for inp in aig.inputs if (inp >> 1) in nodes}
    return frozenset(latches | inputs)
