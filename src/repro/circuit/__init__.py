"""Hardware-design substrate: AIG model, word-level builder, AIGER I/O,
and a concrete simulator for trace validation."""

from .aig import AIG, FALSE_LIT, TRUE_LIT, Latch, Property, aig_not, aig_var, is_negated
from .aiger import load_aag, parse_aag, save_aag, write_aag
from .aiger_binary import load_aig, parse_aig_binary, save_aig, write_aig_binary
from .coi import CoiReduction, coi_signature, reduce_to_cone, support_signature
from .simulate import Simulator
from . import words

__all__ = [
    "AIG",
    "FALSE_LIT",
    "TRUE_LIT",
    "Latch",
    "Property",
    "aig_not",
    "aig_var",
    "is_negated",
    "parse_aag",
    "write_aag",
    "load_aag",
    "save_aag",
    "parse_aig_binary",
    "write_aig_binary",
    "load_aig",
    "save_aig",
    "CoiReduction",
    "reduce_to_cone",
    "coi_signature",
    "support_signature",
    "Simulator",
    "words",
]
