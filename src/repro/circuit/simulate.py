"""Concrete cycle-accurate simulation of an AIG.

Used to validate counterexamples produced by the engines: a CEX is only
reported to the user after it has been replayed on the design and shown
to actually drive the claimed property to FALSE (and no earlier property
when that is asserted, e.g. for debugging-set membership checks).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from .aig import AIG, aig_var, is_negated


class Simulator:
    """Evaluates an AIG cycle by cycle.

    State is a mapping from latch literal to bool.  Inputs are supplied
    per cycle as a mapping from input literal to bool; unspecified inputs
    default to False.
    """

    def __init__(self, aig: AIG) -> None:
        self.aig = aig
        self.state: dict[int, bool] = {}
        self.reset()

    def reset(self, uninitialized: Mapping[int, bool] | None = None) -> None:
        """Return all latches to their reset values.

        ``uninitialized`` supplies values for latches with ``init=None``.
        """
        self.state = {}
        for latch in self.aig.latches:
            if latch.init is None:
                value = bool(uninitialized.get(latch.lit, False)) if uninitialized else False
            else:
                value = bool(latch.init)
            self.state[latch.lit] = value

    # ------------------------------------------------------------------
    def eval_lit(self, lit: int, inputs: Mapping[int, bool]) -> bool:
        """Evaluate a literal in the current state under the given inputs."""
        value = self._eval_node(aig_var(lit), inputs, {})
        return not value if is_negated(lit) else value

    def _eval_node(self, idx: int, inputs: Mapping[int, bool], cache: dict[int, bool]) -> bool:
        # Iterative DFS to survive deep circuits without recursion limits.
        stack = [idx]
        aig = self.aig
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            kind = aig.kind(node)
            if kind == "const":
                cache[node] = False
                stack.pop()
            elif kind == "input":
                cache[node] = bool(inputs.get(node * 2, False))
                stack.pop()
            elif kind == "latch":
                cache[node] = self.state[node * 2]
                stack.pop()
            else:  # and
                left, right = aig.and_fanins(node)
                lv, rv = aig_var(left), aig_var(right)
                missing = [v for v in (lv, rv) if v not in cache]
                if missing:
                    stack.extend(missing)
                    continue
                lval = cache[lv] ^ is_negated(left)
                rval = cache[rv] ^ is_negated(right)
                cache[node] = lval and rval
                stack.pop()
        return cache[idx]

    def step(self, inputs: Mapping[int, bool]) -> None:
        """Advance one clock cycle under the given input valuation."""
        cache: dict[int, bool] = {}
        new_state = {}
        for latch in self.aig.latches:
            value = self._eval_node(aig_var(latch.next), inputs, cache)
            new_state[latch.lit] = value ^ is_negated(latch.next)
        self.state = new_state

    # ------------------------------------------------------------------
    def run(
        self,
        input_seq: Sequence[Mapping[int, bool]],
        watch: Iterable[int] = (),
    ) -> list[dict[int, bool]]:
        """Run a full input sequence; returns per-cycle values of ``watch``.

        The returned list has one entry per cycle *before* the clock edge,
        i.e. entry ``t`` is evaluated in the state reached after ``t``
        steps, under ``input_seq[t]``.
        """
        watch = list(watch)
        rows: list[dict[int, bool]] = []
        for frame_inputs in input_seq:
            rows.append({lit: self.eval_lit(lit, frame_inputs) for lit in watch})
            self.step(frame_inputs)
        return rows

    def check_property_failure(
        self,
        input_seq: Sequence[Mapping[int, bool]],
        prop_lit: int,
        uninitialized: Mapping[int, bool] | None = None,
    ) -> int | None:
        """Replay ``input_seq``; return the first cycle where ``prop_lit``
        is FALSE, or None if the property holds along the whole trace."""
        self.reset(uninitialized)
        for t, frame_inputs in enumerate(input_seq):
            if not self.eval_lit(prop_lit, frame_inputs):
                return t
            self.step(frame_inputs)
        return None
