"""Structured introspection for :class:`VerificationService`.

:class:`ServiceStats` is the one-call answer to "what is the service
doing right now": admission-queue depth and slot occupancy, the shared
pool's :class:`~repro.parallel.PoolStats` (per-seat liveness, crash
streaks and backoff timers), clause-exchange traffic, and one
:class:`JobStats` per submitted job with its queue-wait and run
latency.  Snapshots are taken on the dispatcher thread (so seat
assignments are read race-free) and returned as frozen records.

``ServiceStats`` also answers ``stats["pool"]["runs"]``-style
subscripting with the dict form, so callers written against the old
plain-dict ``service.stats()`` keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.stats import PoolStats

__all__ = ["JobStats", "ServiceStats", "latency_summary"]

_TERMINAL = frozenset({"done", "failed", "cancelled"})


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def latency_summary(jobs: tuple["JobStats", ...]) -> dict:
    """Median/max queue-wait and run latency across ``jobs``.

    Waits count every job (a queued job's wait is still growing); run
    latency counts only jobs that actually started.
    """
    waits = [job.wait_s for job in jobs]
    runs = [job.run_s for job in jobs if job.started]
    return {
        "wait_p50_s": _percentile(waits, 0.5) if waits else 0.0,
        "wait_max_s": max(waits) if waits else 0.0,
        "run_p50_s": _percentile(runs, 0.5) if runs else 0.0,
        "run_max_s": max(runs) if runs else 0.0,
    }


@dataclass(frozen=True)
class JobStats:
    """One submitted job's lifecycle timing at one instant.

    ``wait_s`` is submission-to-start (still growing while queued);
    ``run_s`` is start-to-finish (still growing while running, ``0.0``
    for a job that never started, e.g. cancelled in the queue).
    """

    job: str
    design: str
    strategy: str
    status: str  # JobStatus value: queued/running/done/failed/cancelled
    kind: str  # "pool" | "thread"
    priority: float
    started: bool
    wait_s: float
    run_s: float

    def as_dict(self) -> dict:
        return {
            "job": self.job,
            "design": self.design,
            "strategy": self.strategy,
            "status": self.status,
            "kind": self.kind,
            "priority": self.priority,
            "started": self.started,
            "wait_s": self.wait_s,
            "run_s": self.run_s,
        }


@dataclass(frozen=True)
class ServiceStats:
    """The whole service at one instant.

    ``pool`` is ``None`` until the first pooled job creates the shared
    pool; ``exchange`` is ``None`` until a scheduler exists (totals
    cover finished jobs plus every live job's shards).
    """

    pending: int
    running: int
    finished: int
    submitted: int
    max_concurrent_jobs: int
    max_pending: int
    jobs: tuple[JobStats, ...]
    latency: dict
    pool: PoolStats | None = None
    exchange: dict | None = None
    #: Aggregated proof-cache counters (hits/misses/certify_rejects and
    #: store sizes) across every cache_dir jobs have attached; ``None``
    #: while no job has used the cross-run cache.
    cache: dict | None = None

    def as_dict(self) -> dict:
        # Top-level queue keys and a pool dict that splices the pool
        # counters keep the pre-stats plain-dict shape as a subset.
        out = {
            "pending": self.pending,
            "running": self.running,
            "submitted": self.submitted,
            "max_concurrent_jobs": self.max_concurrent_jobs,
            "max_pending": self.max_pending,
            "jobs": {
                "pending": self.pending,
                "running": self.running,
                "finished": self.finished,
                "submitted": self.submitted,
                "records": [job.as_dict() for job in self.jobs],
            },
            "latency": dict(self.latency),
            "exchange": self.exchange,
        }
        if self.pool is not None:
            out["pool"] = self.pool.as_dict()
        if self.cache is not None:
            out["cache"] = dict(self.cache)
        return out

    # Dict-compatible reads for callers of the legacy plain-dict API.
    def __getitem__(self, key: str):
        return self.as_dict()[key]

    def __contains__(self, key: str) -> bool:
        return key in self.as_dict()

    def get(self, key: str, default=None):
        return self.as_dict().get(key, default)

    @property
    def terminal_jobs(self) -> tuple[JobStats, ...]:
        return tuple(job for job in self.jobs if job.status in _TERMINAL)
