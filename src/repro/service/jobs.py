"""Job handles: the client-side view of one submitted verification.

A :meth:`~repro.service.VerificationService.submit` returns a
:class:`JobHandle` immediately; the verification runs in the service's
scheduler while the caller holds the handle.  The handle exposes the
job's lifecycle four ways:

* :attr:`JobHandle.status` — the current :class:`JobStatus`;
* :meth:`JobHandle.result` — block (with optional timeout) for the
  job's :class:`~repro.multiprop.report.MultiPropReport`, re-raising
  whatever the strategy raised;
* :attr:`JobHandle.done` — a :class:`concurrent.futures.Future`
  resolved with the report (or the strategy's exception), for callers
  composing with executor pipelines or ``wait``/``as_completed``;
* :meth:`JobHandle.events` — a live iterator over the job's
  :class:`~repro.progress.ProgressEvent` stream, terminating on the
  job's :class:`~repro.progress.JobFinished`.

Cancellation (:meth:`JobHandle.cancel`) is cooperative and never
perturbs sibling jobs: a queued job is cancelled outright (its report
marks every property UNKNOWN), a running pooled job stops feeding
seats and records its remaining properties UNKNOWN (in-flight
properties still report — their budgets are clamped), and a running
*threaded* job cannot be preempted (``cancel`` returns False).
"""

from __future__ import annotations

import enum
import queue
import threading
from concurrent.futures import Future
from collections.abc import Iterator

from ..multiprop.report import MultiPropReport
from ..progress import Emit, JobFinished, ProgressEvent

#: How often event streams wake to re-check for a terminally-ended job
#: whose final event never arrived (dispatcher death).
_EVENT_POLL_TIMEOUT = 0.5


class JobStatus(enum.Enum):
    """Lifecycle of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


class QueueFull(RuntimeError):
    """``submit(block=False)`` found the bounded admission queue full."""

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"admission queue is full ({pending}/{limit} jobs pending); "
            f"retry, submit(block=True), or raise max_pending"
        )
        self.pending = pending
        self.limit = limit


class JobHandle:
    """The caller's handle on one submitted job (thread-safe)."""

    def __init__(
        self, job_id: str, design_name: str, strategy: str, priority: float
    ) -> None:
        self.job_id = job_id
        self.design_name = design_name
        self.strategy = strategy
        self.priority = priority
        self.done: "Future[MultiPropReport]" = Future()
        self.done.set_running_or_notify_cancel()  # never Future-cancelled
        self._status = JobStatus.QUEUED
        self._lock = threading.Lock()
        self._subscribers: list[Emit] = []
        self._event_queues: list["queue.Queue"] = []
        # set by the service: called on cancel() to request cancellation
        self._cancel_request = None

    # ------------------------------------------------------------------
    # Status and results
    # ------------------------------------------------------------------
    @property
    def status(self) -> JobStatus:
        return self._status

    def result(self, timeout: float | None = None) -> MultiPropReport:
        """The job's report; blocks, re-raises strategy exceptions."""
        return self.done.result(timeout=timeout)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; True if it finished in time."""
        try:
            self.done.exception(timeout=timeout)
        except TimeoutError:
            return False
        return True

    def cancel(self) -> bool:
        """Request cancellation; True if the request could take effect.

        Queued jobs and running *pooled* jobs are cancellable; a
        running threaded job has no preemption point and a terminal job
        is past cancelling (both return False).  The job still resolves
        normally: :meth:`result` returns the partial report with the
        cancelled remainder UNKNOWN.
        """
        request = self._cancel_request
        if request is None or self._status.terminal:
            return False
        return bool(request(self))

    # ------------------------------------------------------------------
    # Event channel
    # ------------------------------------------------------------------
    def subscribe(self, callback: Emit) -> Emit:
        """Register a callback for this job's events; returns it."""
        with self._lock:
            self._subscribers.append(callback)
        return callback

    def events(self) -> Iterator[ProgressEvent]:
        """Live stream of this job's events, ending on its JobFinished.

        Subscribing is lazy: events emitted before the first
        :meth:`events` call are not replayed (this is a live stream,
        not a log).  A stream opened on a terminal job yields nothing.
        """
        events: "queue.Queue" = queue.Queue()
        with self._lock:
            if self._status.terminal:
                return
            self._event_queues.append(events)
        try:
            while True:
                try:
                    event = events.get(timeout=_EVENT_POLL_TIMEOUT)
                except queue.Empty:
                    # No event and the job already ended: the dispatcher
                    # died between the terminal transition and the
                    # JobFinished emit — bail out instead of hanging.
                    if self._status.terminal:
                        return
                    continue
                yield event
                if isinstance(event, JobFinished):
                    return
        finally:
            with self._lock:
                if events in self._event_queues:
                    self._event_queues.remove(events)

    # ------------------------------------------------------------------
    # Service-side plumbing
    # ------------------------------------------------------------------
    def _emit(self, event: ProgressEvent) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
            queues = list(self._event_queues)
        for callback in subscribers:
            callback(event)
        for events in queues:
            events.put(event)

    def _transition(self, status: JobStatus) -> None:
        self._status = status

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobHandle({self.job_id!r}, {self.strategy!r} on "
            f"{self.design_name!r}, {self._status.value})"
        )
