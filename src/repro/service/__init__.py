"""Job-oriented verification service (the server regime).

The paper's case for JA-verification is amortizing work across many
properties of one design; this package extends that amortization to
many *clients*: a :class:`VerificationService` owns (or attaches to)
one persistent :class:`~repro.parallel.WorkerPool` and serves any
number of concurrently submitted verification jobs against it::

    from repro.service import VerificationService

    with VerificationService(workers=4, max_concurrent_jobs=8) as service:
        fast = service.submit("ctrl.aag", strategy="parallel-ja", priority=2)
        slow = service.submit("dma.aag", strategy="parallel-ja")
        for event in fast.events():      # live stream, ends on JobFinished
            print(event.kind)
        print(fast.result().debugging_set())
        slow.cancel()                    # never perturbs fast's verdicts

``submit → handle → stream → result``: :meth:`VerificationService.submit`
returns a :class:`JobHandle` with ``status``, ``cancel()``,
``events()``, ``result(timeout=...)`` and a ``done`` future.
Property-level work of all pooled jobs is interleaved onto the shared
worker seats by a weighted fair-share scheduler (see
:class:`~repro.parallel.engine.SeatScheduler`), admission is bounded
(:class:`QueueFull`, :class:`~repro.progress.ServiceSaturated`), and
:class:`~repro.session.Session` is a thin synchronous wrapper over a
private single-job service — the one-shot API and the server API are
the same machinery.
"""

from .core import VerificationService
from .jobs import JobHandle, JobStatus, QueueFull
from .stats import JobStats, ServiceStats

__all__ = [
    "VerificationService",
    "JobHandle",
    "JobStatus",
    "QueueFull",
    "ServiceStats",
    "JobStats",
]
