"""The job-oriented verification service.

:class:`VerificationService` is the server-regime entry point: many
jobs — each a whole multi-property verification of some design under
some :class:`~repro.session.VerificationConfig` — run *concurrently*
against one shared :class:`~repro.parallel.WorkerPool`.

Execution model
---------------

``submit(design, config, priority=...)`` returns a
:class:`~repro.service.JobHandle` immediately.  Jobs wait in a
**bounded admission queue** (``max_pending``; a full queue emits
:class:`~repro.progress.ServiceSaturated` and either blocks the
submitter or raises :class:`~repro.service.QueueFull` with
``block=False``) until one of ``max_concurrent_jobs`` slots frees up.
Admitted jobs execute one of two ways:

* **pooled** — ``strategy="parallel-ja"`` (without ``schedule_only``):
  the job's per-property proofs are *interleaved with every other
  pooled job's* onto the shared pool's worker seats by the
  :class:`~repro.parallel.engine.SeatScheduler` — weighted fair share
  across jobs (seats held per unit of ``priority``), LPT within each
  job, per-job run-id isolation, watchdogs, crash re-dispatch and
  sharded clause exchanges all preserved from the single-run engine;
* **threaded** — every other strategy runs to completion on a service
  thread (sequential engines have no seat-level parallelism to
  multiplex; they still gain concurrent admission, handles, events and
  cancellation).

A single dispatcher thread owns the scheduler, so all seat decisions
are serialized and — with one worker and one job — deterministic,
exactly like the engine it replaced.

The service either *owns* its pool (constructed lazily from
``workers=...``, shut down on :meth:`close`) or *attaches* to a caller
pool (left running on close).  While a service is attached, the pool's
message stream is leased to its scheduler — running the engine
directly on the same pool is refused rather than silently corrupted.

:class:`~repro.session.Session` is a thin synchronous wrapper over a
private single-job service, so the one-shot API and the server API
exercise the same machinery.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque

import queue as queue_mod

from ..multiprop.report import MultiPropReport, PropOutcome
from ..engines.result import PropStatus
from ..parallel.engine import SeatScheduler
from ..parallel.pool import WorkerPool
from ..parallel.stats import PoolStats
from ..progress import (
    Emit,
    JobFinished,
    JobQueued,
    JobStarted,
    ProgressEvent,
    ServiceSaturated,
    StatsSnapshot,
)
from ..session.config import VerificationConfig, resolve_order
from ..session.registry import get_strategy
from .jobs import JobHandle, JobStatus, QueueFull
from .stats import JobStats, ServiceStats, latency_summary


class _JobRecord:
    """Service-side state of one submitted job."""

    __slots__ = (
        "handle",
        "ts",
        "config",
        "order",
        "priority",
        "kind",
        "submitted_at",
        "started_at",
        "finished_at",
        "cancel_requested",
        "thread",
        "pooled_job",
        "emit_failure",
        "announced",
        "resolver",
        "cached_outcomes",
        "remaining_order",
        "warm_clauses",
    )

    def __init__(self, handle, ts, config, order, priority, kind) -> None:
        self.handle = handle
        self.ts = ts
        self.config = config
        self.order = order  # resolved property-name list
        self.priority = priority
        self.kind = kind  # "pool" | "thread"
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.cancel_requested = False
        self.thread: threading.Thread | None = None
        self.pooled_job = None  # PooledJob while executing on seats
        # Cross-run proof cache state (set at start when the job's
        # config names a cache_dir): the certification-gated resolver,
        # the cache-served outcomes, the properties left to prove, and
        # warm-start clauses for the job's clause DBs.
        self.resolver = None
        self.cached_outcomes: dict[str, PropOutcome] = {}
        self.remaining_order: list[str] | None = None
        self.warm_clauses: tuple = ()
        # First exception a subscriber raised while consuming this
        # job's events (e.g. BrokenPipeError from a print callback);
        # surfaced through the handle's future, never allowed to kill
        # the dispatcher or leave the future unresolved.
        self.emit_failure: BaseException | None = None
        # The dispatcher may not admit this record until its JobQueued
        # has been emitted (on the submitting thread) — otherwise a
        # fast job could stream JobStarted before its own JobQueued.
        self.announced = False


class _StatsRequest:
    """A ``stats()`` call parked on the command queue.

    The dispatcher thread owns the scheduler, so seat assignments and
    backoff timers can only be read race-free between its steps; user
    threads post one of these and wait for :attr:`ready`.
    """

    __slots__ = ("ready", "result")

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.result: ServiceStats | None = None


class VerificationService:
    """Concurrent multi-job verification over one shared worker pool."""

    def __init__(
        self,
        pool: WorkerPool | None = None,
        *,
        workers: int | None = None,
        start_method: str | None = None,
        max_concurrent_jobs: int = 8,
        max_pending: int = 64,
        seat_backoff_base: float = 0.5,
        seat_backoff_cap: float = 30.0,
        cache_dir: str | None = None,
        cache_mode: str = "readwrite",
        on_event: Emit | None = None,
    ) -> None:
        if max_concurrent_jobs < 1:
            raise ValueError(
                f"max_concurrent_jobs must be >= 1, got {max_concurrent_jobs}"
            )
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if not 0 < seat_backoff_base <= seat_backoff_cap:
            raise ValueError(
                "need 0 < seat_backoff_base <= seat_backoff_cap, got "
                f"base={seat_backoff_base!r} cap={seat_backoff_cap!r}"
            )
        if cache_mode not in ("off", "read", "readwrite"):
            raise ValueError(f"bad cache mode {cache_mode!r}")
        if pool is not None and pool.closed:
            raise ValueError("pool has been shut down")
        # Service-level proof-cache default: jobs whose config names no
        # cache_dir inherit this one (a job-level cache_mode of "off"
        # still opts the job out).
        self.cache_dir = cache_dir
        self.cache_mode = cache_mode
        self.max_concurrent_jobs = max_concurrent_jobs
        self.max_pending = max_pending
        self.seat_backoff_base = seat_backoff_base
        self.seat_backoff_cap = seat_backoff_cap
        self._pool = pool
        self._owns_pool = pool is None
        self._workers = workers
        self._start_method = start_method
        self._scheduler: SeatScheduler | None = None
        self._shard_host = None  # persistent exchange managers (pooled jobs)
        self._inline = False  # private Session mode: no pooled jobs
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._pending: Deque[_JobRecord] = deque()
        self._running: set[_JobRecord] = set()
        self._records: list[_JobRecord] = []
        self._commands: "queue_mod.Queue" = queue_mod.Queue()
        self._wake = threading.Event()
        self._dispatcher: threading.Thread | None = None
        self._subscribers: list[Emit] = []
        self._stores: dict[str, object] = {}  # cache_dir -> ProofStore
        self._job_ids = 0
        self._closed = False
        self._stopping = False
        self._torn_down = False
        if on_event is not None:
            self.subscribe(on_event)

    # ------------------------------------------------------------------
    # Private single-job mode (the Session facade's backend)
    # ------------------------------------------------------------------
    @classmethod
    def _private(cls) -> "VerificationService":
        """One-shot service backing a single ``Session.run()``.

        Inline mode: every strategy — including ``parallel-ja`` — runs
        on the job thread, so the engine keeps exclusive ownership of
        whatever pool the config names and the one-shot semantics
        (ephemeral pool per run unless ``config.pool`` is set) are
        byte-for-byte those of the pre-service engine.
        """
        service = cls(max_concurrent_jobs=1, max_pending=1)
        service._inline = True
        return service

    # ------------------------------------------------------------------
    # Introspection and events
    # ------------------------------------------------------------------
    @property
    def pool(self) -> WorkerPool | None:
        """The shared pool (None until the first pooled job creates it)."""
        return self._pool

    @property
    def closed(self) -> bool:
        return self._closed

    def jobs(self) -> list[JobHandle]:
        """Handles of every job ever submitted, in submission order."""
        with self._lock:
            return [record.handle for record in self._records]

    def stats(self) -> ServiceStats:
        """A consistent snapshot of queue, seats, latencies and traffic.

        When the dispatcher thread is alive the snapshot is taken *on*
        it (via the command queue) so seat assignments and backoff
        timers are read between scheduler steps, never mid-mutation; a
        dead or absent dispatcher — or a subscriber calling back in
        from dispatcher-delivered events — falls back to a best-effort
        direct read.  Dict-style access (``stats()["pool"]["runs"]``)
        keeps working via :class:`ServiceStats` subscripting.
        """
        dispatcher = self._dispatcher
        if (
            self._scheduler is not None
            and dispatcher is not None
            and dispatcher.is_alive()
            and dispatcher is not threading.current_thread()
        ):
            request = _StatsRequest()
            self._commands.put(("stats", request))
            self._wake.set()
            if request.ready.wait(timeout=2.0) and request.result is not None:
                return request.result
        return self._build_stats()

    def emit_stats(self) -> ServiceStats:
        """Snapshot and broadcast a :class:`StatsSnapshot` event."""
        stats = self.stats()
        self._emit_service(StatsSnapshot(stats=stats.as_dict()))
        return stats

    def _build_stats(self) -> ServiceStats:
        now = time.monotonic()
        with self._lock:
            pending = len(self._pending)
            running = len(self._running)
            records = list(self._records)
        scheduler = self._scheduler
        if scheduler is not None:
            pool_stats = scheduler.stats()
            exchange = scheduler.exchange_traffic()
        elif self._pool is not None:
            pool_stats = PoolStats.from_pool(self._pool)
            exchange = None
        else:
            pool_stats, exchange = None, None
        jobs = tuple(self._job_stats(record, now) for record in records)
        finished = len(
            [job for job in jobs if job.status not in ("queued", "running")]
        )
        return ServiceStats(
            pending=pending,
            running=running,
            finished=finished,
            submitted=len(records),
            max_concurrent_jobs=self.max_concurrent_jobs,
            max_pending=self.max_pending,
            jobs=jobs,
            latency=latency_summary(jobs),
            pool=pool_stats,
            exchange=exchange,
            cache=self._cache_stats(),
        )

    def _cache_stats(self) -> dict | None:
        """Aggregated proof-cache counters across every attached store."""
        with self._lock:
            stores = list(self._stores.values())
        if not stores:
            return None
        merged: dict = {"stores": len(stores)}
        for store in stores:
            for key, value in store.stats().items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    merged[key] = merged.get(key, 0) + value
        if len(stores) == 1:
            merged["root"] = stores[0].stats()["root"]
        return merged

    def _resolver_for(self, record: _JobRecord):
        """The job's cache resolver, or ``None`` when caching is off."""
        config = record.config
        if config.cache_mode == "off":
            return None
        if config.cache_dir:
            cache_dir, mode = config.cache_dir, config.cache_mode
        elif self.cache_dir and self.cache_mode != "off":
            cache_dir, mode = self.cache_dir, self.cache_mode
        else:
            return None
        from ..cache import CacheResolver, ProofStore

        with self._lock:
            store = self._stores.get(cache_dir)
            if store is None:
                store = ProofStore(cache_dir)
                self._stores[cache_dir] = store
        return CacheResolver(
            store, mode, solver_backend=config.solver_backend
        )

    @staticmethod
    def _job_stats(record: _JobRecord, now: float) -> JobStats:
        handle = record.handle
        started = record.started_at
        finished_at = record.finished_at
        if started is None:
            # Never started: its whole life (so far) was queue wait.
            wait = (finished_at if finished_at is not None else now)
            wait -= record.submitted_at
            run = 0.0
        else:
            wait = started - record.submitted_at
            run = (finished_at if finished_at is not None else now) - started
        return JobStats(
            job=handle.job_id,
            design=handle.design_name,
            strategy=handle.strategy,
            status=handle.status.value,
            kind=record.kind,
            priority=record.priority,
            started=started is not None,
            wait_s=max(0.0, wait),
            run_s=max(0.0, run),
        )

    def subscribe(self, callback: Emit) -> Emit:
        """Register a callback for every job's events; returns it."""
        with self._lock:
            self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Emit) -> None:
        with self._lock:
            self._subscribers.remove(callback)

    def _emit_service(self, event: ProgressEvent) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(event)

    def _emit_job(self, record: _JobRecord, event: ProgressEvent) -> None:
        record.handle._emit(event)
        self._emit_service(event)

    def _guarded_job_emit(self, record: _JobRecord):
        """An emit router that survives raising subscribers.

        Pooled jobs' events are delivered on the dispatcher thread,
        which must outlive any one job — so a subscriber exception
        (``BrokenPipeError`` from a print callback is the classic) is
        recorded as the job's failure and later events are dropped,
        instead of unwinding the scheduler.  Threaded jobs keep the
        raise-at-call-site behaviour (it aborts the strategy early,
        exactly like the pre-service ``Session`` did).
        """

        def emit(event: ProgressEvent) -> None:
            if record.emit_failure is not None:
                return
            try:
                self._emit_job(record, event)
            except BaseException as exc:  # surfaced via the job's future
                record.emit_failure = exc

        return emit

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        design,
        config: VerificationConfig | None = None,
        *,
        priority: float | None = None,
        block: bool = True,
        timeout: float | None = None,
        on_event: Emit | None = None,
        **overrides: object,
    ) -> JobHandle:
        """Queue one verification job; returns its handle immediately.

        ``design`` is anything :class:`~repro.session.Session` accepts
        (path, AIG, or TransitionSystem); ``overrides`` are config
        fields applied on top of ``config``.  ``priority`` (default:
        ``config.priority``) weights the job's fair share of worker
        seats.  When the admission queue is full, ``block=True`` waits
        (up to ``timeout`` seconds) for space and ``block=False``
        raises :class:`QueueFull`; either way a
        :class:`~repro.progress.ServiceSaturated` event records the
        back-pressure.
        """
        from ..session.core import Session

        base = config if config is not None else VerificationConfig()
        if overrides:
            base = base.with_overrides(**overrides)
        ts, design_name = Session._coerce_design(design)
        if base.design_name == "design" and design_name is not None:
            base = base.with_overrides(design_name=design_name)
        base.validate()
        get_strategy(base.strategy)  # fail fast on unknown strategies
        order = resolve_order(ts, base.order)
        if order is None:
            order = [p.name for p in ts.properties]
        weight = float(priority) if priority is not None else float(base.priority)
        if weight <= 0:
            raise ValueError(f"priority must be > 0, got {weight!r}")
        kind = (
            "pool"
            if (
                base.strategy in ("parallel-ja", "portfolio")
                and not base.schedule_only
                and not self._inline
                and order
            )
            else "thread"
        )

        deadline = None if timeout is None else time.monotonic() + timeout
        saturation_announced = False
        while True:
            with self._not_full:
                if self._closed:
                    raise RuntimeError("VerificationService is closed")
                pending_now = len(self._pending)
                if pending_now < self.max_pending:
                    self._job_ids += 1
                    handle = JobHandle(
                        f"job-{self._job_ids - 1}",
                        base.design_name,
                        base.strategy,
                        weight,
                    )
                    record = _JobRecord(handle, ts, base, order, weight, kind)
                    handle._cancel_request = (
                        lambda _h: self._request_cancel(record)
                    )
                    self._pending.append(record)
                    self._records.append(record)
                    break
            # Queue full: announce the back-pressure OUTSIDE the lock (a
            # subscriber may call back into the service), then refuse or
            # wait for space.
            if not saturation_announced:
                saturation_announced = True
                self._emit_service(
                    ServiceSaturated(
                        pending=pending_now, limit=self.max_pending
                    )
                )
            if not block:
                raise QueueFull(pending_now, self.max_pending)
            with self._not_full:
                if self._closed:
                    raise RuntimeError("VerificationService is closed")
                if len(self._pending) >= self.max_pending:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise QueueFull(len(self._pending), self.max_pending)
                    if not self._not_full.wait(timeout=remaining):
                        raise QueueFull(len(self._pending), self.max_pending)
        if on_event is not None:
            handle.subscribe(on_event)
        try:
            self._emit_job(
                record,
                JobQueued(
                    job=handle.job_id,
                    design=base.design_name,
                    strategy=base.strategy,
                    priority=weight,
                ),
            )
        finally:
            # Only now may the dispatcher touch the record; without the
            # gate a fast job could finish before its JobQueued is out.
            record.announced = True
            self._ensure_dispatcher()
            self._wake.set()
        return handle

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def _request_cancel(self, record: _JobRecord) -> bool:
        queued = False
        with self._lock:
            if record.handle.status is JobStatus.QUEUED:
                if record not in self._pending:  # being admitted right now
                    return False
                self._pending.remove(record)
                record.cancel_requested = True
                queued = True
                self._not_full.notify()
            elif (
                record.handle.status is JobStatus.RUNNING
                and record.kind == "pool"
            ):
                record.cancel_requested = True
                self._commands.put(("cancel", record))
                self._wake.set()
                return True
            else:
                return False
        if queued:
            self._finalize(record, self._cancelled_report(record), None)
        return queued

    def _cancelled_report(self, record: _JobRecord) -> MultiPropReport:
        """All-UNKNOWN report for a job cancelled before it started."""
        report = MultiPropReport(
            method=record.config.strategy, design=record.config.design_name
        )
        for name in record.order:
            report.outcomes[name] = PropOutcome(
                name=name, status=PropStatus.UNKNOWN, local=True
            )
        report.stats = {"cancelled": len(record.order), "mode": "cancelled"}
        return report

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _ensure_dispatcher(self) -> None:
        with self._lock:
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._serve, name="repro-service", daemon=True
                )
                self._dispatcher.start()

    def _serve(self) -> None:
        while True:
            self._drain_commands()
            self._admit_ready()
            scheduler = self._scheduler
            if scheduler is not None and scheduler.live_jobs:
                scheduler.step(timeout=0.05)
                continue
            if scheduler is not None:
                # Idle upkeep: a crashed seat whose backoff expires
                # between jobs is revived now, not at the next admission.
                scheduler.maintain()
            with self._lock:
                # A running record with no pooled_job yet may be mid
                # cache-resolution on a helper thread; its "admit"
                # command still needs this loop, so stop only when the
                # running set is empty (not merely thread-kind free).
                stop = (
                    self._stopping
                    and not self._pending
                    and not self._running
                )
            if stop:
                return
            self._wake.wait(timeout=0.05)
            self._wake.clear()

    def _drain_commands(self) -> None:
        while True:
            try:
                command = self._commands.get_nowait()
            except queue_mod.Empty:
                return
            if command[0] == "cancel":
                record = command[1]
                job = record.pooled_job
                if (
                    self._scheduler is not None
                    and job is not None
                    and not job.finished
                ):
                    cancel_all = getattr(job, "cancel_all", None)
                    if cancel_all is not None:  # portfolio controller
                        cancel_all()
                    else:
                        self._scheduler.cancel_job(job)
                # pooled_job is None while the job is still in cache
                # resolution; cancel_requested is already set and the
                # "admit" arm below honours it.
            elif command[0] == "admit":
                # A pooled job finished cache resolution off-thread and
                # is ready for its (possibly reduced) seat admission.
                record = command[1]
                if record.cancel_requested:
                    self._finalize(record, self._cancelled_report(record), None)
                    continue
                try:
                    self._start_pooled(record, announce=False)
                except BaseException as exc:
                    self._finalize(record, None, exc)
            elif command[0] == "stats":
                request = command[1]
                try:
                    request.result = self._build_stats()
                finally:
                    request.ready.set()

    def _admit_ready(self) -> None:
        while True:
            with self._lock:
                if (
                    not self._pending
                    or not self._pending[0].announced
                    or len(self._running) >= self.max_concurrent_jobs
                ):
                    return
                record = self._pending.popleft()
                self._running.add(record)
                self._not_full.notify()
            self._start_job(record)

    def _start_job(self, record: _JobRecord) -> None:
        handle = record.handle
        record.started_at = time.monotonic()
        handle._transition(JobStatus.RUNNING)
        try:
            record.resolver = self._resolver_for(record)
            if record.kind == "pool":
                if record.resolver is not None and record.resolver.readable:
                    # Cache resolution certifies stored witnesses (SAT
                    # work); it must not run on the dispatcher thread.
                    self._emit_job(
                        record,
                        JobStarted(
                            job=handle.job_id,
                            design=record.config.design_name,
                            strategy=record.config.strategy,
                            mode="pool",
                        ),
                    )
                    record.thread = threading.Thread(
                        target=self._resolve_pooled,
                        args=(record,),
                        name=f"repro-cache-{handle.job_id}",
                        daemon=True,
                    )
                    record.thread.start()
                else:
                    self._start_pooled(record)
            else:
                self._emit_job(
                    record,
                    JobStarted(
                        job=handle.job_id,
                        design=record.config.design_name,
                        strategy=record.config.strategy,
                        mode="thread",
                    ),
                )
                record.thread = threading.Thread(
                    target=self._run_threaded,
                    args=(record,),
                    name=f"repro-{handle.job_id}",
                    daemon=True,
                )
                record.thread.start()
        except BaseException as exc:  # admission failed: fail the job
            self._finalize(record, None, exc)

    def _resolve_pooled(self, record: _JobRecord) -> None:
        """Off-dispatcher cache pass for a pooled job.

        Serves certified hits, loads warm clauses, then either finishes
        the job outright (everything cached) or posts an ``admit``
        command so the dispatcher seats only the remaining properties.
        """
        try:
            cached, remaining = record.resolver.resolve(
                record.ts, record.order, self._guarded_job_emit(record)
            )
            record.cached_outcomes = cached
            record.remaining_order = remaining
            if remaining:
                record.warm_clauses = tuple(record.resolver.warm_clauses(record.ts))
            if record.cancel_requested:
                self._finalize(record, self._cancelled_report(record), None)
            elif not remaining:
                self._finalize(record, self._cache_report(record), None)
            else:
                self._commands.put(("admit", record))
        except BaseException as exc:
            self._finalize(record, None, exc)
        finally:
            self._wake.set()

    def _cache_report(self, record: _JobRecord) -> MultiPropReport:
        """Report for a job fully served from the proof cache."""
        started = record.started_at if record.started_at is not None else time.monotonic()
        return MultiPropReport(
            method=record.config.strategy,
            design=record.config.design_name,
            outcomes={},  # cached outcomes merged in _finalize
            total_time=time.monotonic() - started,
            stats={"mode": "cache", "cache_hits": len(record.cached_outcomes)},
        )

    def _start_pooled(self, record: _JobRecord, announce: bool = True) -> None:
        from ..session.strategies import parallel_options

        self._ensure_scheduler(record)
        if announce:
            self._emit_job(
                record,
                JobStarted(
                    job=record.handle.job_id,
                    design=record.config.design_name,
                    strategy=record.config.strategy,
                    mode="pool",
                ),
            )
        order = (
            record.remaining_order
            if record.remaining_order is not None
            else record.order
        )
        options = parallel_options(record.ts, record.config)
        if record.warm_clauses:
            options.warm_clauses = record.warm_clauses
        if record.config.strategy == "portfolio":
            from ..parallel.portfolio import admit_portfolio

            # The controller duck-types the PooledJob surface the
            # service touches (finished/error/build_report/run_id), so
            # completion funnels through _pooled_finished unchanged.
            record.pooled_job = admit_portfolio(
                self._scheduler,
                record.ts,
                options,
                record.config.design_name,
                self._guarded_job_emit(record),
                order,
                priority=record.priority,
                pool_label="persistent",
                job_id=record.handle.job_id,
                on_finish=lambda job: self._pooled_finished(record, job),
            )
            return
        record.pooled_job = self._scheduler.admit(
            record.ts,
            options,
            record.config.design_name,
            self._guarded_job_emit(record),
            order,
            priority=record.priority,
            pool_label="persistent",
            job_id=record.handle.job_id,
            on_finish=lambda job: self._pooled_finished(record, job),
        )

    def _ensure_scheduler(self, record: _JobRecord) -> None:
        if self._scheduler is not None:
            return
        if self._pool is None:
            # Size by the service's own knob, the first job's explicit
            # worker count, or one seat per CPU — deliberately NOT
            # clamped by the first job's property count (a 1-property
            # first job must not cap the whole service at one seat).
            workers = (
                self._workers
                if self._workers is not None
                else record.config.workers
            )
            self._pool = WorkerPool(
                workers=workers, start_method=self._start_method
            )
        from ..parallel.exchange import ShardHost

        def safe_service_emit(event: ProgressEvent) -> None:
            # Scheduler-originated events (revived seats) are delivered
            # on the dispatcher thread; a raising subscriber must not
            # kill it.
            try:
                self._emit_service(event)
            except Exception:
                pass

        self._shard_host = ShardHost(ctx=self._pool.context)
        self._scheduler = SeatScheduler(
            self._pool,
            revive_seats=True,
            service_emit=safe_service_emit,
            shard_host=self._shard_host,
            backoff_base=self.seat_backoff_base,
            backoff_cap=self.seat_backoff_cap,
        )

    def _pooled_finished(self, record: _JobRecord, job) -> None:
        self._scheduler.forget(job)
        record.pooled_job = None
        if job.error is not None:
            self._finalize(record, None, job.error)
        else:
            self._finalize(record, job.build_report(self._pool), None)

    def _run_threaded(self, record: _JobRecord) -> None:
        try:
            config = record.config
            resolver = record.resolver
            if resolver is not None and resolver.readable:
                cached, remaining = resolver.resolve(
                    record.ts,
                    record.order,
                    lambda event: self._emit_job(record, event),
                )
                record.cached_outcomes = cached
                record.remaining_order = remaining
                if not remaining:
                    self._finalize(record, self._cache_report(record), None)
                    self._wake.set()
                    return
                if cached:
                    config = config.with_overrides(order=remaining)
            strategy = get_strategy(config.strategy)
            report = strategy.run(
                record.ts,
                config,
                lambda event: self._emit_job(record, event),
            )
            error = None
        except BaseException as exc:  # re-raised at handle.result()
            report, error = None, exc
        self._finalize(record, report, error)
        self._wake.set()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _finalize(self, record: _JobRecord, report, error) -> None:
        handle = record.handle
        record.finished_at = time.monotonic()
        failure = error if error is not None else record.emit_failure
        if failure is not None:
            status = JobStatus.FAILED
        elif record.cancel_requested:
            status = JobStatus.CANCELLED
        else:
            status = JobStatus.DONE
        if report is not None and record.cached_outcomes:
            # Splice cache-served verdicts back in, preserving the
            # original submission order of the property list.
            merged = dict(record.cached_outcomes)
            merged.update(report.outcomes)
            report.outcomes = {
                name: merged[name] for name in record.order if name in merged
            }
            for name, outcome in merged.items():  # safety: never drop one
                if name not in report.outcomes:
                    report.outcomes[name] = outcome
            report.stats = dict(report.stats)
            report.stats["cache_hits"] = len(record.cached_outcomes)
        if (
            failure is None
            and status is JobStatus.DONE
            and report is not None
            and record.resolver is not None
            and record.ts is not None
        ):
            try:
                record.resolver.record_outcomes(
                    record.ts, report.outcomes, record.config.design_name
                )
            except Exception:
                # A broken cache write-back (disk full, permissions)
                # must never fail a successfully verified job.
                pass
        # Transition BEFORE emitting JobFinished: an ``events()`` stream
        # opened in between sees a terminal handle and yields nothing,
        # instead of registering a queue that would never receive its
        # terminating event.  Queues registered earlier still get it.
        handle._transition(status)
        try:
            self._emit_job(
                record,
                JobFinished(
                    job=handle.job_id,
                    status=status.value,
                    total_time=report.total_time if report is not None else 0.0,
                    num_true=len(report.true_props()) if report is not None else 0,
                    num_false=len(report.false_props())
                    if report is not None
                    else 0,
                    num_unknown=len(report.unsolved())
                    if report is not None
                    else 0,
                ),
            )
        except BaseException as exc:
            # A raising subscriber must never leave the future pending
            # (the caller would block forever); it becomes the result.
            if failure is None:
                failure = exc
                handle._transition(JobStatus.FAILED)
        with self._lock:
            self._running.discard(record)
        record.ts = None  # free the design; the report stands alone
        if failure is not None:
            handle.done.set_exception(failure)
        else:
            handle.done.set_result(report)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted job is terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in self.jobs():
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not handle.wait(timeout=remaining):
                raise TimeoutError(
                    f"jobs still running after {timeout} seconds"
                )

    def close(self, timeout: float | None = 30.0) -> None:
        """Stop admission, cancel queued jobs, wait for running ones.

        Running jobs finish normally (pooled jobs keep their seats
        until done); queued jobs resolve as CANCELLED.  An owned pool
        is shut down; an attached pool is released but left running.
        Idempotent.
        """
        with self._lock:
            if self._torn_down:
                return
            self._torn_down = True
            self._closed = True
            self._stopping = True
            cancelled = list(self._pending)
            self._pending.clear()
            self._not_full.notify_all()
        for record in cancelled:
            record.cancel_requested = True
            self._finalize(record, self._cancelled_report(record), None)
        self._wake.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
        for record in list(self._records):
            if record.thread is not None:
                record.thread.join(timeout)
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None
        if self._shard_host is not None:
            self._shard_host.shutdown()
            self._shard_host = None
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"VerificationService({state}, "
            f"{len(self._running)} running, {len(self._pending)} pending)"
        )
