"""Transition-system layer: ``(I, T)``-systems, property sets, the T^P
projection machinery, counterexample traces, and explicit-state ground
truth for small designs."""

from .projection import ProjectedReachability, assumption_lits, assumption_names
from .system import (
    Clause,
    Cube,
    FrameEncoding,
    StepEncoding,
    TransitionSystem,
    cube_subsumes,
    negate_cube,
    normalize_cube,
)
from .trace import Trace

__all__ = [
    "TransitionSystem",
    "StepEncoding",
    "FrameEncoding",
    "Cube",
    "Clause",
    "normalize_cube",
    "negate_cube",
    "cube_subsumes",
    "Trace",
    "ProjectedReachability",
    "assumption_names",
    "assumption_lits",
]
