"""Transition systems over AIGs, plus the CNF encodings the engines use.

A :class:`TransitionSystem` wraps an AIG and fixes the *state-variable
order*: latch ``i`` (0-based position in ``aig.latches``) is represented
in cubes and clauses by the signed integer ``±(i+1)``.  A **cube** is a
sorted tuple of such literals read conjunctively (a set of states); a
**clause** is the same tuple read disjunctively.  All frame clauses,
strengthening clauses and the clauseDB use this representation, which is
independent of any particular SAT solver instance.

Properties follow the paper's convention: the property *literal* must be
TRUE in every reachable state.  Properties may depend on primary inputs
as well as latches (as in the paper's Example 1, where ``P0: req == 1``
constrains an input); a "state" in the sense of the paper's ``P``-states
is then a (latch valuation, input valuation) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..circuit.aig import AIG, Property
from ..encode.tseitin import ClauseSink, ConeEncoder

Cube = tuple[int, ...]
Clause = tuple[int, ...]


def normalize_cube(lits: Iterable[int]) -> Cube:
    """Canonical form: sorted by variable, duplicates removed.

    Raises on contradictory literals — a cube containing ``v`` and ``-v``
    denotes the empty set of states and always indicates a caller bug.
    """
    seen: dict[int, int] = {}
    for lit in lits:
        if lit == 0:
            raise ValueError("0 is not a state literal")
        var = abs(lit)
        if var in seen and seen[var] != lit:
            raise ValueError(f"contradictory literals for state var {var}")
        seen[var] = lit
    return tuple(sorted(seen.values(), key=abs))


def negate_cube(cube: Cube) -> Clause:
    """The clause blocking a cube (and vice versa)."""
    return tuple(sorted((-lit for lit in cube), key=abs))


def cube_subsumes(small: Cube, big: Cube) -> bool:
    """True if ``small``'s literals are a subset of ``big``'s.

    For cubes: ``small`` denotes a superset of states and every state in
    ``big`` is in ``small``.  For clauses: ``small`` subsumes ``big``.
    """
    return set(small) <= set(big)


@dataclass
class StepEncoding:
    """One copy of the transition relation inside a solver.

    ``curr[i]``/``next[i]`` are the CNF variables of latch ``i`` in the
    present and next state; ``inputs`` maps AIG input literals to CNF
    variables; ``prop_curr`` maps property names to signed CNF literals
    evaluated over the *present* frame (latches + inputs).
    """

    curr: list[int]
    next: list[int]
    inputs: dict[int, int]
    prop_curr: dict[str, int]
    constraint_curr: list[int]
    encoder: ConeEncoder

    def cube_lits_curr(self, cube: Cube) -> list[int]:
        return [self.curr[abs(l) - 1] * (1 if l > 0 else -1) for l in cube]

    def cube_lits_next(self, cube: Cube) -> list[int]:
        return [self.next[abs(l) - 1] * (1 if l > 0 else -1) for l in cube]

    def clause_lits_curr(self, clause: Clause) -> list[int]:
        return self.cube_lits_curr(clause)  # same literal-wise mapping


@dataclass
class FrameEncoding:
    """A single combinational frame (no transition): used for init/bad queries."""

    curr: list[int]
    inputs: dict[int, int]
    prop_curr: dict[str, int]
    constraint_curr: list[int]
    encoder: ConeEncoder

    def cube_lits_curr(self, cube: Cube) -> list[int]:
        return [self.curr[abs(l) - 1] * (1 if l > 0 else -1) for l in cube]

    clause_lits_curr = cube_lits_curr


class TransitionSystem:
    """An ``(I, T)``-system with a set of named safety properties."""

    def __init__(self, aig: AIG, properties: Sequence[Property] | None = None) -> None:
        self.aig = aig
        self.latches = list(aig.latches)
        self.properties: list[Property] = list(
            properties if properties is not None else aig.properties
        )
        names = [p.name for p in self.properties]
        if len(set(names)) != len(names):
            raise ValueError("property names must be unique")
        self.prop_by_name: dict[str, Property] = {p.name: p for p in self.properties}
        self.num_state_vars = len(self.latches)
        # Initial-state pattern: +1/-1/None per latch position (I is a cube).
        self.init_pattern: list[int | None] = []
        for i, latch in enumerate(self.latches):
            if latch.init is None:
                self.init_pattern.append(None)
            else:
                self.init_pattern.append((i + 1) if latch.init == 1 else -(i + 1))

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------
    def cube_intersects_init(self, cube: Cube) -> bool:
        """Exact check: does the cube contain an initial state?

        Since AIGER initial states form a cube (each latch is 0, 1 or
        free), the check is syntactic: the cube intersects I unless some
        literal contradicts the init pattern.
        """
        for lit in cube:
            pattern = self.init_pattern[abs(lit) - 1]
            if pattern is not None and pattern != lit:
                return False
        return True

    def clause_holds_at_init(self, clause: Clause) -> bool:
        """``I -> clause``: no initial state falsifies the clause."""
        return not self.cube_intersects_init(negate_cube(clause))

    def state_cube_from(self, latch_values: Sequence[bool]) -> Cube:
        """Full cube for a concrete latch valuation (position order)."""
        return tuple(
            (i + 1) if value else -(i + 1) for i, value in enumerate(latch_values)
        )

    # ------------------------------------------------------------------
    # Encodings
    # ------------------------------------------------------------------
    def _encode_frame(self, solver: ClauseSink) -> FrameEncoding:
        enc = ConeEncoder(self.aig, solver)
        curr = []
        for latch in self.latches:
            var = solver.new_var()
            enc.set_leaf(latch.lit, var)
            curr.append(var)
        inputs = {}
        for inp in self.aig.inputs:
            var = solver.new_var()
            enc.set_leaf(inp, var)
            inputs[inp] = var
        prop_curr = {p.name: enc.lit(p.lit) for p in self.properties}
        constraint_curr = [enc.lit(c) for c in self.aig.constraints]
        return FrameEncoding(curr, inputs, prop_curr, constraint_curr, enc)

    def encode_step(self, solver: ClauseSink) -> StepEncoding:
        """Encode one transition ``T(S, X, S')`` into a solver.

        Invariant constraints of the AIG (if any) are asserted on the
        present frame.  Property literals are *not* asserted — callers add
        the paper's ``T^P`` constraints by asserting units on
        ``prop_curr`` (see :mod:`repro.ts.projection`).
        """
        frame = self._encode_frame(solver)
        nxt = []
        for latch in self.latches:
            lit = frame.encoder.lit(latch.next)
            var = solver.new_var()
            solver.add_clause([-var, lit])
            solver.add_clause([var, -lit])
            nxt.append(var)
        for c in frame.constraint_curr:
            solver.add_clause([c])
        return StepEncoding(
            curr=frame.curr,
            next=nxt,
            inputs=frame.inputs,
            prop_curr=frame.prop_curr,
            constraint_curr=frame.constraint_curr,
            encoder=frame.encoder,
        )

    def encode_bad_frame(self, solver: ClauseSink) -> FrameEncoding:
        """Encode a final (bad) frame: combinational only, constraints asserted.

        AIG-level invariant constraints apply to every considered state,
        including the failing one; the paper's property assumptions do
        *not* apply here (the final state of a local CEX only needs to
        falsify the target property).
        """
        frame = self._encode_frame(solver)
        for c in frame.constraint_curr:
            solver.add_clause([c])
        return frame

    def encode_init_frame(self, solver: ClauseSink) -> FrameEncoding:
        """Encode a frame constrained to the initial states."""
        frame = self.encode_bad_frame(solver)
        for i, latch in enumerate(self.latches):
            if latch.init == 0:
                solver.add_clause([-frame.curr[i]])
            elif latch.init == 1:
                solver.add_clause([frame.curr[i]])
        return frame

    # ------------------------------------------------------------------
    def eth_properties(self) -> list[Property]:
        """Properties Expected To Hold (the assumption pool of Sec. 5)."""
        return [p for p in self.properties if not p.expected_to_fail]

    def aggregate_property_lit(self, names: Iterable[str] | None = None) -> int:
        """AIG literal of ``P1 & ... & Pk`` (over the named subset)."""
        if names is None:
            props: Iterable[Property] = self.properties
        else:
            props = [self.prop_by_name[n] for n in names]
        return self.aig.and_many(p.lit for p in props)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TransitionSystem(latches={len(self.latches)}, "
            f"properties={len(self.properties)})"
        )
