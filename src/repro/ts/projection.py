"""The paper's ``T^P`` projection, realized as property constraints.

Section 2-C defines the projection of ``T`` onto the aggregate property
``P``: transitions out of a ``¬P``-state are removed (except self-loops).
Section 7-A explains how Ic3-db realizes this *without* rewriting ``T``:
it adds constraints forcing every assumed property to be 1 in present
states.  This module computes the assumption sets and provides a
materialized projection for small designs (used by the tests to validate
the implementation against the definition).

Why constraints are equivalent to the definition here: engines only ever
search for a *first* property failure, so the self-loop component of
``T^P`` (which merely keeps ``¬P``-states from being dead ends) never
participates in any counterexample or proof obligation.  Cutting the
outgoing transitions — which is exactly what asserting the assumptions on
the transition's source frame does — yields the same traces.
"""

from __future__ import annotations

from collections.abc import Sequence

from .system import TransitionSystem


def assumption_names(
    ts: TransitionSystem,
    target: str,
    extra_excluded: Sequence[str] = (),
) -> list[str]:
    """Names of the properties assumed while proving ``target`` locally.

    Per Section 4 the assumption set is every other property; per
    Section 5 properties that are Expected To Fail are *never* assumed
    (their failures are legitimate behaviours, so excluding traces where
    they fail first would be a mistake).  ``extra_excluded`` supports
    drivers that drop assumptions dynamically (e.g. properties already
    shown false locally can optionally be excluded — the default driver
    keeps them, as the paper's Ja-ver does).
    """
    if target not in ts.prop_by_name:
        raise KeyError(f"unknown property {target!r}")
    excluded = set(extra_excluded) | {target}
    return [
        p.name
        for p in ts.properties
        if p.name not in excluded and not p.expected_to_fail
    ]


def assumption_lits(ts: TransitionSystem, names: Sequence[str]) -> list[int]:
    """AIG literals of the named assumed properties."""
    return [ts.prop_by_name[n].lit for n in names]


class ProjectedReachability:
    """Explicit-state semantics of ``(I, T)`` and ``(I, T^P)``.

    Exact ground truth for small designs (used heavily by the test
    suite).  States are latch valuations; because properties may also
    depend on inputs, the paper's "``Q``-state" notion generalizes to
    (state, input) pairs:

    * a transition ``s -[x]-> s'`` is *allowed under assumptions A* iff
      every property in ``A`` evaluates TRUE at ``(s, x)``;
    * property ``Q`` *fails locally w.r.t. A* iff some state ``s``
      reachable through allowed transitions admits an input ``x`` with
      ``Q(s, x)`` false.

    With ``A = all properties but Q`` this is exactly local failure with
    respect to ``T^P`` (Section 4); with ``A = {}`` it is global failure.
    """

    def __init__(self, ts: TransitionSystem, max_states: int = 1 << 16) -> None:
        self.ts = ts
        aig = ts.aig
        n_latch = len(ts.latches)
        n_input = len(aig.inputs)
        if (1 << n_latch) * max(1, 1 << n_input) > max_states * 64:
            raise ValueError(
                f"design too large for explicit enumeration "
                f"({n_latch} latches, {n_input} inputs)"
            )
        self.n_latch = n_latch
        self.n_input = n_input
        self._build_tables()

    def _build_tables(self) -> None:
        from ..circuit.simulate import Simulator

        ts = self.ts
        aig = ts.aig
        sim = Simulator(aig)
        n_latch, n_input = self.n_latch, self.n_input
        self.prop_names = [p.name for p in ts.properties]
        # successor[s][x] -> s' ; prop_ok[s][x] -> frozenset of TRUE props
        self.successor: list[list[int]] = []
        self.prop_true: list[list[frozenset[str]]] = []
        for s in range(1 << n_latch):
            sim.state = {
                latch.lit: bool((s >> i) & 1) for i, latch in enumerate(ts.latches)
            }
            succ_row: list[int] = []
            prop_row: list[frozenset[str]] = []
            for x in range(1 << n_input):
                inputs = {
                    inp: bool((x >> i) & 1) for i, inp in enumerate(aig.inputs)
                }
                true_props = frozenset(
                    p.name for p in ts.properties if sim.eval_lit(p.lit, inputs)
                )
                prop_row.append(true_props)
                saved = dict(sim.state)
                sim.step(inputs)
                succ = 0
                for i, latch in enumerate(ts.latches):
                    if sim.state[latch.lit]:
                        succ |= 1 << i
                succ_row.append(succ)
                sim.state = saved
            self.successor.append(succ_row)
            self.prop_true.append(prop_row)
        # Initial states (set of ints): product over init pattern.
        inits = [0]
        for i, latch in enumerate(ts.latches):
            if latch.init == 1:
                inits = [s | (1 << i) for s in inits]
            elif latch.init is None:
                inits = inits + [s | (1 << i) for s in inits]
        self.initial_states = set(inits)

    # ------------------------------------------------------------------
    def reachable_states(self, assumed: Sequence[str] = ()) -> set:
        """States reachable via transitions allowed under ``assumed``."""
        assumed_set = set(assumed)
        seen = set(self.initial_states)
        frontier = list(seen)
        while frontier:
            s = frontier.pop()
            for x in range(1 << self.n_input):
                if not assumed_set <= self.prop_true[s][x]:
                    continue  # transition source violates an assumption
                succ = self.successor[s][x]
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def fails(self, prop_name: str, assumed: Sequence[str] = ()) -> bool:
        """Does ``prop_name`` fail (locally w.r.t. ``assumed``)?"""
        reach = self.reachable_states(assumed)
        return any(
            prop_name not in self.prop_true[s][x]
            for s in reach
            for x in range(1 << self.n_input)
        )

    def fails_globally(self, prop_name: str) -> bool:
        return self.fails(prop_name, ())

    def fails_locally(self, prop_name: str) -> bool:
        """Local failure in the paper's sense (all other ETH props assumed)."""
        assumed = assumption_names(self.ts, prop_name)
        return self.fails(prop_name, assumed)

    def debugging_set(self) -> list[str]:
        """Names of properties that fail locally (Section 4)."""
        return [p.name for p in self.ts.properties if self.fails_locally(p.name)]

    def min_cex_depth(self, prop_name: str, assumed: Sequence[str] = ()) -> int | None:
        """Length (in frames) of a shortest CEX, or None if the property holds.

        Depth 1 means the property already fails at the initial state
        under some input.
        """
        assumed_set = set(assumed)
        dist: dict[int, int] = {s: 0 for s in self.initial_states}
        frontier = sorted(self.initial_states)
        while True:
            for s in frontier:
                for x in range(1 << self.n_input):
                    if prop_name not in self.prop_true[s][x]:
                        return dist[s] + 1
            next_frontier = []
            for s in frontier:
                for x in range(1 << self.n_input):
                    if not assumed_set <= self.prop_true[s][x]:
                        continue
                    succ = self.successor[s][x]
                    if succ not in dist:
                        dist[succ] = dist[s] + 1
                        next_frontier.append(succ)
            if not next_frontier:
                return None
            frontier = next_frontier
