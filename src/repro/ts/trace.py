"""Counterexample traces and their validation.

A :class:`Trace` is the witness format every engine returns for a failed
property: the per-frame primary-input valuations plus chosen values for
uninitialized latches.  Because it contains *inputs*, not states, it can
always be replayed deterministically on the design; the library never
reports a counterexample that has not been replayed successfully
(see :meth:`Trace.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuit.aig import AIG
from ..circuit.simulate import Simulator


@dataclass
class Trace:
    """An initialized input sequence driving a property to FALSE.

    The property is expected to fail at the *last* frame, i.e. at time
    ``len(inputs) - 1`` evaluated under ``inputs[-1]``.
    """

    inputs: list[dict[int, bool]]
    uninit: dict[int, bool] = field(default_factory=dict)
    property_name: str = ""

    def __len__(self) -> int:
        return len(self.inputs)

    @property
    def depth(self) -> int:
        """Number of time frames spanned (a depth-1 trace fails at reset)."""
        return len(self.inputs)

    # ------------------------------------------------------------------
    def validate(self, aig: AIG, prop_lit: int) -> bool:
        """Replay on ``aig``: does ``prop_lit`` fail exactly at the last frame?"""
        sim = Simulator(aig)
        t = sim.check_property_failure(self.inputs, prop_lit, self.uninit)
        return t == len(self.inputs) - 1

    def failure_frame(self, aig: AIG, prop_lit: int) -> int | None:
        """First frame at which ``prop_lit`` is FALSE along the trace."""
        sim = Simulator(aig)
        return sim.check_property_failure(self.inputs, prop_lit, self.uninit)

    def first_failures(
        self, aig: AIG, prop_lits: dict[str, int]
    ) -> tuple[int | None, list[str]]:
        """Earliest frame where *any* of ``prop_lits`` fails, and who fails there.

        Returns ``(frame, names)``; ``(None, [])`` when nothing fails.
        Used to detect spurious local counterexamples (an assumed property
        failing strictly before the target does) and to identify which
        properties a joint-verification CEX refutes.
        """
        sim = Simulator(aig)
        sim.reset(self.uninit)
        for t, frame_inputs in enumerate(self.inputs):
            failed = [
                name for name, lit in prop_lits.items() if not sim.eval_lit(lit, frame_inputs)
            ]
            if failed:
                return t, sorted(failed)
            sim.step(frame_inputs)
        return None, []

    def truncated(self, length: int) -> "Trace":
        """A prefix of this trace (used when an earlier failure is found)."""
        if not 0 < length <= len(self.inputs):
            raise ValueError(f"bad truncation length {length}")
        return Trace(
            inputs=[dict(f) for f in self.inputs[:length]],
            uninit=dict(self.uninit),
            property_name=self.property_name,
        )

    def states(self, aig: AIG) -> list[dict[int, bool]]:
        """Latch valuations visited, one per frame (before each clock edge)."""
        sim = Simulator(aig)
        sim.reset(self.uninit)
        out = []
        for frame_inputs in self.inputs:
            out.append(dict(sim.state))
            sim.step(frame_inputs)
        return out
