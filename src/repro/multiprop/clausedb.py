"""The strengthening-clause database (the paper's ``clauseDB`` file).

Section 7-B: Ja-ver maintains an external file that accumulates the
strengthening clauses produced while proving each property; when Ic3-db
is invoked for the next property, all clauses collected so far initialize
its frames.

Clauses are stored over *state literals* (signed latch positions, see
:mod:`repro.ts.system`), so a database is meaningful only relative to a
fixed latch order; :meth:`ClauseDB.save`/:meth:`load` persist them in a
small text format with the latch names recorded as a header, which is
validated on load.

Soundness note (expanded from the paper).  A clause set exported by a
*global* proof over-approximates the reachable states of ``(I, T)`` and
can seed any later run.  A clause set exported by a *local* proof
over-approximates reachability of the *constrained* system only; seeding
it into a run with a different assumption set is justified by a
minimal-counterexample argument (any locally failing property has a CEX
whose states all survive every such clause set), but the final invariant
of a seeded run is no longer self-evidently inductive.  The IC3 engine
therefore re-validates its final certificate and raises
:class:`~repro.engines.ic3.SeedCertificateError` when seeds poisoned it;
drivers respond by re-running without seeds.  In the (empirically rare)
poisoned-seed case the paper's Ja-ver would silently keep an unchecked
proof; we keep the optimization and add the check.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..ts.system import Clause, TransitionSystem, normalize_cube

#: On-disk format: ``<magic> <version>`` header line, then the latch-name
#: line, then one clause per line.  Version history:
#:
#: * 1 — original format (no formal version gate on load);
#: * 2 — identical layout, but readers reject unknown versions with a
#:   typed error instead of mis-parsing them as clause data.
CLAUSEDB_MAGIC = "clausedb"
CLAUSEDB_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


class ClauseDBFormatError(ValueError):
    """A clauseDB file has the wrong magic, version, or latch signature."""


class ClauseDB:
    """An in-memory, optionally persisted, pool of strengthening clauses."""

    def __init__(self, ts: TransitionSystem) -> None:
        self.ts = ts
        self._clauses: list[Clause] = []
        self._seen = set()
        self.stats = {"added": 0, "duplicates": 0, "rejected": 0}

    def __len__(self) -> int:
        return len(self._clauses)

    def add(self, clause: Iterable[int]) -> bool:
        """Add one clause; returns False if rejected or duplicate.

        Rejects clauses that do not hold in the initial states (they can
        never be part of a reachability over-approximation) and clauses
        mentioning out-of-range state variables.
        """
        try:
            normalized = normalize_cube(clause)
        except ValueError:
            self.stats["rejected"] += 1
            return False
        if not normalized:
            self.stats["rejected"] += 1
            return False
        if any(abs(l) > self.ts.num_state_vars for l in normalized):
            self.stats["rejected"] += 1
            return False
        if not self.ts.clause_holds_at_init(normalized):
            self.stats["rejected"] += 1
            return False
        if normalized in self._seen:
            self.stats["duplicates"] += 1
            return False
        self._seen.add(normalized)
        self._clauses.append(normalized)
        self.stats["added"] += 1
        return True

    def add_all(self, clauses: Iterable[Iterable[int]]) -> int:
        """Add many clauses; returns how many were new."""
        return sum(1 for c in clauses if self.add(c))

    def clauses(self) -> list[Clause]:
        """Snapshot of all collected clauses (ordered by insertion)."""
        return list(self._clauses)

    # ------------------------------------------------------------------
    # Persistence (the external clauseDB file of Section 7-B)
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """Serialize to the versioned text format (see module constants)."""
        lines = [
            f"{CLAUSEDB_MAGIC} {CLAUSEDB_VERSION}",
            " ".join(latch.name for latch in self.ts.latches),
        ]
        lines.extend(" ".join(str(l) for l in clause) for clause in self._clauses)
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="ascii") as f:
            f.write(self.dumps())

    @classmethod
    def loads(cls, text: str, ts: TransitionSystem, source: str = "<string>") -> "ClauseDB":
        """Parse and validate the text format against ``ts``.

        Raises :class:`ClauseDBFormatError` on a bad magic string, an
        unsupported format version, or a latch-signature mismatch (the
        clauses would be meaningless) — stale or foreign databases must
        not silently corrupt proofs.
        """
        db = cls(ts)
        lines = iter(text.splitlines())
        header = next(lines, "").split()
        if header[:1] != [CLAUSEDB_MAGIC]:
            raise ClauseDBFormatError(f"{source}: not a clauseDB file")
        try:
            version = int(header[1])
        except (IndexError, ValueError):
            raise ClauseDBFormatError(f"{source}: missing clauseDB version") from None
        if version not in _SUPPORTED_VERSIONS:
            raise ClauseDBFormatError(
                f"{source}: unsupported clauseDB version {version} "
                f"(this reader supports {list(_SUPPORTED_VERSIONS)})"
            )
        names = next(lines, "").split()
        expected = [latch.name for latch in ts.latches]
        if names != expected:
            raise ClauseDBFormatError(
                f"{source}: latch signature mismatch "
                f"(file has {len(names)} latches, design has {len(expected)})"
            )
        for line in lines:
            lits = [int(tok) for tok in line.split()]
            if lits:
                db.add(lits)
        return db

    @classmethod
    def load(cls, path: str, ts: TransitionSystem) -> "ClauseDB":
        """Load a clause database file (see :meth:`loads` for validation)."""
        with open(path, encoding="ascii") as f:
            return cls.loads(f.read(), ts, source=str(path))
