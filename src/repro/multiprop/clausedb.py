"""The strengthening-clause database (the paper's ``clauseDB`` file).

Section 7-B: Ja-ver maintains an external file that accumulates the
strengthening clauses produced while proving each property; when Ic3-db
is invoked for the next property, all clauses collected so far initialize
its frames.

Clauses are stored over *state literals* (signed latch positions, see
:mod:`repro.ts.system`), so a database is meaningful only relative to a
fixed latch order; :meth:`ClauseDB.save`/:meth:`load` persist them in a
small text format with the latch names recorded as a header, which is
validated on load.

Soundness note (expanded from the paper).  A clause set exported by a
*global* proof over-approximates the reachable states of ``(I, T)`` and
can seed any later run.  A clause set exported by a *local* proof
over-approximates reachability of the *constrained* system only; seeding
it into a run with a different assumption set is justified by a
minimal-counterexample argument (any locally failing property has a CEX
whose states all survive every such clause set), but the final invariant
of a seeded run is no longer self-evidently inductive.  The IC3 engine
therefore re-validates its final certificate and raises
:class:`~repro.engines.ic3.SeedCertificateError` when seeds poisoned it;
drivers respond by re-running without seeds.  In the (empirically rare)
poisoned-seed case the paper's Ja-ver would silently keep an unchecked
proof; we keep the optimization and add the check.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..ts.system import Clause, TransitionSystem, normalize_cube


class ClauseDB:
    """An in-memory, optionally persisted, pool of strengthening clauses."""

    def __init__(self, ts: TransitionSystem) -> None:
        self.ts = ts
        self._clauses: list[Clause] = []
        self._seen = set()
        self.stats = {"added": 0, "duplicates": 0, "rejected": 0}

    def __len__(self) -> int:
        return len(self._clauses)

    def add(self, clause: Iterable[int]) -> bool:
        """Add one clause; returns False if rejected or duplicate.

        Rejects clauses that do not hold in the initial states (they can
        never be part of a reachability over-approximation) and clauses
        mentioning out-of-range state variables.
        """
        try:
            normalized = normalize_cube(clause)
        except ValueError:
            self.stats["rejected"] += 1
            return False
        if not normalized:
            self.stats["rejected"] += 1
            return False
        if any(abs(l) > self.ts.num_state_vars for l in normalized):
            self.stats["rejected"] += 1
            return False
        if not self.ts.clause_holds_at_init(normalized):
            self.stats["rejected"] += 1
            return False
        if normalized in self._seen:
            self.stats["duplicates"] += 1
            return False
        self._seen.add(normalized)
        self._clauses.append(normalized)
        self.stats["added"] += 1
        return True

    def add_all(self, clauses: Iterable[Iterable[int]]) -> int:
        """Add many clauses; returns how many were new."""
        return sum(1 for c in clauses if self.add(c))

    def clauses(self) -> list[Clause]:
        """Snapshot of all collected clauses (ordered by insertion)."""
        return list(self._clauses)

    # ------------------------------------------------------------------
    # Persistence (the external clauseDB file of Section 7-B)
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "w", encoding="ascii") as f:
            f.write("clausedb 1\n")
            f.write(" ".join(latch.name for latch in self.ts.latches) + "\n")
            for clause in self._clauses:
                f.write(" ".join(str(l) for l in clause) + "\n")

    @classmethod
    def load(cls, path: str, ts: TransitionSystem) -> "ClauseDB":
        """Load and validate a clause database against ``ts``.

        Raises ``ValueError`` if the latch signature does not match (the
        clauses would be meaningless) — stale databases must not silently
        corrupt proofs.
        """
        db = cls(ts)
        with open(path, encoding="ascii") as f:
            header = f.readline().split()
            if header[:1] != ["clausedb"]:
                raise ValueError(f"{path}: not a clauseDB file")
            names = f.readline().split()
            expected = [latch.name for latch in ts.latches]
            if names != expected:
                raise ValueError(
                    f"{path}: latch signature mismatch "
                    f"(file has {len(names)} latches, design has {len(expected)})"
                )
            for line in f:
                lits = [int(tok) for tok in line.split()]
                if lits:
                    db.add(lits)
        return db
