"""Property-ordering heuristics for separate/JA verification.

The paper verifies properties "in the order they are given in the design
description" but notes (footnote 1, Section 9) that verifying easier
properties first accumulates strengthening clauses for the harder ones,
and reports (Section 9-C) that 6s139/6s256 are solved much faster under
a different order.  These heuristics make that experiment reproducible.
"""

from __future__ import annotations

import random

from ..ts.system import TransitionSystem


def design_order(ts: TransitionSystem) -> list[str]:
    """The order properties appear in the design (the paper's default)."""
    return [p.name for p in ts.properties]


def cone_latches(ts: TransitionSystem, name: str) -> int:
    """Latch count of a property's cone of influence.

    The shared proof-hardness proxy: the ``"cone"`` property order
    verifies smallest-first, the parallel engine dispatches
    largest-first (LPT), both off this one estimate.
    """
    prop = ts.prop_by_name[name]
    _, latches = ts.aig.cone_of_influence([prop.lit])
    return len(latches)


def by_cone_size(ts: TransitionSystem) -> list[str]:
    """Smallest cone of influence first — a proxy for "easier first".

    A property whose cone touches few latches typically has a small
    inductive invariant; proving it first seeds the clauseDB cheaply.
    """
    return sorted(
        (p.name for p in ts.properties),
        key=lambda n: (cone_latches(ts, n), n),
    )


def shuffled(ts: TransitionSystem, seed: int) -> list[str]:
    """A deterministic random order (for order-sensitivity experiments)."""
    names = [p.name for p in ts.properties]
    random.Random(seed).shuffle(names)
    return names
