"""Multi-property verification drivers: JA-verification (the paper's
contribution), joint verification, separate-global verification, the
strengthening-clause database, debugging-set analysis, ordering
heuristics, and the simulated parallel scheduler."""

from .clausedb import ClauseDB
from .clustering import ClusterOptions, cluster_properties, clustered_verify
from .debugging import DebuggingReport, check_proposition6, debugging_report
from .sweep import SweepResult, sweep, swept_ja_verify
from .ja import JAOptions, JAVerifier, ja_verify
from .joint import JointOptions, joint_verify
from .ordering import by_cone_size, design_order, shuffled
from .parallel import ParallelSimResult, measure_global_proofs, measure_local_proofs
from .report import MultiPropReport, PropOutcome, format_time, render_table
from .separate import SeparateOptions, separate_verify

__all__ = [
    "ja_verify",
    "JAVerifier",
    "JAOptions",
    "joint_verify",
    "JointOptions",
    "separate_verify",
    "SeparateOptions",
    "ClauseDB",
    "MultiPropReport",
    "PropOutcome",
    "render_table",
    "format_time",
    "DebuggingReport",
    "debugging_report",
    "check_proposition6",
    "design_order",
    "by_cone_size",
    "shuffled",
    "measure_local_proofs",
    "measure_global_proofs",
    "ParallelSimResult",
    "clustered_verify",
    "cluster_properties",
    "ClusterOptions",
    "sweep",
    "swept_ja_verify",
    "SweepResult",
]
