"""Debugging-set analysis (paper Sections 3, 4 and 8).

Utilities that interpret the output of JA-verification the way the
paper's narrative does, and empirical validators for the theory's
propositions (used both by the test-suite and by users who want a
machine-checked debugging report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..engines.result import PropStatus
from ..ts.system import TransitionSystem
from ..ts.trace import Trace
from .report import MultiPropReport


@dataclass
class DebuggingReport:
    """Interpretation of a JA run for the design-debugging workflow."""

    debugging_set: list[str]
    locally_true: list[str]
    unsolved: list[str]
    cex_depths: dict[str, int] = field(default_factory=dict)
    etf_confirmed: list[str] = field(default_factory=list)
    etf_unconfirmed: list[str] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        """True iff every ETH property was proved (locally, hence globally)."""
        return not self.debugging_set and not self.unsolved

    def narrative(self) -> str:
        """A human-readable summary in the paper's terms."""
        lines = []
        if self.all_hold:
            lines.append(
                "All properties hold locally; by Proposition 5 they all "
                "hold globally — the design is correct w.r.t. this set."
            )
        if self.debugging_set:
            lines.append(
                f"Debugging set: {{{', '.join(self.debugging_set)}}} — these "
                "properties fail first; fix the behaviours they expose before "
                "looking at anything else."
            )
        if self.locally_true:
            lines.append(
                f"{len(self.locally_true)} properties hold locally: each either "
                "holds globally or only fails after a debugging-set property "
                "has already failed."
            )
        if self.unsolved:
            lines.append(f"Unsolved within budget: {', '.join(self.unsolved)}.")
        if self.etf_confirmed:
            lines.append(
                f"Expected-to-fail properties confirmed (reachability "
                f"witnessed): {', '.join(self.etf_confirmed)}."
            )
        if self.etf_unconfirmed:
            lines.append(
                f"WARNING: expected-to-fail properties that actually HOLD "
                f"locally: {', '.join(self.etf_unconfirmed)} — the intended "
                "behaviour is unreachable without another property failing first."
            )
        return "\n".join(lines)


def debugging_report(report: MultiPropReport) -> DebuggingReport:
    """Distill a JA :class:`MultiPropReport` into a debugging report."""
    debugging_set, locally_true, unsolved = [], [], []
    etf_confirmed, etf_unconfirmed = [], []
    depths: dict[str, int] = {}
    for outcome in report.outcomes.values():
        if outcome.status is PropStatus.FAILS:
            if outcome.cex_depth is not None:
                depths[outcome.name] = outcome.cex_depth
            if outcome.expected_to_fail:
                etf_confirmed.append(outcome.name)
            else:
                debugging_set.append(outcome.name)
        elif outcome.status is PropStatus.HOLDS:
            if outcome.expected_to_fail:
                etf_unconfirmed.append(outcome.name)
            else:
                locally_true.append(outcome.name)
        else:
            unsolved.append(outcome.name)
    return DebuggingReport(
        debugging_set=sorted(debugging_set),
        locally_true=sorted(locally_true),
        unsolved=sorted(unsolved),
        cex_depths=depths,
        etf_confirmed=sorted(etf_confirmed),
        etf_unconfirmed=sorted(etf_unconfirmed),
    )


def check_proposition6(
    ts: TransitionSystem,
    debugging_set: Sequence[str],
    cex: Trace,
) -> bool:
    """Empirically check Proposition 6 on one aggregate counterexample.

    Given a CEX for the aggregate property, its final state must falsify
    at least one property of the debugging set.  Used by the tests to
    validate computed debugging sets against independently found CEXs.
    """
    eth = {p.name: p.lit for p in ts.eth_properties()}
    frame, failed = cex.first_failures(ts.aig, eth)
    if frame is None:
        return True  # not an aggregate CEX at all
    return any(name in set(debugging_set) for name in failed)
