"""Random-simulation property sweeping.

Before spending SAT effort, industrial multi-property flows "sweep" the
property list with cheap random simulation: any property observed FALSE
on a random trace is definitely false globally, together with a concrete
witness.  Sweeping complements JA-verification in two ways:

* it pre-classifies shallow failures (often the whole debugging set of a
  buggy design) at simulation speed, and
* the witnesses it finds are *global* CEXs; replaying them against the
  other properties (``Trace.first_failures``) immediately shows which
  failures dominate which — a zero-SAT preview of the debugging set.

Sweeping can never prove a property, so unswept survivors still go to
the model checker; :func:`swept_ja_verify` wires the two together.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..circuit.simulate import Simulator
from ..progress import Emit
from ..ts.system import TransitionSystem
from ..ts.trace import Trace
from .ja import JAOptions, ja_verify
from .report import MultiPropReport


@dataclass
class SweepResult:
    """Outcome of a simulation sweep."""

    failed: dict[str, Trace] = field(default_factory=dict)  # name -> witness
    survivors: list[str] = field(default_factory=list)
    runs: int = 0
    frames_simulated: int = 0

    def dominated_preview(self, ts: TransitionSystem) -> dict[str, list[str]]:
        """For each witness, which properties fail at its first-failure frame.

        Properties co-failing at the earliest frame of some witness are
        debugging-set *candidates*; this is a heuristic preview only
        (simulation cannot establish local verdicts).
        """
        preview: dict[str, list[str]] = {}
        lits = {p.name: p.lit for p in ts.eth_properties()}
        for name, trace in self.failed.items():
            _, first = trace.first_failures(ts.aig, lits)
            preview[name] = first
        return preview


def sweep(
    ts: TransitionSystem,
    runs: int = 32,
    depth: int = 32,
    seed: int = 0,
    input_bias: float = 0.5,
) -> SweepResult:
    """Random-simulate the design and classify properties.

    Each run drives all inputs with independent biased coin flips for
    ``depth`` cycles and evaluates every still-unfailed property each
    cycle.  Witness traces are truncated at the property's first failure
    so they validate as counterexamples.
    """
    rng = random.Random(seed)
    result = SweepResult()
    pending = {p.name: p.lit for p in ts.properties}
    sim = Simulator(ts.aig)
    for _ in range(runs):
        if not pending:
            break
        result.runs += 1
        uninit = {
            latch.lit: rng.random() < 0.5
            for latch in ts.latches
            if latch.init is None
        }
        sim.reset(uninit)
        inputs_so_far: list[dict[int, bool]] = []
        for _ in range(depth):
            frame_inputs = {
                inp: rng.random() < input_bias for inp in ts.aig.inputs
            }
            inputs_so_far.append(frame_inputs)
            result.frames_simulated += 1
            if ts.aig.constraints and not all(
                sim.eval_lit(c, frame_inputs) for c in ts.aig.constraints
            ):
                break  # constraint-violating stimulus: abandon this run
            newly_failed = [
                name
                for name, lit in pending.items()
                if not sim.eval_lit(lit, frame_inputs)
            ]
            for name in newly_failed:
                witness = Trace(
                    inputs=[dict(f) for f in inputs_so_far],
                    uninit=dict(uninit),
                    property_name=name,
                )
                result.failed[name] = witness
                del pending[name]
            sim.step(frame_inputs)
    result.survivors = sorted(pending)
    return result


def swept_ja_verify(
    ts: TransitionSystem,
    sweep_runs: int = 32,
    sweep_depth: int = 32,
    seed: int = 0,
    options: JAOptions | None = None,
    design_name: str = "design",
    emit: Emit | None = None,
) -> MultiPropReport:
    """Sweep first, then JA-verify everything.

    The sweep provides global failure witnesses early (and for free);
    JA-verification still runs on *all* properties because only it can
    establish local verdicts and the debugging set.  Sweep witnesses are
    attached to the report's stats.
    """
    start = time.monotonic()
    swept = sweep(ts, runs=sweep_runs, depth=sweep_depth, seed=seed)
    report = ja_verify(ts, options, design_name=design_name, emit=emit)
    report.method = "sweep+ja"
    report.stats["sweep_failed"] = len(swept.failed)
    report.stats["sweep_runs"] = swept.runs
    report.stats["sweep_frames"] = swept.frames_simulated
    report.total_time = time.monotonic() - start
    return report
