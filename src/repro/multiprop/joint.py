"""Joint verification of the aggregate property (the paper's Jnt-ver).

Verify ``P := P1 ∧ ... ∧ Pk`` with IC3.  If ``P`` holds, all properties
hold.  If a counterexample is found, the properties falsified at its
final frame are reported false; they are removed, a new aggregate is
formed from the survivors, and the procedure re-iterates (Section 9's
Jnt-ver behaviour) until everything is solved or the budget runs out.

This is the baseline the paper compares JA-verification against; its
weaknesses on designs with many heterogeneous or failing properties are
exactly what Tables II and III measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping

from ..circuit.aig import Property
from ..engines.ic3 import IC3Options, ic3_check
from ..engines.result import PropStatus, ResourceBudget
from ..progress import (
    BudgetCheckpoint,
    Emit,
    PropertySolved,
    PropertyStarted,
    emit_or_null,
)
from ..ts.system import TransitionSystem
from .report import MultiPropReport, PropOutcome


@dataclass
class JointOptions:
    """Configuration of one joint-verification run."""

    total_time: float | None = None
    total_conflicts: int | None = None
    max_frames: int = 500
    include_etf: bool = True  # the HWMCC sets do not mark ETF properties
    # SAT backend name (repro.sat registry); None = process default.
    solver_backend: str | None = None
    # Extra IC3Options fields applied to every engine invocation.
    engine_overrides: Mapping[str, object] = field(default_factory=dict)


_AGGREGATE_PREFIX = "__aggregate"


def joint_verify(
    ts: TransitionSystem,
    options: JointOptions | None = None,
    design_name: str = "design",
    emit: Emit | None = None,
) -> MultiPropReport:
    """Run joint verification; returns per-property global verdicts.

    .. deprecated::
        Prefer ``repro.session.Session(ts, strategy="joint").run()``;
        this wrapper remains for backward compatibility.
    """
    opts = options or JointOptions()
    send: Emit = emit_or_null(emit)
    start = time.monotonic()
    report = MultiPropReport(method="joint", design=design_name)
    remaining: list[Property] = [
        p
        for p in ts.properties
        if opts.include_etf or not p.expected_to_fail
    ]
    budget = ResourceBudget(
        time_limit=opts.total_time, conflict_limit=opts.total_conflicts
    )
    iteration = 0

    def record(prop_name: str, status: PropStatus, **kwargs: object) -> None:
        outcome = PropOutcome(name=prop_name, status=status, local=False, **kwargs)
        report.outcomes[prop_name] = outcome
        send(
            PropertySolved(
                name=prop_name,
                status=status,
                local=False,
                time_seconds=outcome.time_seconds,
                cex_depth=outcome.cex_depth,
            )
        )

    while remaining:
        if budget.exhausted():
            break
        iteration += 1
        aggregate_name = f"{_AGGREGATE_PREFIX}_{iteration}"
        aggregate_lit = ts.aig.and_many(p.lit for p in remaining)
        # Not registered on the AIG: the aggregate is private to this view.
        agg_prop = Property(name=aggregate_name, lit=aggregate_lit)
        view = TransitionSystem(ts.aig, properties=[agg_prop])
        send(PropertyStarted(name=aggregate_name))
        result = ic3_check(
            view,
            aggregate_name,
            IC3Options(
                budget=budget,
                max_frames=opts.max_frames,
                solver_backend=opts.solver_backend,
                emit=send,
                **dict(opts.engine_overrides),
            ),
        )
        elapsed = time.monotonic() - start
        send(
            BudgetCheckpoint(
                scope="total", elapsed=elapsed, conflicts=budget.conflicts_used
            )
        )
        if result.status is PropStatus.HOLDS:
            for p in remaining:
                record(
                    p.name,
                    PropStatus.HOLDS,
                    frames=result.frames,
                    time_seconds=elapsed,
                )
            remaining = []
        elif result.status is PropStatus.FAILS:
            # The CEX's final frame falsifies the aggregate; report every
            # individual property false at its first failure frame (which
            # is the final frame — earlier aggregate failures would have
            # produced a shorter CEX).
            lits = {p.name: p.lit for p in remaining}
            _, failed_names = result.cex.first_failures(ts.aig, lits)
            if not failed_names:
                raise RuntimeError("joint CEX refutes no individual property")
            for name in failed_names:
                record(
                    name,
                    PropStatus.FAILS,
                    frames=result.frames,
                    time_seconds=elapsed,
                    cex_depth=len(result.cex),
                )
            remaining = [p for p in remaining if p.name not in failed_names]
        else:  # UNKNOWN: budget exhausted
            break

    # One pass covers both the budget-exhausted survivors and any ETF
    # properties excluded from the run: everything without a verdict is
    # reported UNKNOWN.
    for p in ts.properties:
        if p.name not in report.outcomes:
            record(p.name, PropStatus.UNKNOWN)
    report.total_time = time.monotonic() - start
    report.stats = {"iterations": iteration}
    return report
