"""JA-verification ("Just Assume"), the paper's core contribution (Sec. 4).

For each property ``Pi`` (in a configurable order), run IC3 on the
projected system ``(I, T^P)``: every other Expected-To-Hold property is
assumed as a constraint on transition sources.  The run either

* proves ``Pi`` *locally* — by Proposition 5, if every property is proved
  locally then every property holds globally; the strengthening clauses
  are exported to the clauseDB and re-used for later properties
  (Section 6), or
* finds a local counterexample — ``Pi`` joins the **debugging set**: its
  failure is not preceded by the failure of any other ETH property, so
  the behaviour it exposes must be fixed first (Section 3), or
* exhausts its per-property budget — ``Pi`` is reported unsolved, exactly
  like the time-limited rows of the paper's tables.

Spurious counterexamples (Section 7-A): with constraint-ignoring lifting
(the default, faster mode) the trace may contain a transition from a
state violating an assumed property.  The driver replays every CEX on
the design; if an assumed property fails strictly before the final
frame, the CEX is spurious for the local semantics and the property is
re-run with constraint-respecting lifting, as Ic3-db does.

ETF properties (Section 5): properties marked Expected To Fail are
checked like all others but never *assumed*, so legitimate failures are
not masked.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from ..engines.ic3 import IC3Options, SeedCertificateError, ic3_check
from ..engines.result import EngineResult, PropStatus, ResourceBudget
from ..progress import (
    BudgetCheckpoint,
    ClauseExport,
    ClauseImport,
    Emit,
    PropertySolved,
    PropertyStarted,
    emit_or_null,
)
from ..ts.projection import assumption_names
from ..ts.system import TransitionSystem
from .clausedb import ClauseDB
from .report import MultiPropReport, PropOutcome


@dataclass
class JAOptions:
    """Configuration of one JA-verification run."""

    clause_reuse: bool = True
    respect_constraints_in_lifting: bool = False
    per_property_time: float | None = None
    per_property_conflicts: int | None = None
    total_time: float | None = None
    order: Sequence[str] | None = None  # default: design order
    max_frames: int = 500
    clause_db_path: str | None = None  # persist the clauseDB like Ja-ver
    # Cone-of-influence front end: per property, reduce the design to the
    # joint cone of the target and the (transitively) support-overlapping
    # assumptions.  Assumptions with disjoint support are dropped, which
    # is sound for HOLDS verdicts (fewer assumptions = stronger proof);
    # counterexamples are re-validated against the *full* assumption set
    # and the property is re-run without reduction if they turn out
    # spurious.  See EXPERIMENTS.md's COI ablation.
    coi_reduction: bool = False
    ctg: bool = False  # forwarded to IC3 generalization
    # SAT backend name (repro.sat registry); None = process default.
    solver_backend: str | None = None
    # Extra IC3Options fields (validated by the session layer) applied
    # to every engine invocation, e.g. {"generalize_passes": 1}.
    engine_overrides: Mapping[str, object] = field(default_factory=dict)


class JAVerifier:
    """Drives separate verification with local proofs (Ja-ver analogue).

    ``emit``, when given, receives typed :mod:`repro.progress` events
    (property started/solved, clauseDB exports, budget checkpoints, and
    the engine's frame advances).
    """

    def __init__(
        self,
        ts: TransitionSystem,
        options: JAOptions | None = None,
        emit: Emit | None = None,
    ) -> None:
        self.ts = ts
        self.options = options or JAOptions()
        self.clause_db = ClauseDB(ts)
        self.results: dict[str, EngineResult] = {}
        self._emit: Emit = emit_or_null(emit)

    # ------------------------------------------------------------------
    def run(self, design_name: str = "design") -> MultiPropReport:
        opts = self.options
        start = time.monotonic()
        if opts.clause_db_path and opts.clause_reuse:
            self._load_clause_db(opts.clause_db_path)
        report = MultiPropReport(method="ja", design=design_name)
        order = list(opts.order) if opts.order else [p.name for p in self.ts.properties]
        unknown_names = set(order) - {p.name for p in self.ts.properties}
        if unknown_names:
            raise KeyError(f"unknown properties in order: {sorted(unknown_names)}")

        spurious_reruns = 0
        certificate_retries = 0
        for name in order:
            if opts.total_time is not None and time.monotonic() - start > opts.total_time:
                report.outcomes[name] = PropOutcome(
                    name=name, status=PropStatus.UNKNOWN, local=True
                )
                self._emit(PropertyStarted(name=name))
                self._emit(
                    PropertySolved(name=name, status=PropStatus.UNKNOWN, local=True)
                )
                continue
            outcome, result = self._check_one(name)
            spurious_reruns += outcome.reruns
            if (
                result is not None
                and result.status is PropStatus.HOLDS
                and opts.clause_reuse
                and result.invariant is not None
            ):
                exported = self.clause_db.add_all(result.invariant)
                if exported:
                    self._emit(ClauseExport(name=name, count=exported))
                if opts.clause_db_path:
                    self.clause_db.save(opts.clause_db_path)
            certificate_retries += outcome_stats_get(result, "certificate_retry")
            report.outcomes[name] = outcome
            if result is not None:
                self.results[name] = result
            self._emit(
                PropertySolved(
                    name=name,
                    status=outcome.status,
                    local=True,
                    time_seconds=outcome.time_seconds,
                    cex_depth=outcome.cex_depth,
                    assumed=tuple(outcome.assumed),
                )
            )
            self._emit(
                BudgetCheckpoint(
                    scope="total", elapsed=time.monotonic() - start
                )
            )

        report.total_time = time.monotonic() - start
        report.stats = {
            "spurious_reruns": spurious_reruns,
            "certificate_retries": certificate_retries,
            "clause_db_size": len(self.clause_db),
        }
        return report

    # ------------------------------------------------------------------
    def _load_clause_db(self, path: str) -> None:
        """Warm-start from a persisted clauseDB, exactly like Ja-ver.

        A missing file is a cold start; a present file must parse (a
        stale or foreign database raises
        :class:`~repro.multiprop.clausedb.ClauseDBFormatError` rather
        than silently poisoning proofs).  Loaded clauses go through the
        same init-state validation as freshly exported ones, and the
        engine's certificate re-check (``SeedCertificateError`` retry)
        backstops anything structural validation cannot catch.
        """
        import os

        if not os.path.exists(path):
            return
        loaded = ClauseDB.load(path, self.ts)
        imported = self.clause_db.add_all(loaded.clauses())
        if imported:
            self._emit(ClauseImport(name="<clausedb>", count=imported))

    # ------------------------------------------------------------------
    def _check_one(self, name: str):
        """One property: local IC3, spurious-CEX re-runs, seed fallback."""
        opts = self.options
        assumed = assumption_names(self.ts, name)
        self._emit(PropertyStarted(name=name, assumed=tuple(assumed)))
        prop_lit_by_name = {
            n: self.ts.prop_by_name[n].lit for n in assumed
        }
        reruns = 0
        respect = opts.respect_constraints_in_lifting
        use_seeds = opts.clause_reuse
        use_coi = opts.coi_reduction
        result: EngineResult | None = None
        while True:
            result = self._run_ic3(name, assumed, respect, use_seeds, use_coi)
            if result is None:  # certificate failure even without seeds: bug
                raise RuntimeError(f"IC3 certificate failed without seeds on {name}")
            if result.status is PropStatus.FAILS:
                fail_frame, _ = result.cex.first_failures(self.ts.aig, prop_lit_by_name)
                spurious = fail_frame is not None and fail_frame < len(result.cex) - 1
                if spurious and use_coi:
                    # A dropped assumption (or relaxed lifting) broke the
                    # trace: retry on the full design first.
                    use_coi = False
                    reruns += 1
                    continue
                if spurious and not respect:
                    # Spurious for the local semantics: an assumed property
                    # fails strictly before the target does.  Re-run with
                    # lifting that respects the constraints (Sec. 7-A).
                    respect = True
                    reruns += 1
                    continue
            break
        outcome = PropOutcome(
            name=name,
            status=result.status,
            local=True,
            frames=result.frames,
            time_seconds=result.time_seconds,
            cex_depth=len(result.cex) if result.cex is not None else None,
            assumed=assumed,
            reruns=reruns,
            expected_to_fail=self.ts.prop_by_name[name].expected_to_fail,
            invariant=result.invariant,
            cex=result.cex,
        )
        return outcome, result

    def _run_ic3(
        self,
        name: str,
        assumed: list[str],
        respect: bool,
        use_seeds: bool,
        use_coi: bool = False,
    ) -> EngineResult | None:
        opts = self.options
        budget = ResourceBudget(
            time_limit=opts.per_property_time,
            conflict_limit=opts.per_property_conflicts,
        )
        run_ts = self.ts
        run_assumed = assumed
        reduction = None
        if use_coi:
            reduction, run_assumed = self._coi_reduce(name, assumed)
            run_ts = TransitionSystem(reduction.aig)
        seeds = self.clause_db.clauses() if use_seeds else ()
        if reduction is not None and seeds:
            seeds = _translate_clauses(self.ts, run_ts, reduction, seeds)
        ic3_opts = IC3Options(
            assumed=run_assumed,
            respect_constraints_in_lifting=respect,
            seed_clauses=seeds,
            budget=budget,
            max_frames=opts.max_frames,
            ctg=opts.ctg,
            solver_backend=opts.solver_backend,
            emit=self._emit,
            **dict(opts.engine_overrides),
        )
        try:
            result = ic3_check(run_ts, name, ic3_opts)
        except SeedCertificateError:
            if not use_seeds:
                return None
            # Poisoned seeds (possible when mixing invariants proven under
            # different assumption sets): retry from scratch without them.
            result = self._run_ic3(name, assumed, respect, False, use_coi)
            if result is not None:
                result.stats["certificate_retry"] = 1
            return result
        if reduction is not None:
            result = _translate_result_back(self.ts, run_ts, reduction, result)
        return result

    def _coi_reduce(self, name: str, assumed: list[str]):
        """Reduce the design to the support-connected cone of ``name``.

        Grows the kept region to a fixpoint: an assumption is kept iff
        its support (latches + inputs) overlaps the region spanned by the
        target and the assumptions kept so far.  Dropping the others is
        sound for proofs; counterexamples are re-validated by the caller.
        """
        from ..circuit.coi import reduce_to_cone, support_signature

        aig = self.ts.aig
        supports = {
            n: support_signature(aig, self.ts.prop_by_name[n].lit)
            for n in assumed
        }
        region = set(support_signature(aig, self.ts.prop_by_name[name].lit))
        kept: list[str] = []
        changed = True
        while changed:
            changed = False
            for n in assumed:
                if n in kept or not supports[n] & region:
                    continue
                kept.append(n)
                region |= supports[n]
                changed = True
        reduction = reduce_to_cone(aig, [name] + kept)
        return reduction, kept


def outcome_stats_get(result: EngineResult | None, key: str) -> int:
    if result is None:
        return 0
    return int(result.stats.get(key, 0))


def _latch_position_map(original: TransitionSystem, reduced: TransitionSystem, reduction):
    """original latch position -> reduced latch position (kept latches only)."""
    reduced_pos = {latch.lit: i for i, latch in enumerate(reduced.latches)}
    mapping = {}
    for orig_pos, latch in enumerate(original.latches):
        reduced_lit = reduction.latch_map.get(latch.lit)
        if reduced_lit is not None:
            mapping[orig_pos] = reduced_pos[reduced_lit]
    return mapping


def _translate_clauses(original, reduced, reduction, clauses):
    """Project clauseDB clauses onto the reduced latch space (drop the rest)."""
    pos_map = _latch_position_map(original, reduced, reduction)
    out = []
    for clause in clauses:
        translated = []
        ok = True
        for lit in clause:
            new_pos = pos_map.get(abs(lit) - 1)
            if new_pos is None:
                ok = False
                break
            translated.append((new_pos + 1) * (1 if lit > 0 else -1))
        if ok:
            out.append(tuple(sorted(translated, key=abs)))
    return out


def _translate_result_back(original, reduced, reduction, result: EngineResult) -> EngineResult:
    """Map a reduced-design result (CEX inputs/uninit, invariant) back."""
    if result.cex is not None:
        from ..ts.trace import Trace

        reverse_latch = {v: k for k, v in reduction.latch_map.items()}
        result.cex = Trace(
            inputs=reduction.translate_inputs_back(result.cex.inputs),
            uninit={
                reverse_latch[lit]: value
                for lit, value in result.cex.uninit.items()
                if lit in reverse_latch
            },
            property_name=result.cex.property_name,
        )
    if result.invariant is not None:
        pos_map = _latch_position_map(original, reduced, reduction)
        reverse_pos = {v: k for k, v in pos_map.items()}
        translated = []
        for clause in result.invariant:
            translated.append(
                tuple(
                    sorted(
                        (
                            (reverse_pos[abs(lit) - 1] + 1)
                            * (1 if lit > 0 else -1)
                            for lit in clause
                        ),
                        key=abs,
                    )
                )
            )
        result.invariant = translated
    return result


def ja_verify(
    ts: TransitionSystem,
    options: JAOptions | None = None,
    design_name: str = "design",
    emit: Emit | None = None,
) -> MultiPropReport:
    """Convenience wrapper: run JA-verification on all properties.

    .. deprecated::
        Prefer ``repro.session.Session(ts, strategy="ja").run()``; this
        wrapper remains for backward compatibility.
    """
    return JAVerifier(ts, options, emit=emit).run(design_name)
