"""Structure-aware property grouping (the related-work baseline).

The paper's Related Work (Sec. 12) discusses Cabodi-Nocco [8] and
Camurati et al. [10]: group *similar* properties (similar cones of
influence) and verify each group jointly.  The paper contrasts its
purely semantic approach with this structural one and notes the two are
orthogonal — local proofs and clause re-use "can be incorporated in any
structure-aware approach".

This module implements the structural baseline so the comparison can be
run: properties are clustered by Jaccard similarity of their latch
cones, and each cluster is verified jointly (optionally with the cluster
restricted to its own cone of influence, which is what makes grouping
pay).  It also exposes the hybrid the paper hints at: JA-verification
*within* each cluster, assuming only the cluster's own properties.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping

from ..circuit.coi import coi_signature, reduce_to_cone
from ..progress import ClusterStarted, Emit
from ..ts.system import TransitionSystem
from .ja import JAOptions, ja_verify
from .joint import JointOptions, joint_verify
from .report import MultiPropReport


@dataclass
class ClusterOptions:
    """Configuration for clustered verification."""

    similarity_threshold: float = 0.5  # Jaccard threshold for merging
    use_coi_reduction: bool = True
    inner: str = "joint"  # "joint" or "ja" within each cluster
    total_time: float | None = None
    per_property_time: float | None = None
    # SAT backend name (repro.sat registry); None = process default.
    solver_backend: str | None = None
    # Extra IC3Options fields forwarded to the inner driver's engine runs.
    engine_overrides: Mapping[str, object] = field(default_factory=dict)


def jaccard(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity of two cone signatures."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 1.0


def cluster_properties(
    ts: TransitionSystem, threshold: float = 0.5
) -> list[list[str]]:
    """Greedy single-link clustering of properties by cone similarity.

    Properties are scanned in design order; each joins the first cluster
    whose *representative* (first member) has Jaccard similarity above
    the threshold, else starts a new cluster.  Greedy single-pass
    matching keeps the procedure deterministic and linear-ish, which is
    what the structural-grouping papers use in practice.
    """
    signatures = {p.name: coi_signature(ts.aig, p) for p in ts.properties}
    clusters: list[list[str]] = []
    reps: list[frozenset] = []
    for prop in ts.properties:
        sig = signatures[prop.name]
        placed = False
        for i, rep in enumerate(reps):
            if jaccard(sig, rep) >= threshold:
                clusters[i].append(prop.name)
                placed = True
                break
        if not placed:
            clusters.append([prop.name])
            reps.append(sig)
    return clusters


def clustered_verify(
    ts: TransitionSystem,
    options: ClusterOptions | None = None,
    design_name: str = "design",
    emit: Emit | None = None,
) -> MultiPropReport:
    """Verify property clusters independently (joint or JA per cluster).

    .. deprecated::
        Prefer ``repro.session.Session(ts, strategy="clustered").run()``;
        this wrapper remains for backward compatibility.
    """
    opts = options or ClusterOptions()
    if opts.inner not in ("joint", "ja"):
        raise ValueError(f"unknown inner method {opts.inner!r}")
    start = time.monotonic()
    clusters = cluster_properties(ts, opts.similarity_threshold)
    report = MultiPropReport(method=f"clustered-{opts.inner}", design=design_name)

    for cluster in clusters:
        if emit is not None:
            emit(ClusterStarted(members=tuple(cluster)))
        remaining = None
        if opts.total_time is not None:
            remaining = opts.total_time - (time.monotonic() - start)
        if opts.use_coi_reduction:
            reduction = reduce_to_cone(ts.aig, cluster)
            sub_ts = TransitionSystem(reduction.aig)
        else:
            sub_ts = TransitionSystem(
                ts.aig, properties=[ts.prop_by_name[n] for n in cluster]
            )
        if opts.inner == "joint":
            sub_report = joint_verify(
                sub_ts,
                JointOptions(
                    total_time=remaining,
                    solver_backend=opts.solver_backend,
                    engine_overrides=opts.engine_overrides,
                ),
                design_name=design_name,
                emit=emit,
            )
        else:
            sub_report = ja_verify(
                sub_ts,
                JAOptions(
                    per_property_time=opts.per_property_time,
                    total_time=remaining,
                    solver_backend=opts.solver_backend,
                    engine_overrides=opts.engine_overrides,
                ),
                design_name=design_name,
                emit=emit,
            )
        report.outcomes.update(sub_report.outcomes)

    report.total_time = time.monotonic() - start
    report.stats = {
        "clusters": len(clusters),
        "largest_cluster": max((len(c) for c in clusters), default=0),
    }
    return report
