"""Separate verification with *global* proofs (Tables V, VI, X baseline).

Properties are checked one by one like JA-verification, but without any
assumptions: each verdict is global.  Clause re-use remains available
(invariants from global proofs over-approximate global reachability, so
re-using them is unconditionally sound — this is the setting in which
Section 6-B justifies it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..engines.ic3 import IC3Options, SeedCertificateError, ic3_check
from ..engines.result import PropStatus, ResourceBudget
from ..ts.system import TransitionSystem
from .clausedb import ClauseDB
from .report import MultiPropReport, PropOutcome


@dataclass
class SeparateOptions:
    """Configuration of separate-global verification."""

    clause_reuse: bool = True
    per_property_time: Optional[float] = None
    per_property_conflicts: Optional[int] = None
    total_time: Optional[float] = None
    order: Optional[Sequence[str]] = None
    max_frames: int = 500


def separate_verify(
    ts: TransitionSystem,
    options: Optional[SeparateOptions] = None,
    design_name: str = "design",
) -> MultiPropReport:
    """Check every property separately with global proofs."""
    opts = options or SeparateOptions()
    start = time.monotonic()
    report = MultiPropReport(method="separate-global", design=design_name)
    clause_db = ClauseDB(ts)
    order = list(opts.order) if opts.order else [p.name for p in ts.properties]

    for name in order:
        if opts.total_time is not None and time.monotonic() - start > opts.total_time:
            report.outcomes[name] = PropOutcome(
                name=name, status=PropStatus.UNKNOWN, local=False
            )
            continue
        budget = ResourceBudget(
            time_limit=opts.per_property_time,
            conflict_limit=opts.per_property_conflicts,
        )
        seeds = clause_db.clauses() if opts.clause_reuse else ()
        try:
            result = ic3_check(
                ts,
                name,
                IC3Options(
                    seed_clauses=seeds, budget=budget, max_frames=opts.max_frames
                ),
            )
        except SeedCertificateError:
            # Cannot happen with globally sound seeds, but fail safe.
            result = ic3_check(
                ts, name, IC3Options(budget=budget, max_frames=opts.max_frames)
            )
        if result.status is PropStatus.HOLDS and opts.clause_reuse:
            clause_db.add_all(result.invariant or [])
        report.outcomes[name] = PropOutcome(
            name=name,
            status=result.status,
            local=False,
            frames=result.frames,
            time_seconds=result.time_seconds,
            cex_depth=len(result.cex) if result.cex is not None else None,
        )
    report.total_time = time.monotonic() - start
    report.stats = {"clause_db_size": len(clause_db)}
    return report
