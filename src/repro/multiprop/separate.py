"""Separate verification with *global* proofs (Tables V, VI, X baseline).

Properties are checked one by one like JA-verification, but without any
assumptions: each verdict is global.  Clause re-use remains available
(invariants from global proofs over-approximate global reachability, so
re-using them is unconditionally sound — this is the setting in which
Section 6-B justifies it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from ..engines.ic3 import IC3Options, SeedCertificateError, ic3_check
from ..engines.result import PropStatus, ResourceBudget
from ..progress import (
    BudgetCheckpoint,
    ClauseExport,
    Emit,
    PropertySolved,
    PropertyStarted,
    emit_or_null,
)
from ..ts.system import TransitionSystem
from .clausedb import ClauseDB
from .report import MultiPropReport, PropOutcome


@dataclass
class SeparateOptions:
    """Configuration of separate-global verification."""

    clause_reuse: bool = True
    per_property_time: float | None = None
    per_property_conflicts: int | None = None
    total_time: float | None = None
    order: Sequence[str] | None = None
    max_frames: int = 500
    # SAT backend name (repro.sat registry); None = process default.
    solver_backend: str | None = None
    # Extra IC3Options fields applied to every engine invocation.
    engine_overrides: Mapping[str, object] = field(default_factory=dict)


def separate_verify(
    ts: TransitionSystem,
    options: SeparateOptions | None = None,
    design_name: str = "design",
    emit: Emit | None = None,
) -> MultiPropReport:
    """Check every property separately with global proofs.

    .. deprecated::
        Prefer ``repro.session.Session(ts, strategy="separate").run()``;
        this wrapper remains for backward compatibility.
    """
    opts = options or SeparateOptions()
    send: Emit = emit_or_null(emit)
    start = time.monotonic()
    report = MultiPropReport(method="separate-global", design=design_name)
    clause_db = ClauseDB(ts)
    order = list(opts.order) if opts.order else [p.name for p in ts.properties]

    for name in order:
        if opts.total_time is not None and time.monotonic() - start > opts.total_time:
            report.outcomes[name] = PropOutcome(
                name=name, status=PropStatus.UNKNOWN, local=False
            )
            send(PropertyStarted(name=name))
            send(PropertySolved(name=name, status=PropStatus.UNKNOWN, local=False))
            continue
        send(PropertyStarted(name=name))
        budget = ResourceBudget(
            time_limit=opts.per_property_time,
            conflict_limit=opts.per_property_conflicts,
        )
        seeds = clause_db.clauses() if opts.clause_reuse else ()
        ic3_opts = dict(opts.engine_overrides)
        ic3_opts.update(
            budget=budget,
            max_frames=opts.max_frames,
            solver_backend=opts.solver_backend,
            emit=send,
        )
        try:
            result = ic3_check(
                ts, name, IC3Options(seed_clauses=seeds, **ic3_opts)
            )
        except SeedCertificateError:
            # Cannot happen with globally sound seeds, but fail safe.
            result = ic3_check(ts, name, IC3Options(**ic3_opts))
        if result.status is PropStatus.HOLDS and opts.clause_reuse:
            exported = clause_db.add_all(result.invariant or [])
            if exported:
                send(ClauseExport(name=name, count=exported))
        report.outcomes[name] = PropOutcome(
            name=name,
            status=result.status,
            local=False,
            frames=result.frames,
            time_seconds=result.time_seconds,
            cex_depth=len(result.cex) if result.cex is not None else None,
        )
        send(
            PropertySolved(
                name=name,
                status=result.status,
                local=False,
                time_seconds=result.time_seconds,
                cex_depth=len(result.cex) if result.cex is not None else None,
            )
        )
        send(BudgetCheckpoint(scope="total", elapsed=time.monotonic() - start))
    report.total_time = time.monotonic() - start
    report.stats = {"clause_db_size": len(clause_db)}
    return report
