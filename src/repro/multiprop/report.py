"""Aggregated multi-property verification reports and table rendering.

Every driver (JA, joint, separate) returns a :class:`MultiPropReport`;
the benchmark harness renders lists of them with :func:`render_table`
in the same row/column layout as the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..engines.result import PropStatus


@dataclass
class PropOutcome:
    """Final verdict for one property under one driver."""

    name: str
    status: PropStatus
    local: bool  # True if the verdict is w.r.t. T^P (local), False if global
    frames: int = 0
    time_seconds: float = 0.0
    cex_depth: int | None = None
    assumed: list[str] = field(default_factory=list)
    reruns: int = 0  # spurious-CEX re-runs with respecting lifting
    expected_to_fail: bool = False  # ETF properties (Section 5)
    engine: str | None = None  # which engine produced the verdict (portfolio)
    # Witnesses, carried so the proof cache can persist and re-certify
    # them.  Deliberately kept off the network report wire (traces stay
    # server-side; see repro/net/codec.py).
    invariant: list | None = None  # strengthening clauses for HOLDS
    cex: object | None = None  # Trace for FAILS


@dataclass
class MultiPropReport:
    """Outcome of a whole multi-property verification run."""

    method: str
    design: str
    outcomes: dict[str, PropOutcome] = field(default_factory=dict)
    total_time: float = 0.0
    stats: dict[str, float] = field(default_factory=dict)

    # -- counters used by the paper's tables ---------------------------
    @property
    def num_props(self) -> int:
        return len(self.outcomes)

    def solved(self) -> list[PropOutcome]:
        return [o for o in self.outcomes.values() if o.status is not PropStatus.UNKNOWN]

    def unsolved(self) -> list[PropOutcome]:
        return [o for o in self.outcomes.values() if o.status is PropStatus.UNKNOWN]

    def false_props(self) -> list[str]:
        return sorted(
            o.name for o in self.outcomes.values() if o.status is PropStatus.FAILS
        )

    def true_props(self) -> list[str]:
        return sorted(
            o.name for o in self.outcomes.values() if o.status is PropStatus.HOLDS
        )

    def debugging_set(self) -> list[str]:
        """ETH properties proved false *locally* (empty for global methods).

        ETF properties are excluded: their failures are expected
        behaviour (reachability witnesses), not bugs to fix (Section 5).
        """
        return sorted(
            o.name
            for o in self.outcomes.values()
            if o.status is PropStatus.FAILS and o.local and not o.expected_to_fail
        )

    def etf_confirmed(self) -> list[str]:
        """ETF properties whose expected failure was witnessed."""
        return sorted(
            o.name
            for o in self.outcomes.values()
            if o.status is PropStatus.FAILS and o.expected_to_fail
        )

    def summary(self) -> str:
        n_false = len(self.false_props())
        n_true = len(self.true_props())
        n_unk = len(self.unsolved())
        return (
            f"{self.method}[{self.design}]: {n_false} false, {n_true} true, "
            f"{n_unk} unsolved, {self.total_time:.2f}s"
        )


def format_time(seconds: float) -> str:
    """Render a duration the way the paper's tables do."""
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 100:
        return f"{seconds:,.0f} s"
    return f"{seconds:.2f} s"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Fixed-width table rendering for benchmark output."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title]
    if note:
        lines.append(note)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
