"""Simulated parallel JA-verification (paper Section 11).

The paper argues that JA-verification parallelizes naturally: each
property can be proved locally on its own processor, with no mandatory
clause exchange, and local proofs get *easier* as the property set grows
(more assumptions, smaller invariants).  Table X demonstrates the
ingredient facts on benchmark 6s289; the projected conclusion is that
"verification would be finished in a matter of seconds" on one processor
per property.

This module is the *simulation* counterpart: measure each property's
standalone (no clause exchange) local-proof time, then compute the
makespan of scheduling those independent jobs on ``w`` workers.  Greedy
list scheduling is within a factor 4/3 of optimal and matches the
paper's in-order dispatch.

Real process-parallel execution lives in :mod:`repro.parallel`; the
simulator remains behind it as the ``parallel-ja`` strategy's
``schedule_only`` mode — deterministic, portable, and the honest choice
when the host has fewer cores than the run has properties.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from ..engines.ic3 import IC3Options, ic3_check
from ..engines.result import ResourceBudget
from ..ts.projection import assumption_names
from ..ts.system import TransitionSystem


@dataclass
class ParallelSimResult:
    """Per-property standalone times plus simulated makespans.

    ``prop_queries`` counts the engine's SAT queries per property — the
    deterministic work measure (wall-clock comparisons flake on loaded
    hosts, the same reason budgets can be expressed in conflicts).
    """

    prop_times: dict[str, float] = field(default_factory=dict)
    prop_frames: dict[str, int] = field(default_factory=dict)
    prop_queries: dict[str, int] = field(default_factory=dict)
    statuses: dict[str, str] = field(default_factory=dict)

    def makespan(self, workers: int) -> float:
        """Greedy list-scheduling makespan on ``workers`` processors."""
        if workers <= 0:
            raise ValueError("workers must be positive")
        loads = [0.0] * min(workers, max(1, len(self.prop_times)))
        for duration in self.prop_times.values():
            loads[loads.index(min(loads))] += duration
        return max(loads) if loads else 0.0

    def sequential_time(self) -> float:
        return sum(self.prop_times.values())

    def speedup(self, workers: int) -> float:
        makespan = self.makespan(workers)
        if makespan == 0:
            return float(len(self.prop_times) or 1)
        return self.sequential_time() / makespan


def measure_local_proofs(
    ts: TransitionSystem,
    names: Sequence[str] | None = None,
    per_property_time: float | None = None,
    max_frames: int = 500,
    per_property_conflicts: int | None = None,
    engine_overrides: Mapping[str, object] | None = None,
) -> ParallelSimResult:
    """Prove each named property locally, independently (no clauseDB).

    This is the Table X measurement: proofs "generated independently of
    each other, i.e. there was no exchange of strengthening clauses".
    ``engine_overrides`` are extra :class:`IC3Options` fields (e.g.
    ``ctg``), so the measurement can mirror a configured engine.
    """
    result = ParallelSimResult()
    for name in names or [p.name for p in ts.properties]:
        assumed = assumption_names(ts, name)
        budget = ResourceBudget(
            time_limit=per_property_time, conflict_limit=per_property_conflicts
        )
        start = time.monotonic()
        engine_result = ic3_check(
            ts,
            name,
            IC3Options(
                assumed=assumed,
                budget=budget,
                max_frames=max_frames,
                **dict(engine_overrides or {}),
            ),
        )
        result.prop_times[name] = time.monotonic() - start
        result.prop_frames[name] = engine_result.frames
        result.prop_queries[name] = int(engine_result.stats.get("sat_queries", 0))
        result.statuses[name] = engine_result.status.value
    return result


def measure_global_proofs(
    ts: TransitionSystem,
    names: Sequence[str] | None = None,
    per_property_time: float | None = None,
    max_frames: int = 500,
    per_property_conflicts: int | None = None,
    engine_overrides: Mapping[str, object] | None = None,
) -> ParallelSimResult:
    """Global-proof counterpart for the Table X comparison."""
    result = ParallelSimResult()
    for name in names or [p.name for p in ts.properties]:
        budget = ResourceBudget(
            time_limit=per_property_time, conflict_limit=per_property_conflicts
        )
        start = time.monotonic()
        engine_result = ic3_check(
            ts,
            name,
            IC3Options(
                budget=budget,
                max_frames=max_frames,
                **dict(engine_overrides or {}),
            ),
        )
        result.prop_times[name] = time.monotonic() - start
        result.prop_frames[name] = engine_result.frames
        result.prop_queries[name] = int(engine_result.stats.get("sat_queries", 0))
        result.statuses[name] = engine_result.status.value
    return result
