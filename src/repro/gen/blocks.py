"""Reusable sub-circuits ("slices") for the synthetic benchmark families.

The HWMCC-12/13 multi-property designs the paper evaluates on are not
redistributable here, so the families in :mod:`repro.gen.families` are
assembled from these blocks, each of which realizes one of the
structural mechanisms the paper's results rest on:

* :func:`guarded_counter_slice` — a shallow-failing *guard* property plus
  deep-failing *dependent* properties that hold locally (Example 1's
  mechanism, with tunable counterexample depth).  This is what makes
  joint verification grind on deep CEXs while JA-verification replaces
  them with cheap local proofs (Tables II, III, V).
* :func:`token_ring_slice` — all-true mutual-exclusion properties whose
  proofs share one inductive invariant (one-hotness); the clause-re-use
  mechanism of Section 6 shines here (Table VII).
* :func:`good_chain_slice` — a pipeline of implications: each property is
  1-step inductive given its neighbour, but needs a proof of depth ``i``
  on its own (the Table X local-vs-global gap).
* :func:`hold_slice` — trivially inductive filler properties.

Every block allocates its own inputs and latches, so properties from
different slices have disjoint cones — the "aggregate property depends
on a large subset of state variables" regime of Section 9-A.
"""

from __future__ import annotations


from ..circuit.aig import AIG, aig_not
from ..circuit import words


def guarded_counter_slice(
    aig: AIG,
    prefix: str,
    counter_bits: int,
    guard_depth: int,
    deep_values: list[int],
    include_true_prop: bool = True,
) -> list[str]:
    """A slice with one guard property and ``len(deep_values)`` dependents.

    Structure: a request input feeds a shift chain of ``guard_depth``
    mode latches; the counter increments only while the last mode latch
    is set.  The guard property ``<prefix>_G`` (the mode never arms)
    fails at depth ``guard_depth + 1``; each dependent ``<prefix>_D<j>``
    asserts ``val != deep_values[j]`` and fails globally only at depth
    ``guard_depth + 1 + deep_values[j]`` — but holds *locally*, because
    assuming the guard pins the counter at zero.

    Returns the property names added, in design order (guard first).
    """
    if guard_depth < 1:
        raise ValueError("guard_depth must be >= 1")
    req = aig.add_input(f"{prefix}_req")
    modes = []
    feed = req
    for i in range(guard_depth):
        mode = aig.add_latch(f"{prefix}_m{i}", init=0)
        aig.set_next(mode, feed)
        feed = mode
        modes.append(mode)
    armed = modes[-1]
    val = words.word_latches(aig, f"{prefix}_val", counter_bits, init=0)
    incremented = words.inc(aig, val)
    words.set_next_word(aig, val, words.mux_word(aig, armed, incremented, val))

    names = []
    guard_name = f"{prefix}_G"
    aig.add_property(guard_name, aig_not(armed))
    names.append(guard_name)
    for j, value in enumerate(deep_values):
        if not 0 < value < (1 << counter_bits):
            raise ValueError(f"deep value {value} out of range for {counter_bits} bits")
        name = f"{prefix}_D{j}"
        aig.add_property(name, aig_not(words.eq_const(aig, val, value)))
        names.append(name)
    if include_true_prop:
        # A globally-true property on the same slice: a shadow counter
        # that saturates (instead of wrapping) can never exceed its limit.
        sat_val = words.word_latches(aig, f"{prefix}_sat", 2, init=0)
        limit = 2  # saturate at 2
        at_limit = words.eq_const(aig, sat_val, limit)
        sat_inc = words.inc(aig, sat_val)
        hold = words.mux_word(aig, at_limit, sat_val, sat_inc)
        words.set_next_word(aig, sat_val, words.mux_word(aig, armed, hold, sat_val))
        name = f"{prefix}_T"
        aig.add_property(name, words.ule_const(aig, sat_val, limit))
        names.append(name)
    return names


def token_ring_slice(
    aig: AIG,
    prefix: str,
    size: int,
    n_props: int | None = None,
) -> list[str]:
    """A rotating one-hot token ring with mutual-exclusion properties.

    All properties are TRUE but none is inductive alone: IC3 must
    discover (most of) the pairwise one-hotness invariant for the first
    one; every later property can re-use those clauses (Section 6).
    """
    if size < 3:
        raise ValueError("ring size must be >= 3")
    step = aig.add_input(f"{prefix}_step")
    tokens = []
    for i in range(size):
        token = aig.add_latch(f"{prefix}_t{i}", init=1 if i == 0 else 0)
        tokens.append(token)
    for i, token in enumerate(tokens):
        rotated = tokens[(i - 1) % size]
        aig.set_next(token, aig.mux(step, rotated, token))
    names = []
    count = size if n_props is None else min(n_props, size)
    for i in range(count):
        name = f"{prefix}_X{i}"
        a, b = tokens[i], tokens[(i + 1) % size]
        aig.add_property(name, aig_not(aig.and_(a, b)))
        names.append(name)
    return names


def good_chain_slice(
    aig: AIG,
    prefix: str,
    depth: int,
    expose_every: int = 1,
) -> list[str]:
    """A "good flag" pipeline: ``g0`` is stuck at 1 and propagates.

    Property ``<prefix>_C<i>`` asserts ``g_i == 1``.  Locally (assuming
    the neighbour property) each is 1-step inductive; globally, proving
    ``g_i`` requires walking the chain back ``i`` stages.  Exposing only
    a subset (``expose_every``) leaves unassumable gaps, which makes the
    local proofs proportionally harder — a knob the family specs use.
    """
    if depth < 1:
        raise ValueError("chain depth must be >= 1")
    flags = []
    prev = None
    for i in range(depth):
        flag = aig.add_latch(f"{prefix}_g{i}", init=1)
        aig.set_next(flag, flag if prev is None else prev)
        flags.append(flag)
        prev = flag
    names = []
    for i in range(0, depth, expose_every):
        name = f"{prefix}_C{i}"
        aig.add_property(name, flags[i])
        names.append(name)
    return names


def shared_invariant_slice(
    aig: AIG,
    prefix: str,
    mode_size: int,
    n_props: int,
) -> list[str]:
    """Properties that all need one *hidden* shared inductive invariant.

    A one-hot mode ring rotates internally but is not mentioned by any
    property.  Each property ``<prefix>_S<k>`` asserts that its error
    latch stays low; the error latch is set whenever *any two* mode
    tokens coincide.  Proving any single property therefore requires
    discovering the full pairwise one-hotness of the hidden ring —
    an invariant that the other properties, being about unrelated error
    latches, cannot supply as assumptions.  This realizes the regime of
    the paper's Table VII: the first local proof is expensive, and its
    exported strengthening clauses make every later proof nearly free.
    """
    if mode_size < 3:
        raise ValueError("mode ring size must be >= 3")
    if n_props < 1:
        raise ValueError("need at least one property")
    step = aig.add_input(f"{prefix}_step")
    modes = []
    for i in range(mode_size):
        mode = aig.add_latch(f"{prefix}_m{i}", init=1 if i == 0 else 0)
        modes.append(mode)
    for i, mode in enumerate(modes):
        rotated = modes[(i - 1) % mode_size]
        aig.set_next(mode, aig.mux(step, rotated, mode))
    collision = aig.or_many(
        aig.and_(modes[a], modes[b])
        for a in range(mode_size)
        for b in range(a + 1, mode_size)
    )
    names = []
    for k in range(n_props):
        err = aig.add_latch(f"{prefix}_e{k}", init=0)
        aig.set_next(err, aig.or_(err, collision))
        name = f"{prefix}_S{k}"
        aig.add_property(name, aig_not(err))
        names.append(name)
    return names


def lfsr_ballast(
    aig: AIG, prefix: str, width: int, taps_per_bit: int = 6, seed: int = 99
) -> None:
    """A property-free, densely connected LFSR-style register bank.

    Adds no properties; its purpose is to make the *shared* transition
    relation large.  Monolithic engines (ours, like many) encode every
    latch's next-state function in every solver, so separate verification
    pays this encoding cost once per property while joint verification
    amortizes it over one aggregate run — the mechanism behind the one
    Table II benchmark (6s403) where joint verification wins.  A
    cone-of-influence-reducing front end would remove this cost; see the
    ablation notes in EXPERIMENTS.md.
    """
    import random

    rng = random.Random(seed)
    regs = [aig.add_latch(f"{prefix}_q{i}", init=0) for i in range(width)]
    stir = aig.add_input(f"{prefix}_in")
    for i, reg in enumerate(regs):
        acc = regs[(i + 1) % width]
        for _ in range(taps_per_bit):
            acc = aig.xor(acc, rng.choice(regs))
        aig.set_next(reg, aig.xor(acc, stir) if i == 0 else acc)


def hold_slice(aig: AIG, prefix: str, count: int) -> list[str]:
    """Trivially inductive filler properties (a zero register stays zero)."""
    names = []
    for i in range(count):
        z = aig.add_latch(f"{prefix}_z{i}", init=0)
        aig.set_next(z, z)
        name = f"{prefix}_Z{i}"
        aig.add_property(name, aig_not(z))
        names.append(name)
    return names
