"""The paper's Example 1: an 8-bit resettable counter with a reset bug.

Faithful translation of the Verilog module ``counter``::

    module counter (enable, clk, req);
      parameter rval = 1 << 7;
      input enable, clk, req;
      reg [7:0] val;
      wire reset;
      initial val = 0;
      assign reset = ((val == rval) && req);   // BUG: reset requires req
      always @(posedge clk) begin
        if (enable) begin
          if (reset) val = 0;
          else       val = val + 1;
        end
      end
      P0: assert property (req == 1);
      P1: assert property (val <= rval);
    endmodule

``P0`` fails globally and locally at the very first frame (``req`` is a
free input).  ``P1`` fails globally — after ``rval + 1`` enabled steps
without a reset the counter exceeds ``rval`` — but the counterexample
depth grows as ``2^(bits-1)``, which is what makes global BMC/PDR blow
up in Table I.  Locally, assuming ``P0`` (``req ≡ 1``) makes ``P1``
inductive, so the local proof is instant at every width.  The debugging
set is ``{P0}``.
"""

from __future__ import annotations

from ..circuit.aig import AIG
from ..circuit import words


def buggy_counter(bits: int = 8, rval: int | None = None) -> AIG:
    """Example 1's counter at an arbitrary width (Table I's #bits column)."""
    if bits < 2:
        raise ValueError("counter needs at least 2 bits")
    if rval is None:
        rval = 1 << (bits - 1)
    if not 0 < rval < (1 << bits):
        raise ValueError(f"rval {rval} must fit in {bits} bits")
    aig = AIG()
    enable = aig.add_input("enable")
    req = aig.add_input("req")
    val = words.word_latches(aig, "val", bits, init=0)
    at_rval = words.eq_const(aig, val, rval)
    reset = aig.and_(at_rval, req)  # the buggy line: reset only when req
    incremented = words.inc(aig, val)
    when_enabled = words.mux_word(aig, reset, words.const_word(0, bits), incremented)
    words.set_next_word(aig, val, words.mux_word(aig, enable, when_enabled, val))
    aig.add_property("P0", req)
    aig.add_property("P1", words.ule_const(aig, val, rval))
    return aig


def fixed_counter(bits: int = 8, rval: int | None = None) -> AIG:
    """The repaired counter: ``reset = (val == rval) || req``.

    With the fix, ``P1`` holds globally (the counter can never pass
    ``rval``); ``P0`` still fails, of course — it asserts an input.
    Used by tests to separate "bug present" from "bug absent" behaviour.
    """
    if bits < 2:
        raise ValueError("counter needs at least 2 bits")
    if rval is None:
        rval = 1 << (bits - 1)
    aig = AIG()
    enable = aig.add_input("enable")
    req = aig.add_input("req")
    val = words.word_latches(aig, "val", bits, init=0)
    at_rval = words.eq_const(aig, val, rval)
    reset = aig.or_(at_rval, req)
    incremented = words.inc(aig, val)
    when_enabled = words.mux_word(aig, reset, words.const_word(0, bits), incremented)
    words.set_next_word(aig, val, words.mux_word(aig, enable, when_enabled, val))
    aig.add_property("P0", req)
    aig.add_property("P1", words.ule_const(aig, val, rval))
    return aig
