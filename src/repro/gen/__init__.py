"""Benchmark and test-design generators (the offline HWMCC substitute)."""

from .blocks import (
    good_chain_slice,
    guarded_counter_slice,
    hold_slice,
    lfsr_ballast,
    shared_invariant_slice,
    token_ring_slice,
)
from .counter import buggy_counter, fixed_counter
from .families import (
    ALL_TRUE_SPECS,
    FAILING_SPECS,
    LARGE_DESIGN_NAMES,
    DesignSpec,
    all_true_designs,
    failing_designs,
    huge_design,
    large_design,
)
from .random_designs import random_design

__all__ = [
    "buggy_counter",
    "fixed_counter",
    "guarded_counter_slice",
    "token_ring_slice",
    "good_chain_slice",
    "hold_slice",
    "lfsr_ballast",
    "shared_invariant_slice",
    "DesignSpec",
    "FAILING_SPECS",
    "ALL_TRUE_SPECS",
    "LARGE_DESIGN_NAMES",
    "failing_designs",
    "all_true_designs",
    "large_design",
    "huge_design",
    "random_design",
]
