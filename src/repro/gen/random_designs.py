"""Random small sequential designs for differential testing.

These designs are intentionally tiny (a handful of latches and inputs)
so that :class:`repro.ts.ProjectedReachability` can compute exact
global/local verdicts by state enumeration.  The test-suite fuzzes every
engine and every multi-property driver against this ground truth.
"""

from __future__ import annotations

import random
from ..circuit.aig import AIG, aig_not


def random_design(
    seed: int,
    n_latches: int = 4,
    n_inputs: int = 2,
    n_gates: int = 12,
    n_props: int = 3,
    init_choices=(0, 0, 1, None),
) -> AIG:
    """A random AIG with ``n_props`` random property literals.

    The gate pool mixes latches, inputs and previously created gates, so
    properties end up with overlapping cones — the interesting regime for
    local-vs-global verification.
    """
    rng = random.Random(seed)
    aig = AIG()
    inputs = [aig.add_input(f"x{i}") for i in range(n_inputs)]
    latches = [
        aig.add_latch(f"l{i}", init=rng.choice(init_choices))
        for i in range(n_latches)
    ]
    pool = list(inputs) + list(latches)

    def pick() -> int:
        lit = rng.choice(pool)
        return aig_not(lit) if rng.random() < 0.5 else lit

    for _ in range(n_gates):
        op = rng.random()
        if op < 0.5:
            lit = aig.and_(pick(), pick())
        elif op < 0.75:
            lit = aig.or_(pick(), pick())
        else:
            lit = aig.xor(pick(), pick())
        pool.append(lit)
    for latch in latches:
        aig.set_next(latch, pick())
    for p in range(n_props):
        # Bias towards properties that sometimes hold: OR of two pool lits.
        lit = aig.or_(pick(), pick())
        aig.add_property(f"P{p}", lit)
    return aig
