"""Named synthetic multi-property designs standing in for HWMCC-12/13.

The paper evaluates on the multi-property track of HWMCC-12/13
(6s400, 6s355, 6s289, 6s403, 6s104, ..., bob12m09).  Those AIGER files
are not available offline, so each paper benchmark is mapped to a
synthetic design with the same *qualitative* composition, scaled down so
that the pure-Python engines run in seconds instead of the paper's
hours.  The substitution preserves what the experiments measure:

* Table II designs (``r400``, ``r355``, ``r289``, ``r403``) — many
  properties with disjoint cones, a sprinkling of deep-failing
  dependents: joint verification degrades with the number of properties,
  JA-verification does not.  ``r403`` is built to be the
  joint-friendly exception (all properties cheap and true, plus one
  deep-failing dependent that burdens per-property budgets), matching
  the one benchmark where joint wins in the paper.
* Table III designs (``f104`` ... ``f380``) — failing designs whose
  debugging sets are much smaller than their sets of globally-false
  properties.  The per-design guard/dependent mix follows the ratios
  visible in the paper's Table III (e.g. 6s207: 33 props, debugging set
  of 2; 6s335: 61 props, 20 locally false; 6s380: hundreds of props,
  3 locally false).
* Table IV designs (``t124`` ... ``t275``) — all-true designs mixing
  rings (shared invariants) and chains (sequential invariants).
* ``huge_design`` — the 6s289 stand-in for Table X: a long implication
  chain in which every property is 1-step inductive locally but needs a
  proof of depth ≈ its pipeline position globally.

Property counts are scaled by roughly 1/10 and counterexample depths to
tens of frames; EXPERIMENTS.md records the mapping row by row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuit.aig import AIG
from .blocks import (
    good_chain_slice,
    guarded_counter_slice,
    hold_slice,
    lfsr_ballast,
    shared_invariant_slice,
    token_ring_slice,
)


@dataclass
class DesignSpec:
    """Recipe for one synthetic multi-property design."""

    name: str
    # (counter_bits, guard_depth, deep_values) per guarded slice
    guarded: list[tuple[int, int, list[int]]] = field(default_factory=list)
    rings: list[int] = field(default_factory=list)  # ring sizes
    chains: list[tuple[int, int]] = field(default_factory=list)  # (depth, expose_every)
    filler: int = 0
    ballast: tuple[int, int] = (0, 0)  # (lfsr width, taps per bit)
    shared: list[tuple[int, int]] = field(default_factory=list)  # (mode size, n props)
    description: str = ""

    def build(self) -> AIG:
        aig = AIG()
        for i, (bits, depth, values) in enumerate(self.guarded):
            guarded_counter_slice(aig, f"s{i}", bits, depth, values)
        for i, size in enumerate(self.rings):
            token_ring_slice(aig, f"r{i}", size)
        for i, (depth, expose) in enumerate(self.chains):
            good_chain_slice(aig, f"c{i}", depth, expose)
        if self.filler:
            hold_slice(aig, "z", self.filler)
        if self.ballast[0]:
            lfsr_ballast(aig, "b", self.ballast[0], self.ballast[1])
        for i, (mode_size, n_props) in enumerate(self.shared):
            shared_invariant_slice(aig, f"v{i}", mode_size, n_props)
        return aig


# ----------------------------------------------------------------------
# Table III analogues: designs with failing properties.
# Each entry notes the paper row it mirrors and the expected structure:
# #props, #locally-false (debugging set), #globally-false.
# ----------------------------------------------------------------------
FAILING_SPECS: dict[str, DesignSpec] = {
    # 6s104: 124 props, JA finds 1 false + 123 true.
    "f104": DesignSpec(
        name="f104",
        guarded=[(8, 2, [12, 150, 220])],
        rings=[5, 5],
        chains=[(6, 1)],
        filler=2,
        description="one shallow guard; dependents need up to ~220-frame CEXs",
    ),
    # 6s260: 35 props, 1 false + 34 true.
    "f260": DesignSpec(
        name="f260",
        guarded=[(7, 3, [90])],
        rings=[4],
        chains=[(5, 1)],
        filler=3,
        description="single guard; one deep dependent and shared-invariant rings",
    ),
    # 6s258: 80 props; 30 globally false found by joint, only 1 locally false.
    "f258": DesignSpec(
        name="f258",
        guarded=[(8, 1, [6, 10, 40, 150, 200, 250])],
        rings=[4],
        chains=[(4, 1)],
        filler=2,
        description="one guard dominating six dependents of mixed depth",
    ),
    # 6s175: 3 props, 2 false + 1 true.
    "f175": DesignSpec(
        name="f175",
        guarded=[(4, 1, []), (4, 2, [])],
        chains=[(1, 1)],
        description="two independent guards, one true chain prop",
    ),
    # 6s207: 33 props, debugging set of 2, 10 globally false found by joint.
    "f207": DesignSpec(
        name="f207",
        guarded=[(7, 1, [8, 25, 60, 110]), (7, 2, [10, 30, 70, 115])],
        rings=[4],
        chains=[(3, 1)],
        description="two guards, eight dependents of growing depth",
    ),
    # 6s254: 14 props, 13 false globally / 1 locally.
    "f254": DesignSpec(
        name="f254",
        guarded=[(7, 1, [3, 6, 10, 16, 24, 34, 46, 60, 76, 94, 110, 125])],
        description="one guard, twelve dependents: nearly everything fails globally",
    ),
    # 6s335: 61 props, 26 false globally, 20 locally.
    "f335": DesignSpec(
        name="f335",
        guarded=[(4, d, [4]) for d in (1, 1, 2, 2, 3, 3, 4, 4, 5, 5)],
        rings=[4],
        chains=[(4, 1)],
        description="ten independent guards (a large debugging set) plus dependents",
    ),
    # 6s380: 897 props, 399 false globally, only 3 locally.
    "f380": DesignSpec(
        name="f380",
        guarded=[
            (8, 1, list(range(4, 40, 4)) + [80, 120, 160, 200, 240]),
            (8, 2, list(range(5, 41, 4)) + [90, 130, 170, 210, 250]),
            (8, 3, list(range(6, 42, 4)) + [100, 140, 180, 220]),
        ],
        rings=[5],
        chains=[(8, 1)],
        filler=4,
        description="three guards each dominating a mix of findable and hopeless dependents",
    ),
}


# ----------------------------------------------------------------------
# Table IV analogues: all-true designs.
# ----------------------------------------------------------------------
ALL_TRUE_SPECS: dict[str, DesignSpec] = {
    # 6s124: 630 props -> many properties sharing one hidden invariant.
    "t124": DesignSpec(
        name="t124", shared=[(10, 16)], rings=[6], chains=[(8, 1)], filler=6,
        description="hidden shared invariant: clause re-use pays off massively",
    ),
    # 6s135: 340 props, easy for everyone.
    "t135": DesignSpec(
        name="t135", rings=[5, 4], chains=[(4, 1)], filler=8,
        description="small rings and shallow chains",
    ),
    # 6s139: 120 props, hard; JA leaves 2 unsolved in design order.
    "t139": DesignSpec(
        name="t139", rings=[8], chains=[(14, 2)], filler=2,
        description="sparse chain (expose_every=2): local proofs must bridge gaps",
    ),
    # 6s256: 5 props, joint much better (few, hard properties).
    "t256": DesignSpec(
        name="t256", chains=[(12, 4)], filler=1,
        description="five properties spread over a deep chain",
    ),
    # bob12m09: 85 props.
    "tbob": DesignSpec(
        name="tbob", rings=[5], chains=[(6, 1)], filler=5,
        description="balanced mix",
    ),
    # 6s407: 371 props.
    "t407": DesignSpec(
        name="t407", shared=[(9, 12)], rings=[5], chains=[(7, 1)], filler=4,
        description="hidden shared invariant plus a ring and a chain",
    ),
    # 6s273: 42 props, trivial for joint.
    "t273": DesignSpec(
        name="t273", rings=[4], filler=10,
        description="mostly filler: everything is nearly free",
    ),
    # 6s275: 673 props.
    "t275": DesignSpec(
        name="t275", shared=[(8, 10)], rings=[6], chains=[(6, 1)], filler=8,
        description="a smaller hidden invariant plus ring and chain",
    ),
}


# ----------------------------------------------------------------------
# Table II analogues: designs with (relatively) many properties, checked
# for their first k properties.
# ----------------------------------------------------------------------
def large_design(name: str) -> AIG:
    """Build one of the Table II stand-ins (``r400 r355 r289 r403``)."""
    if name == "r400":
        # 6s400: joint times out even for k=100; deep dependents dominate.
        spec = DesignSpec(
            name=name,
            guarded=[(6, 1, list(range(3, 30, 2))), (6, 2, list(range(4, 30, 2)))],
            rings=[6, 5],
            chains=[(10, 1)],
            filler=10,
        )
    elif name == "r355":
        spec = DesignSpec(
            name=name,
            guarded=[(6, 2, list(range(3, 24, 2)))],
            rings=[7],
            chains=[(12, 1)],
            filler=12,
        )
    elif name == "r289":
        # All-true, heterogeneous cones: both methods do OK until k grows.
        spec = DesignSpec(
            name=name,
            rings=[6, 6, 5],
            chains=[(16, 1), (10, 1)],
            filler=14,
        )
    elif name == "r403":
        # The joint-friendly exception (6s403): many cheap true properties
        # on a design whose shared logic is large, so the per-property
        # encoding cost of separate verification exceeds the one-shot
        # aggregate run.
        spec = DesignSpec(
            name=name,
            rings=[4],
            chains=[(10, 1)],
            filler=40,
            ballast=(60, 8),
        )
    else:
        raise KeyError(f"unknown large design {name!r}")
    return spec.build()


LARGE_DESIGN_NAMES = ("r400", "r355", "r289", "r403")


def failing_designs() -> dict[str, AIG]:
    """Build all Table III stand-ins."""
    return {name: spec.build() for name, spec in FAILING_SPECS.items()}


def all_true_designs() -> dict[str, AIG]:
    """Build all Table IV stand-ins."""
    return {name: spec.build() for name, spec in ALL_TRUE_SPECS.items()}


def huge_design(chain_depth: int = 60, rings: tuple[int, ...] = (5, 5)) -> AIG:
    """The 6s289 stand-in for Table X (one property per pipeline stage).

    Locally every chain property is 1-step inductive (its predecessor is
    assumed); globally, stage ``i`` needs a depth-``i`` argument, so the
    global #frames column grows with the sampled property index while the
    local column stays at 1-2 frames.
    """
    aig = AIG()
    good_chain_slice(aig, "c0", chain_depth, 1)
    for i, size in enumerate(rings):
        token_ring_slice(aig, f"r{i}", size)
    return aig
