"""Tseitin encoding of AIG cones into CNF.

:class:`ConeEncoder` maps AIG nodes to CNF variables inside a *sink* —
any object with ``new_var()`` and ``add_clause(lits)`` (both
:class:`repro.sat.Solver` and :class:`repro.encode.cnf.CnfBuilder`
qualify).  Leaves (inputs and latches) must be registered before a cone
through them is encoded; AND gates get fresh variables with the usual
three clauses.  Each encoder instance represents one "copy" of the
combinational logic (one time frame), so unrolling is just a sequence of
encoders sharing a sink.
"""

from __future__ import annotations

from typing import Protocol

from ..circuit.aig import AIG, aig_var, is_negated


class ClauseSink(Protocol):
    """Anything that can absorb fresh variables and clauses."""

    def new_var(self) -> int: ...

    def add_clause(self, lits) -> object: ...


class ConeEncoder:
    """Encodes combinational cones of one AIG time frame into a sink."""

    def __init__(self, aig: AIG, sink: ClauseSink) -> None:
        self.aig = aig
        self.sink = sink
        self._node_var: dict[int, int] = {}
        self._true_var: int | None = None

    # ------------------------------------------------------------------
    def true_var(self) -> int:
        """A variable constrained to TRUE (lazily created)."""
        if self._true_var is None:
            self._true_var = self.sink.new_var()
            self.sink.add_clause([self._true_var])
        return self._true_var

    def set_leaf(self, node_lit: int, var: int) -> None:
        """Register the CNF variable of a leaf (input or latch) literal.

        ``node_lit`` must be non-inverted.
        """
        if is_negated(node_lit):
            raise ValueError("leaf literal must be non-inverted")
        idx = aig_var(node_lit)
        kind = self.aig.kind(idx)
        if kind not in ("input", "latch"):
            raise ValueError(f"node {idx} is a {kind}, not a leaf")
        self._node_var[idx] = var

    def leaf_var(self, node_lit: int) -> int:
        """Look up (or lazily create) the CNF variable of a leaf literal."""
        idx = aig_var(node_lit)
        var = self._node_var.get(idx)
        if var is None:
            kind = self.aig.kind(idx)
            if kind not in ("input", "latch"):
                raise ValueError(f"node {idx} is a {kind}, not a leaf")
            var = self.sink.new_var()
            self._node_var[idx] = var
        return var

    # ------------------------------------------------------------------
    def lit(self, aig_lit: int) -> int:
        """Encode the cone of ``aig_lit``; returns a signed CNF literal."""
        var = self._encode_node(aig_var(aig_lit))
        return -var if is_negated(aig_lit) else var

    def _encode_node(self, root: int) -> int:
        cached = self._node_var.get(root)
        if cached is not None:
            return cached
        aig = self.aig
        node_var = self._node_var
        stack = [root]
        while stack:
            idx = stack[-1]
            if idx in node_var:
                stack.pop()
                continue
            kind = aig.kind(idx)
            if kind == "const":
                # Node 0 is constant FALSE; its variable is pinned to 0 so
                # that lit() returns a false literal for it and a true one
                # for its negation (AIG literal 1).
                node_var[idx] = self._false_as_var()
                stack.pop()
            elif kind in ("input", "latch"):
                var = self.sink.new_var()
                node_var[idx] = var
                stack.pop()
            else:  # and
                left, right = aig.and_fanins(idx)
                lv, rv = aig_var(left), aig_var(right)
                pending = [v for v in (lv, rv) if v not in node_var]
                if pending:
                    stack.extend(pending)
                    continue
                la = node_var[lv] * (-1 if is_negated(left) else 1)
                lb = node_var[rv] * (-1 if is_negated(right) else 1)
                var = self.sink.new_var()
                self.sink.add_clause([-var, la])
                self.sink.add_clause([-var, lb])
                self.sink.add_clause([var, -la, -lb])
                node_var[idx] = var
                stack.pop()
        return node_var[root]

    def _false_as_var(self) -> int:
        """A variable constrained to FALSE (for the constant node)."""
        var = self.sink.new_var()
        self.sink.add_clause([-var])
        return var
