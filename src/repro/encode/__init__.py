"""CNF encoding layer: Tseitin transformation and time-frame unrolling."""

from .cnf import CnfBuilder
from .tseitin import ConeEncoder
from .unroll import Unroller

__all__ = ["CnfBuilder", "ConeEncoder", "Unroller"]
