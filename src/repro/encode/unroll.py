"""Time-frame unrolling of a sequential AIG for bounded model checking.

The :class:`Unroller` lazily creates one :class:`ConeEncoder` per time
frame inside a single clause sink.  Frame 0's latch variables are
constrained to the reset values; each later frame's latch leaves are tied
to the previous frame's next-state literals, so no equality clauses are
needed for the transition itself.
"""

from __future__ import annotations


from ..circuit.aig import AIG
from .tseitin import ClauseSink, ConeEncoder


class Unroller:
    """Unrolls an AIG into numbered time frames within one sink."""

    def __init__(self, aig: AIG, sink: ClauseSink) -> None:
        self.aig = aig
        self.sink = sink
        self._frames: list[ConeEncoder] = []
        # Per-frame maps: AIG input literal -> CNF var.
        self.input_vars: list[dict[int, int]] = []

    @property
    def num_frames(self) -> int:
        return len(self._frames)

    def frame(self, t: int) -> ConeEncoder:
        """The encoder for frame ``t``, creating frames 0..t on demand."""
        while len(self._frames) <= t:
            self._extend()
        return self._frames[t]

    def _extend(self) -> None:
        t = len(self._frames)
        enc = ConeEncoder(self.aig, self.sink)
        frame_inputs: dict[int, int] = {}
        for inp in self.aig.inputs:
            var = self.sink.new_var()
            enc.set_leaf(inp, var)
            frame_inputs[inp] = var
        if t == 0:
            for latch in self.aig.latches:
                var = self.sink.new_var()
                enc.set_leaf(latch.lit, var)
                if latch.init == 0:
                    self.sink.add_clause([-var])
                elif latch.init == 1:
                    self.sink.add_clause([var])
                # init None: left unconstrained (uninitialized latch)
        else:
            prev = self._frames[t - 1]
            for latch in self.aig.latches:
                # The latch value at frame t IS the next-state literal of
                # frame t-1; reuse that CNF literal directly when it is a
                # plain variable, otherwise introduce an equality var.
                next_lit = prev.lit(latch.next)
                if next_lit > 0:
                    enc.set_leaf(latch.lit, next_lit)
                else:
                    var = self.sink.new_var()
                    self.sink.add_clause([-var, next_lit])
                    self.sink.add_clause([var, -next_lit])
                    enc.set_leaf(latch.lit, var)
        self._frames.append(enc)
        self.input_vars.append(frame_inputs)

    def lit(self, aig_lit: int, t: int) -> int:
        """Signed CNF literal of ``aig_lit`` evaluated at frame ``t``."""
        return self.frame(t).lit(aig_lit)

    def latch_var(self, latch_lit: int, t: int) -> int:
        """CNF variable holding latch ``latch_lit`` at frame ``t``."""
        return self.frame(t).leaf_var(latch_lit)

    def input_var(self, input_lit: int, t: int) -> int:
        self.frame(t)
        return self.input_vars[t][input_lit]

    def extract_inputs(self, model_value, upto_frame: int) -> list[dict[int, bool]]:
        """Read back per-frame input valuations from a SAT model.

        ``model_value`` is a callable mapping a signed CNF literal to a
        bool or None (e.g. ``Solver.value``).  Frames 0..upto_frame
        inclusive are extracted.
        """
        seq: list[dict[int, bool]] = []
        for t in range(upto_frame + 1):
            frame_inputs = {}
            for inp, var in self.input_vars[t].items():
                val = model_value(var)
                frame_inputs[inp] = bool(val) if val is not None else False
            seq.append(frame_inputs)
        return seq

    def extract_uninit(self, model_value) -> dict[int, bool]:
        """Values the model chose for uninitialized latches at frame 0."""
        out: dict[int, bool] = {}
        if not self._frames:
            return out
        enc = self._frames[0]
        for latch in self.aig.latches:
            if latch.init is None:
                var = enc.leaf_var(latch.lit)
                val = model_value(var)
                out[latch.lit] = bool(val) if val is not None else False
        return out
