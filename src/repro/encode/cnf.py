"""A lightweight CNF container with fresh-variable management.

All engines share this representation: clauses are lists of signed
DIMACS literals, and :class:`CnfBuilder` hands out fresh variables and
remembers the mapping from AIG nodes to CNF variables established by the
Tseitin encoder.
"""

from __future__ import annotations

from collections.abc import Iterable


class CnfBuilder:
    """Accumulates clauses and allocates fresh CNF variables."""

    def __init__(self) -> None:
        self.clauses: list[list[int]] = []
        self.num_vars = 0

    def new_var(self) -> int:
        """Allocate a fresh 1-based variable."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause of signed literals."""
        lits = list(clause)
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.num_vars = max(self.num_vars, abs(lit))
        self.clauses.append(lits)

    def add_all(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def extend_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables, returned in order."""
        return [self.new_var() for _ in range(count)]

    def copy(self) -> "CnfBuilder":
        out = CnfBuilder()
        out.num_vars = self.num_vars
        out.clauses = [list(c) for c in self.clauses]
        return out

    def __len__(self) -> int:
        return len(self.clauses)
