"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def counter_file(tmp_path):
    path = str(tmp_path / "counter.aag")
    assert main(["gen", "counter4", "-o", path]) == 0
    return path


class TestGen:
    def test_gen_ascii(self, tmp_path, capsys):
        path = str(tmp_path / "d.aag")
        assert main(["gen", "f175", "-o", path]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(path) as f:
            assert f.readline().startswith("aag ")

    def test_gen_binary(self, tmp_path):
        path = str(tmp_path / "d.aig")
        assert main(["gen", "counter4", "-o", path]) == 0
        with open(path, "rb") as f:
            assert f.readline().startswith(b"aig ")

    def test_gen_unknown(self, tmp_path, capsys):
        assert main(["gen", "nope", "-o", str(tmp_path / "x.aag")]) == 2
        assert "unknown design" in capsys.readouterr().err


class TestInfo:
    def test_info(self, counter_file, capsys):
        assert main(["info", counter_file]) == 0
        out = capsys.readouterr().out
        assert "latches: 4" in out
        assert "P0" in out and "P1" in out


class TestSweep:
    def test_sweep(self, counter_file, capsys):
        assert main(["sweep", counter_file, "--runs", "8", "--depth", "4"]) == 0
        out = capsys.readouterr().out
        assert "P0" in out  # fails on nearly any stimulus
        assert "survivors" in out


class TestCheck:
    def test_ja_finds_failures(self, counter_file, capsys):
        assert main(["check", counter_file, "--method", "ja"]) == 1
        out = capsys.readouterr().out
        assert "Debugging set: {P0}" in out

    def test_joint(self, counter_file, capsys):
        assert main(["check", counter_file, "--method", "joint"]) == 1
        out = capsys.readouterr().out
        assert "fails" in out

    def test_separate_with_options(self, counter_file):
        code = main(
            [
                "check",
                counter_file,
                "--method",
                "separate",
                "--no-reuse",
                "--order",
                "cone",
            ]
        )
        assert code == 1

    def test_clustered(self, counter_file):
        assert main(["check", counter_file, "--method", "clustered"]) == 1

    def test_ja_with_all_flags(self, counter_file):
        code = main(
            [
                "check",
                counter_file,
                "--method",
                "ja",
                "--coi",
                "--ctg",
                "--respect-lifting",
                "--order",
                "shuffled:3",
            ]
        )
        assert code == 1

    def test_all_true_design_exits_zero(self, tmp_path):
        path = str(tmp_path / "t.aag")
        assert main(["gen", "t273", "-o", path]) == 0
        assert main(["check", path, "--method", "ja"]) == 0

    def test_unsolved_exit_code(self, counter_file):
        code = main(["check", counter_file, "--time-limit", "0.0"])
        assert code in (1, 3)

    def test_json_report(self, counter_file, tmp_path):
        out_json = str(tmp_path / "report.json")
        main(["check", counter_file, "--json", out_json])
        with open(out_json) as f:
            data = json.load(f)
        assert data["debugging_set"] == ["P0"]
        assert data["outcomes"]["P1"]["status"] == "holds"

    def test_parallel_with_exchange_shards(self, counter_file):
        assert main([
            "check", counter_file, "--strategy", "parallel-ja",
            "--workers", "2", "--exchange-shards", "2",
        ]) == 1  # counter4's P0 fails

    def test_exchange_shards_auto(self, counter_file):
        assert main([
            "check", counter_file, "--strategy", "parallel-ja",
            "--workers", "1", "--exchange-shards", "auto",
        ]) == 1

    @pytest.mark.parametrize("bad", ["0", "-3", "several"])
    def test_bad_exchange_shards_rejected(self, counter_file, bad, capsys):
        with pytest.raises(SystemExit):
            main([
                "check", counter_file, "--strategy", "parallel-ja",
                "--exchange-shards", bad,
            ])
        assert "positive integer or 'auto'" in capsys.readouterr().err

    def test_bad_order_rejected(self, counter_file, capsys):
        assert main(["check", counter_file, "--order", "zigzag"]) == 2
        assert "unknown order" in capsys.readouterr().err

    def test_strategy_flag(self, counter_file):
        assert main(["check", counter_file, "--strategy", "joint"]) == 1

    def test_unknown_strategy_rejected(self, counter_file, capsys):
        assert main(["check", counter_file, "--strategy", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown strategy" in err and "ja" in err

    def test_progress_streams_events(self, counter_file, capsys):
        assert main(["check", counter_file, "--progress"]) == 1
        out = capsys.readouterr().out
        assert "[run-started]" in out
        assert "[property-solved]" in out
        assert "[run-finished]" in out


class TestTopLevelFlags:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_list_strategies(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--list-strategies"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        for name in ("ja", "joint", "separate", "clustered"):
            assert name in out


class TestRegisteredStrategyViaCLI:
    def test_custom_strategy_runs_from_cli(self, counter_file, capsys):
        """A strategy registered by a plugin is usable without CLI changes."""
        from repro.engines.result import PropStatus
        from repro.multiprop.report import MultiPropReport, PropOutcome
        from repro.session import register_strategy, unregister_strategy

        @register_strategy("dummy")
        class Dummy:
            """Reports every property unknown."""

            def run(self, ts, config, emit):
                report = MultiPropReport(method="dummy", design=config.design_name)
                for prop in ts.properties:
                    report.outcomes[prop.name] = PropOutcome(
                        name=prop.name, status=PropStatus.UNKNOWN, local=False
                    )
                return report

        try:
            # Exit code 3: unsolved properties remain.
            assert main(["check", counter_file, "--strategy", "dummy"]) == 3
            out = capsys.readouterr().out
            assert "unknown" in out
            with pytest.raises(SystemExit):
                main(["--list-strategies"])
            assert "dummy" in capsys.readouterr().out
        finally:
            unregister_strategy("dummy")


class TestServe:
    @pytest.fixture
    def manifest(self, counter_file, tmp_path):
        path = str(tmp_path / "manifest.json")
        with open(path, "w") as f:
            json.dump(
                {
                    "workers": 2,
                    "max_concurrent_jobs": 3,
                    "jobs": [
                        {"design": counter_file, "strategy": "parallel-ja",
                         "priority": 2},
                        {"design": counter_file, "strategy": "ja"},
                        {"design": counter_file},
                    ],
                },
                f,
            )
        return path

    def test_serve_runs_all_jobs_concurrently(self, manifest, capsys):
        assert main(["serve", manifest]) == 1  # counter4's P0 fails
        out = capsys.readouterr().out
        for job_id in ("job-0", "job-1", "job-2"):
            assert f"== {job_id}:" in out
        assert out.count("Debugging set: {P0}") == 3

    def test_serve_json_report(self, manifest, tmp_path, capsys):
        out_json = str(tmp_path / "serve.json")
        main(["serve", manifest, "--json", out_json])
        with open(out_json) as f:
            data = json.load(f)
        assert set(data) == {"job-0", "job-1", "job-2"}
        assert data["job-0"]["outcomes"]["P1"]["status"] == "holds"
        assert data["job-1"]["method"] == "ja"

    def test_serve_accepts_bare_job_list(self, counter_file, tmp_path):
        path = str(tmp_path / "list.json")
        with open(path, "w") as f:
            json.dump([{"design": counter_file, "strategy": "ja"}], f)
        assert main(["serve", path]) == 1

    def test_serve_progress_streams_job_events(self, manifest, capsys):
        main(["serve", manifest, "--progress"])
        out = capsys.readouterr().out
        assert "[job-queued]" in out
        assert "[job-started]" in out
        assert "[job-finished]" in out

    def test_serve_rejects_empty_manifest(self, tmp_path, capsys):
        path = str(tmp_path / "empty.json")
        with open(path, "w") as f:
            json.dump({"jobs": []}, f)
        assert main(["serve", path]) == 2
        assert "no jobs" in capsys.readouterr().err

    def test_serve_rejects_bad_job_spec(self, counter_file, tmp_path, capsys):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as f:
            json.dump({"jobs": [{"design": counter_file, "nonsense": 1}]}, f)
        assert main(["serve", path]) == 2
        assert "job #0" in capsys.readouterr().err

    def test_serve_rejects_missing_design(self, tmp_path, capsys):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as f:
            json.dump({"jobs": [{"strategy": "ja"}]}, f)
        assert main(["serve", path]) == 2
        assert "names no design" in capsys.readouterr().err
