"""Unified content hashes: stability, boundaries, cone invariance."""

from __future__ import annotations

from repro.cache.hashing import (
    cone_digest,
    cone_properties,
    design_digest,
    joined_digest,
    payload_digest,
    text_digest,
)
from repro.circuit.aig import AIG, aig_not
from repro.gen.counter import fixed_counter
from repro.ts.system import TransitionSystem


def _two_cones(b_init: int = 0) -> TransitionSystem:
    """Two independent stuck latches, one property each."""
    aig = AIG()
    a = aig.add_latch("a", init=0)
    aig.set_next(a, a)
    b = aig.add_latch("b", init=b_init)
    aig.set_next(b, b)
    aig.add_property("Pa", aig_not(a))
    aig.add_property("Pb", aig_not(b))
    return TransitionSystem(aig)


class TestPrimitives:
    def test_payload_digest_stable(self):
        assert payload_digest(b"abc") == payload_digest(b"abc")
        assert payload_digest(b"abc") != payload_digest(b"abd")

    def test_text_digest_matches_utf8_payload(self):
        assert text_digest("héllo") == payload_digest("héllo".encode())

    def test_joined_digest_field_boundaries(self):
        # NUL separation: ("ab","c") must not smear into ("a","bc").
        assert joined_digest("ab", "c") != joined_digest("a", "bc")
        assert joined_digest(1, "x") == joined_digest("1", "x")


class TestDesignDigest:
    def test_identical_builds_collide(self):
        a = TransitionSystem(fixed_counter(4))
        b = TransitionSystem(fixed_counter(4))
        assert design_digest(a) == design_digest(b)

    def test_different_designs_differ(self):
        a = TransitionSystem(fixed_counter(4))
        b = TransitionSystem(fixed_counter(5))
        assert design_digest(a) != design_digest(b)


class TestConeDigest:
    def test_shared_cone_distinct_keys(self):
        # Mutually-assuming properties share one cone AIG; the target
        # name disambiguates the keys or one verdict overwrites the other.
        ts = TransitionSystem(fixed_counter(4))
        assert cone_digest(ts, "P0") != cone_digest(ts, "P1")

    def test_independent_properties_not_in_cone(self):
        ts = _two_cones()
        assert cone_properties(ts, "Pa") == []
        assert cone_properties(ts, "Pb") == []

    def test_out_of_cone_edit_preserves_digest(self):
        before = _two_cones(b_init=0)
        after = _two_cones(b_init=1)
        assert design_digest(before) != design_digest(after)
        # Pa's cone never sees latch b: digest survives the edit.
        assert cone_digest(before, "Pa") == cone_digest(after, "Pa")
        assert cone_digest(before, "Pb") != cone_digest(after, "Pb")

    def test_connected_assumptions_enter_cone(self):
        ts = TransitionSystem(fixed_counter(4))
        assert cone_properties(ts, "P0") == ["P1"]
        assert cone_properties(ts, "P1") == ["P0"]

    def test_kept_shortcut_matches_recompute(self):
        ts = TransitionSystem(fixed_counter(4))
        kept = cone_properties(ts, "P0")
        assert cone_digest(ts, "P0", kept) == cone_digest(ts, "P0")
