"""Cache through Session / VerificationService / CLI: parity end to end."""

from __future__ import annotations

import json
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen.counter import fixed_counter
from repro.service import VerificationService
from repro.session import Session, VerificationConfig
from repro.ts.system import TransitionSystem


def _run(ts, cache_dir, events=None, **overrides):
    config = VerificationConfig(cache_dir=str(cache_dir), **overrides)
    session = Session(ts, config=config, on_event=(events.append if events is not None else None))
    return session.run()


def _verdicts(report):
    return {name: o.status.value for name, o in report.outcomes.items()}


class TestSessionParity:
    @settings(max_examples=8, deadline=None)
    @given(bits=st.integers(min_value=2, max_value=5), rval=st.none() | st.integers(0, 31))
    def test_cold_warm_verdict_and_frames_parity(self, tmp_path_factory, bits, rval):
        if rval is not None:
            rval %= 1 << bits  # reset value must fit the counter width
        cache_dir = tmp_path_factory.mktemp("proofcache")
        cold = _run(TransitionSystem(fixed_counter(bits, rval)), cache_dir)

        events: list = []
        warm = _run(TransitionSystem(fixed_counter(bits, rval)), cache_dir, events)
        assert _verdicts(warm) == _verdicts(cold)
        hits = [e for e in events if getattr(e, "kind", "") == "cache-hit"]
        assert len(hits) == len(cold.outcomes)  # nothing re-proved
        for name, outcome in warm.outcomes.items():
            assert outcome.engine == "cache"
            assert outcome.frames == cold.outcomes[name].frames
            assert outcome.local == cold.outcomes[name].local

    def test_cache_off_parity(self, tmp_path):
        cached = _run(TransitionSystem(fixed_counter(4)), tmp_path)
        plain = Session(TransitionSystem(fixed_counter(4))).run()
        assert _verdicts(cached) == _verdicts(plain)

    def test_report_counts_hits(self, tmp_path):
        _run(TransitionSystem(fixed_counter(4)), tmp_path)
        warm = _run(TransitionSystem(fixed_counter(4)), tmp_path)
        assert warm.stats.get("cache_hits") == 2

    def test_read_mode_serves_but_never_writes(self, tmp_path):
        _run(TransitionSystem(fixed_counter(4)), tmp_path)
        entries = sorted(p.name for p in (tmp_path / "entries").iterdir())
        events: list = []
        _run(
            TransitionSystem(fixed_counter(4)),
            tmp_path,
            events,
            cache_mode="read",
        )
        assert [e for e in events if getattr(e, "kind", "") == "cache-hit"]
        assert sorted(p.name for p in (tmp_path / "entries").iterdir()) == entries


class TestServiceCache:
    def test_pooled_jobs_hit_and_count(self, tmp_path):
        config = VerificationConfig(
            strategy="parallel-ja", workers=2, cache_dir=str(tmp_path)
        )
        with VerificationService(workers=2) as service:
            first = service.submit(TransitionSystem(fixed_counter(4)), config)
            cold = first.result()
            second = service.submit(TransitionSystem(fixed_counter(4)), config)
            warm = second.result()
            stats = service.stats()
        assert _verdicts(warm) == _verdicts(cold)
        assert warm.stats.get("cache_hits") == 2
        assert stats.cache["hits"] == 2
        assert stats.cache["writes"] == 2

    def test_service_default_cache_dir(self, tmp_path):
        with VerificationService(workers=2, cache_dir=str(tmp_path)) as service:
            service.submit(TransitionSystem(fixed_counter(4))).result()
            warm = service.submit(TransitionSystem(fixed_counter(4))).result()
        assert warm.stats.get("cache_hits") == 2


class TestCrossProcess:
    def test_cli_second_process_serves_from_cache(self, tmp_path):
        design = tmp_path / "counter.aag"
        cache_dir = tmp_path / "proofs"

        def check(json_name):
            out = tmp_path / json_name
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "check",
                    str(design),
                    "--cache-dir",
                    str(cache_dir),
                    "--progress",
                    "--json",
                    str(out),
                ],
                capture_output=True,
                text=True,
                timeout=120,
            )
            assert proc.returncode == 1, proc.stderr  # P0 fails by design
            return json.loads(out.read_text()), proc.stdout

        gen = subprocess.run(
            [sys.executable, "-m", "repro", "gen", "counter4", "-o", str(design)],
            capture_output=True,
            timeout=120,
        )
        assert gen.returncode == 0, gen.stderr
        cold, cold_out = check("cold.json")
        warm, warm_out = check("warm.json")
        assert "[cache-hit]" not in cold_out
        assert warm_out.count("[cache-hit]") == 2
        cold_verdicts = {n: o["status"] for n, o in cold["outcomes"].items()}
        warm_verdicts = {n: o["status"] for n, o in warm["outcomes"].items()}
        assert warm_verdicts == cold_verdicts
        assert {e["engine"] for e in warm["outcomes"].values()} == {"cache"}
