"""CacheResolver: certification-gated hits, poisoning, incremental hits."""

from __future__ import annotations

import json

import pytest

from repro.cache.resolve import CacheResolver
from repro.cache.store import ProofStore
from repro.circuit.aig import AIG, aig_not
from repro.engines.result import PropStatus
from repro.gen.counter import fixed_counter
from repro.multiprop.ja import JAOptions, JAVerifier
from repro.ts.system import TransitionSystem


def _counter_ts() -> TransitionSystem:
    return TransitionSystem(fixed_counter(4))


def _two_cones(b_init: int = 0) -> TransitionSystem:
    aig = AIG()
    a = aig.add_latch("a", init=0)
    aig.set_next(a, a)
    b = aig.add_latch("b", init=b_init)
    aig.set_next(b, b)
    aig.add_property("Pa", aig_not(a))
    aig.add_property("Pb", aig_not(b))
    return TransitionSystem(aig)


def _populate(store: ProofStore, ts: TransitionSystem) -> dict:
    """Cold-prove ``ts`` and write every verdict back; return outcomes."""
    report = JAVerifier(ts).run()
    written = CacheResolver(store).record_outcomes(ts, report.outcomes)
    assert written == len(report.outcomes)
    return report.outcomes


class TestResolve:
    def test_cold_then_warm_full_parity(self, tmp_path):
        store = ProofStore(tmp_path)
        cold = _populate(store, _counter_ts())

        warm_ts = _counter_ts()
        events = []
        outcomes, remaining = CacheResolver(store).resolve(
            warm_ts, ["P0", "P1"], emit=events.append
        )
        assert remaining == []
        for name, outcome in outcomes.items():
            assert outcome.engine == "cache"
            assert outcome.status is cold[name].status
            assert outcome.frames == cold[name].frames
            assert outcome.local == cold[name].local
        hits = [e for e in events if e.kind == "cache-hit"]
        assert {(h.name, h.exact_design) for h in hits} == {
            ("P0", True),
            ("P1", True),
        }
        assert store.counters["hits"] == 2

    def test_read_mode_never_writes(self, tmp_path):
        store = ProofStore(tmp_path)
        ts = _counter_ts()
        report = JAVerifier(ts).run()
        assert CacheResolver(store, "read").record_outcomes(ts, report.outcomes) == 0
        assert store.stats()["entries"] == 0

    def test_off_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CacheResolver(ProofStore(tmp_path), "offish")
        resolver = CacheResolver(ProofStore(tmp_path), "off")
        outcomes, remaining = resolver.resolve(_counter_ts(), ["P0", "P1"])
        assert outcomes == {}
        assert remaining == ["P0", "P1"]

    def test_cache_served_outcomes_not_rewritten(self, tmp_path):
        store = ProofStore(tmp_path)
        _populate(store, _counter_ts())
        resolver = CacheResolver(store)
        outcomes, _ = resolver.resolve(_counter_ts(), ["P0", "P1"])
        assert resolver.record_outcomes(_counter_ts(), outcomes) == 0

    def test_unknown_not_cached(self, tmp_path):
        store = ProofStore(tmp_path)
        ts = _counter_ts()
        report = JAVerifier(ts).run()
        outcome = report.outcomes["P1"]
        outcome.status = PropStatus.UNKNOWN
        written = CacheResolver(store).record_outcomes(ts, report.outcomes)
        assert written == 1  # only P0 qualifies


class TestPoisoning:
    def _poison(self, store: ProofStore, mutate) -> str:
        [path] = [
            p
            for p in store.entries_dir.iterdir()
            if json.loads(p.read_text())["status"] == "holds"
        ]
        obj = json.loads(path.read_text())
        mutate(obj)
        path.write_text(json.dumps(obj))
        return obj["prop"]

    def test_flipped_invariant_literal_rejected(self, tmp_path):
        store = ProofStore(tmp_path)
        _populate(store, _counter_ts())
        # Flip one invariant literal: the clause now claims a latch is
        # TRUE in a design that initializes it FALSE.
        prop = self._poison(
            store, lambda obj: obj["invariant"].__setitem__(0, [-obj["invariant"][0][0]])
        )
        outcomes, remaining = CacheResolver(store).resolve(
            _counter_ts(), ["P0", "P1"]
        )
        assert prop in remaining  # degraded to a re-proof, not a verdict
        assert store.counters["certify_rejects"] == 1
        assert outcomes[("P0" if prop == "P1" else "P1")].engine == "cache"

    def test_swapped_status_rejected(self, tmp_path):
        store = ProofStore(tmp_path)
        _populate(store, _counter_ts())
        prop = self._poison(
            store, lambda obj: obj.update(status="fails", trace=None)
        )
        _, remaining = CacheResolver(store).resolve(_counter_ts(), ["P0", "P1"])
        assert prop in remaining

    def test_tampered_trace_rejected(self, tmp_path):
        store = ProofStore(tmp_path)
        _populate(store, _counter_ts())
        [path] = [
            p
            for p in store.entries_dir.iterdir()
            if json.loads(p.read_text())["status"] == "fails"
        ]
        obj = json.loads(path.read_text())
        obj["trace"]["inputs"] = []  # no frames: cannot witness a failure
        path.write_text(json.dumps(obj))
        _, remaining = CacheResolver(store).resolve(_counter_ts(), ["P0", "P1"])
        assert obj["prop"] in remaining

    def test_reproof_after_poison_gives_correct_verdict(self, tmp_path):
        store = ProofStore(tmp_path)
        _populate(store, _counter_ts())
        self._poison(store, lambda obj: obj["invariant"].clear() or obj[
            "invariant"
        ].append([1]))
        ts = _counter_ts()
        resolver = CacheResolver(store)
        outcomes, remaining = resolver.resolve(ts, ["P0", "P1"])
        report = JAVerifier(ts, JAOptions(order=remaining)).run()
        merged = dict(outcomes)
        merged.update(report.outcomes)
        assert merged["P0"].status is PropStatus.FAILS
        assert merged["P1"].status is PropStatus.HOLDS


class TestIncremental:
    def test_out_of_cone_edit_still_hits(self, tmp_path):
        store = ProofStore(tmp_path)
        _populate(store, _two_cones(b_init=0))

        edited = _two_cones(b_init=1)  # Pb's cone changed, Pa's did not
        events = []
        outcomes, remaining = CacheResolver(store).resolve(
            edited, ["Pa", "Pb"], emit=events.append
        )
        assert list(outcomes) == ["Pa"]
        assert remaining == ["Pb"]
        [hit] = [e for e in events if e.kind == "cache-hit"]
        assert hit.name == "Pa"
        assert hit.exact_design is False  # cone-level hit on an edited design

    def test_edited_cone_reproves_and_recaches(self, tmp_path):
        store = ProofStore(tmp_path)
        _populate(store, _two_cones(b_init=0))
        edited = _two_cones(b_init=1)
        resolver = CacheResolver(store)
        _, remaining = resolver.resolve(edited, ["Pa", "Pb"])
        report = JAVerifier(edited, JAOptions(order=remaining)).run()
        assert report.outcomes["Pb"].status is PropStatus.FAILS
        resolver.record_outcomes(edited, report.outcomes)
        outcomes, remaining = resolver.resolve(_two_cones(b_init=1), ["Pa", "Pb"])
        assert remaining == []
        assert outcomes["Pb"].status is PropStatus.FAILS
