"""ProofStore: atomic record persistence, corruption tolerance, LRU GC."""

from __future__ import annotations

import json
import os

import pytest

from repro.cache.store import (
    RECORD_MAGIC,
    RECORD_VERSION,
    CacheRecord,
    ProofStore,
    atomic_write,
)
from repro.circuit.aig import AIG, aig_not
from repro.ts.system import TransitionSystem
from repro.ts.trace import Trace


def _system(n_latches: int = 3) -> TransitionSystem:
    aig = AIG()
    latches = []
    for i in range(n_latches):
        q = aig.add_latch(f"q{i}", init=0)
        aig.set_next(q, q)
        latches.append(q)
    aig.add_property("p", aig_not(latches[0]))
    return TransitionSystem(aig)


def _holds_record(cone: str = "c" * 64) -> CacheRecord:
    return CacheRecord(
        prop="P1",
        status="holds",
        design="d" * 64,
        cone=cone,
        frames=3,
        assumed=["P0"],
        engine="ja",
        invariant=[(-1,), (-2, 3)],
    )


def _fails_record(cone: str = "f" * 64) -> CacheRecord:
    return CacheRecord(
        prop="P0",
        status="fails",
        design="d" * 64,
        cone=cone,
        cex_depth=1,
        trace=Trace(
            inputs=[{2: False}, {2: True}],
            uninit={4: True},
            property_name="P0",
        ),
    )


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "sub" / "x.json"
        atomic_write(path, "one")
        atomic_write(path, "two")
        assert path.read_text() == "two"

    def test_no_temp_litter(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write(path, "data")
        assert [p.name for p in tmp_path.iterdir()] == ["x.json"]


class TestRecordRoundTrip:
    def test_holds_round_trip(self):
        record = _holds_record()
        back = CacheRecord.from_json(record.to_json())
        assert back == record
        assert back.invariant == [(-1,), (-2, 3)]

    def test_fails_round_trip_restores_int_keys(self):
        back = CacheRecord.from_json(_fails_record().to_json())
        assert back.trace.inputs == [{2: False}, {2: True}]
        assert back.trace.uninit == {4: True}

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda obj: obj.update(magic="nope"),
            lambda obj: obj.update(version=RECORD_VERSION + 1),
            lambda obj: obj.update(status="maybe"),
        ],
    )
    def test_bad_header_rejected(self, mutate):
        obj = json.loads(_holds_record().to_json())
        mutate(obj)
        with pytest.raises(ValueError):
            CacheRecord.from_json(json.dumps(obj))

    def test_magic_present_in_payload(self):
        assert json.loads(_holds_record().to_json())["magic"] == RECORD_MAGIC


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ProofStore(tmp_path)
        record = _holds_record()
        store.put(record)
        loaded = store.get(record.cone)
        assert loaded.prop == "P1"
        assert loaded.invariant == record.invariant
        assert loaded.created > 0

    def test_garbage_entry_is_a_counted_miss(self, tmp_path):
        store = ProofStore(tmp_path)
        store.entries_dir.mkdir(parents=True)
        (store.entries_dir / ("x" * 64 + ".json")).write_text("{not json")
        assert store.get("x" * 64) is None
        assert store.counters["corrupt"] == 1

    def test_misfiled_entry_is_corrupt(self, tmp_path):
        # A record whose body names a different cone than its filename
        # (renamed or collided file) must not be served.
        store = ProofStore(tmp_path)
        record = _holds_record()
        store.put(record)
        os.rename(store.entry_path(record.cone), store.entry_path("e" * 64))
        assert store.get("e" * 64) is None
        assert store.counters["corrupt"] == 1

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        store = ProofStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.counters["corrupt"] == 0

    def test_stats_counts_disk(self, tmp_path):
        store = ProofStore(tmp_path)
        store.put(_holds_record())
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["entry_bytes"] > 0
        assert stats["writes"] == 1

    def test_clear_removes_everything(self, tmp_path):
        store = ProofStore(tmp_path)
        store.put(_holds_record())
        store.put(_fails_record())
        assert store.clear() == 2
        assert store.stats()["entries"] == 0


class TestGC:
    def _fill(self, store: ProofStore, count: int) -> list[str]:
        cones = []
        for i in range(count):
            cone = f"{i:064d}"
            store.put(_holds_record(cone))
            # Distinct mtimes make LRU order deterministic.
            os.utime(store.entry_path(cone), (i, i))
            cones.append(cone)
        return cones

    def test_lru_evicts_oldest_first(self, tmp_path):
        store = ProofStore(tmp_path)
        cones = self._fill(store, 4)
        assert store.gc(max_entries=2) == 2
        assert store.get(cones[0]) is None
        assert store.get(cones[1]) is None
        assert store.get(cones[3]) is not None

    def test_max_bytes_bound(self, tmp_path):
        store = ProofStore(tmp_path)
        self._fill(store, 3)
        assert store.gc(max_bytes=1) == 3

    def test_pinned_entries_survive(self, tmp_path):
        store = ProofStore(tmp_path)
        cones = self._fill(store, 3)
        store.pin(cones[0])
        removed = store.gc(max_entries=1)
        assert removed == 2
        assert store.get(cones[0]) is not None  # pinned: held despite age
        store.unpin(cones[0])
        assert store.gc(max_entries=0) == 1

    def test_put_applies_configured_bounds(self, tmp_path):
        store = ProofStore(tmp_path, max_entries=2)
        self._fill(store, 3)
        assert store.stats()["entries"] == 2
        assert store.counters["evicted"] >= 1


class TestWarmLogs:
    def test_save_load_round_trip(self, tmp_path):
        ts = _system()
        store = ProofStore(tmp_path)
        assert store.save_warm("d" * 64, ts, [(-1,), (-2, 3)]) == 2
        assert store.load_warm("d" * 64, ts) == [(-1,), (-2, 3)]
        assert store.counters["warm_loads"] == 1
        assert store.counters["warm_clauses"] == 2

    def test_merge_deduplicates(self, tmp_path):
        ts = _system()
        store = ProofStore(tmp_path)
        store.save_warm("d" * 64, ts, [(-1,)])
        assert store.save_warm("d" * 64, ts, [(-1,), (-3,)]) == 1
        assert sorted(store.load_warm("d" * 64, ts)) == [(-3,), (-1,)]

    def test_corrupt_log_is_no_warm_start(self, tmp_path):
        ts = _system()
        store = ProofStore(tmp_path)
        store.warm_dir.mkdir(parents=True)
        store.warm_path("d" * 64).write_text("clausedb 99\nq0 q1 q2\n-1\n")
        assert store.load_warm("d" * 64, ts) == []
        assert store.counters["corrupt"] == 1

    def test_missing_log_is_empty(self, tmp_path):
        assert ProofStore(tmp_path).load_warm("d" * 64, _system()) == []
